//! Map a generated FSM benchmark with all three algorithms and compare —
//! one Table-1 row, end to end, including BLIF round-tripping.
//!
//! Run with: `cargo run --release --example fsm_mapping [circuit-name]`

use netlist::CircuitStats;
use turbomap::{turbomap_frt, turbomap_general, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sand".to_string());
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown circuit `{name}`; see workloads::presets()"));
    let c = workloads::build_preset(&preset);
    println!("benchmark {name}: {}", CircuitStats::of(&c)?);
    println!(
        "paper reports: FlowMap-frt Φ={}  TurboMap Φ={}{}  TurboMap-frt Φ={}",
        preset.paper.flowmap_frt.phi,
        preset.paper.turbomap.phi,
        if preset.paper.turbomap_star { "*" } else { "" },
        preset.paper.turbomap_frt.phi,
    );

    // The circuit can round-trip through BLIF (the SIS interchange
    // format the original implementation lived in).
    let blif = netlist::write_blif(&c);
    let reparsed = netlist::parse_blif(&blif)?;
    assert!(netlist::random_equiv(&c, &reparsed, 512, 3)?.is_equivalent());
    println!("BLIF round-trip: ok ({} bytes)", blif.len());

    let k = 5;
    let prep = turbomap::prepare(&c, k)?;
    let fm = flowmap::flowmap_frt(&prep, k)?;
    println!(
        "FlowMap-frt : Φ = {:2}  LUTs = {:4}  FFs = {:4}",
        fm.period, fm.luts, fm.ffs
    );

    let tf = turbomap_frt(&c, Options::with_k(k))?;
    println!(
        "TurboMap-frt: Φ = {:2}  LUTs = {:4}  FFs = {:4}  (initial state guaranteed)",
        tf.period, tf.luts, tf.ffs
    );

    let tm = turbomap_general(&c, Options::with_k(k))?;
    println!(
        "TurboMap    : Φ = {:2}  LUTs = {:4}  FFs = {:4}{}",
        tm.period,
        tm.luts,
        tm.ffs,
        if tm.star() {
            "  *no usable equivalent initial state"
        } else {
            ""
        }
    );

    // Verification (the paper's protocol: 3008 random vectors).
    for (label, circuit, star) in [
        ("FlowMap-frt", &fm.circuit, false),
        ("TurboMap-frt", &tf.circuit, tf.star()),
        ("TurboMap", &tm.circuit, tm.star()),
    ] {
        let eq = netlist::random_equiv(&c, circuit, 3008, 11)?.is_equivalent();
        println!(
            "verify {label:13}: {}",
            if eq {
                "equivalent"
            } else if star {
                "NOT equivalent (expected: initial state was lost)"
            } else {
                "NOT EQUIVALENT (bug!)"
            }
        );
        assert!(eq || star);
    }
    Ok(())
}
