//! Quickstart: build a small sequential circuit, map it with
//! TurboMap-frt, and verify the result.
//!
//! Run with: `cargo run --release --example quickstart`

use netlist::{Bit, Circuit, CircuitStats, TruthTable};
use turbomap::{turbomap_frt, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-bit Johnson-counter-style circuit with an enable input: four
    // registers in a twisted ring, gated by `en`, with a decoded output.
    let mut c = Circuit::new("johnson4");
    let en = c.add_input("en")?;

    // Ring bits: b0 <- NOT(b3) when enabled; b_{i+1} <- b_i.
    // Model "when enabled" as  next = (en AND shifted) OR (NOT en AND own).
    let bits: Vec<_> = (0..4)
        .map(|i| c.add_gate(format!("b{i}"), TruthTable::buf()))
        .collect::<Result<_, _>>()?;
    let n3 = c.add_gate("n3", TruthTable::not())?;
    c.connect(bits[3], n3, vec![])?;
    let mux = TruthTable::mux(); // (sel, a, b): sel ? b : a
    let mut prev = n3;
    for i in 0..4 {
        let m = c.add_gate(format!("m{i}"), mux.clone())?;
        c.connect(en, m, vec![])?;
        c.connect(bits[i], m, vec![])?; // hold when en = 0
        c.connect(prev, m, vec![])?; // shift when en = 1
        // The register: each ring bit samples its mux through one FF.
        c.connect(m, bits[i], vec![Bit::Zero])?;
        prev = bits[i];
    }
    // Output: ring in the "hot" phase (b0 AND NOT b3).
    let dec = c.add_gate("dec", TruthTable::and(2))?;
    c.connect(bits[0], dec, vec![])?;
    c.connect(n3, dec, vec![])?;
    let po = c.add_output("hot")?;
    c.connect(dec, po, vec![])?;

    netlist::validate(&c)?;
    println!("original: {}", CircuitStats::of(&c)?);

    // Map to 4-LUTs with forward retiming; initial state is computed by
    // simulation and can never fail (the paper's headline guarantee).
    let mapped = turbomap_frt(&c, Options::with_k(4))?;
    println!(
        "mapped:   Φ = {}, {} LUTs, {} FFs, initial state {}",
        mapped.period,
        mapped.luts,
        mapped.ffs,
        if mapped.initial_state_lost {
            "LOST (impossible for forward retiming)"
        } else {
            "computed"
        }
    );

    // Verify sequential equivalence with 3008 random vectors (the
    // paper's protocol for large circuits) — here it is exact enough.
    let equiv = netlist::random_equiv(&c, &mapped.circuit, 3008, 42)?;
    println!("equivalence check: {:?}", equiv.is_equivalent());
    assert!(equiv.is_equivalent());

    // The mapped circuit can be written back to BLIF.
    let blif = netlist::write_blif(&mapped.circuit);
    println!("--- mapped BLIF (first lines) ---");
    for line in blif.lines().take(8) {
        println!("{line}");
    }
    Ok(())
}
