//! Figure 1 of the paper, executable: why forward retiming keeps initial
//! state computation easy and backward retiming makes it NP-hard.
//!
//! Run with: `cargo run --release --example initial_state`

use netlist::{Bit, Circuit, Simulator, TruthTable};
use retiming::{apply_retiming, Retiming, RetimingError};
use workloads::fig1_circuit;

fn show_registers(label: &str, c: &Circuit) {
    print!("{label}: ");
    for e in c.edge_ids() {
        let edge = c.edge(e);
        if edge.weight() > 0 {
            let vals: Vec<String> = edge.ffs().iter().map(|b| b.to_string()).collect();
            print!(
                "[{} -> {}: {}] ",
                c.node(edge.from()).name(),
                c.node(edge.to()).name(),
                vals.join(",")
            );
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Forward: registers on the AND's inputs (1 and 0). ---
    let fwd = fig1_circuit(true);
    show_registers("forward case, before", &fwd);
    let g = fwd.find("g").expect("gate g");
    let mut r = Retiming::zero(&fwd);
    r.set(g, -1); // pull both registers through the AND
    let (after, stats) = apply_retiming(&fwd, &r)?;
    show_registers("forward case, after ", &after);
    println!(
        "forward: {} simulation move(s); new value = AND(1, 0) = 0\n",
        stats.forward_moves
    );
    assert!(netlist::exhaustive_equiv(&fwd, &after, 4)?.is_equivalent());

    // --- Backward: register on the AND's output, value 1. ---
    let bwd = fig1_circuit(false);
    show_registers("backward case, before", &bwd);
    let g = bwd.find("g").expect("gate g");
    let mut r = Retiming::zero(&bwd);
    r.set(g, 1); // push the register back through the AND
    let (after, stats) = apply_retiming(&bwd, &r)?;
    show_registers("backward case, after ", &after);
    println!(
        "backward: {} justification move(s); AND output 1 forces both inputs to 1\n",
        stats.backward_moves
    );
    assert!(netlist::exhaustive_equiv(&bwd, &after, 4)?.is_equivalent());

    // --- Backward failure: justify 1 through a constant-0 gate. ---
    let mut c = Circuit::new("impossible");
    let a = c.add_input("a")?;
    let z = c.add_gate("z", TruthTable::const_zero(1))?;
    let o = c.add_output("o")?;
    c.connect(a, z, vec![])?;
    c.connect(z, o, vec![Bit::One])?;
    let mut r = Retiming::zero(&c);
    r.set(z, 1);
    match apply_retiming(&c, &r) {
        Err(RetimingError::NotJustifiable { node, target }) => {
            println!("backward failure (as expected): cannot justify {target} at `{node}`");
        }
        other => panic!("expected a justification failure, got {other:?}"),
    }

    // --- And the forward guarantee, dynamically: simulate both circuits.
    let mut sim = Simulator::new(&fwd)?;
    let outs = sim.step(&[Bit::One, Bit::One]);
    println!("\noriginal forward-case first output: {}", outs[0]);
    Ok(())
}
