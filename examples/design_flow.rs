//! The paper's Section-5 methodology as a flow: push registers backward
//! toward the PIs first (initial states justified as we go, clock period
//! ignored), then run TurboMap-frt, which maps optimally with *forward*
//! retiming — no iteration between retiming and initial state
//! computation.
//!
//! Run with: `cargo run --release --example design_flow`

use netlist::CircuitStats;
use retiming::push_registers_backward;
use turbomap::{turbomap_frt, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size generated FSM benchmark.
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "kirkman")
        .expect("preset exists");
    let c = workloads::build_preset(&preset);
    println!("original:        {}", CircuitStats::of(&c)?);

    // Step 1 (preprocessing): push registers backward as far as initial
    // states can be justified. This can only enlarge the solution space
    // of mapping with forward retiming.
    let (pushed, retiming, stats) = push_registers_backward(&c, 32);
    println!(
        "pushed backward: {} ({} moves, {} conflicts, {} unjustifiable)",
        CircuitStats::of(&pushed)?,
        stats.moves,
        stats.conflicts,
        stats.unjustifiable
    );
    let max_back = c
        .node_ids()
        .map(|v| retiming.get(v))
        .max()
        .unwrap_or(0);
    println!("deepest backward move: {max_back} register positions");
    // The preprocessing must preserve behaviour.
    assert!(netlist::random_equiv(&c, &pushed, 1024, 7)?.is_equivalent());

    // Step 2: optimal mapping with forward retiming on both versions.
    let opts = Options::with_k(5);
    let direct = turbomap_frt(&c, opts)?;
    let staged = turbomap_frt(&pushed, opts)?;
    println!(
        "TurboMap-frt direct:        Φ = {}, {} LUTs, {} FFs",
        direct.period, direct.luts, direct.ffs
    );
    println!(
        "TurboMap-frt after pushback: Φ = {}, {} LUTs, {} FFs",
        staged.period, staged.luts, staged.ffs
    );
    assert!(netlist::random_equiv(&c, &direct.circuit, 1024, 8)?.is_equivalent());
    assert!(netlist::random_equiv(&c, &staged.circuit, 1024, 9)?.is_equivalent());
    // Pushback can only help (or leave unchanged) the forward solution
    // space; the staged period is never worse.
    assert!(staged.period <= direct.period);
    println!("methodology check passed: staged Φ ≤ direct Φ");
    Ok(())
}
