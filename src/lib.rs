//! # turbomap-repro
//!
//! A reproduction of **Cong & Wu, "Optimal FPGA Mapping and Retiming with
//! Efficient Initial State Computation" (DAC 1998)** as a Rust workspace.
//!
//! This umbrella crate re-exports the workspace's crates under one roof
//! for the examples and integration tests:
//!
//! * [`netlist`] — sequential circuits as retiming graphs with
//!   three-valued FF initial states, BLIF I/O, simulation, equivalence
//!   checking.
//! * [`graphalgo`] — max-flow/min-cut with unit node capacities and the
//!   path algorithms behind labels and `frt` values.
//! * [`retiming`] — Leiserson–Saxe retiming, forward-only retiming and
//!   simulation/justification-based initial state computation.
//! * [`flowmap`] — the FlowMap depth-optimal mapper and the FlowMap-frt
//!   baseline flow.
//! * [`turbomap`] — the paper's TurboMap-frt algorithm and the TurboMap
//!   general-retiming baseline.
//! * [`workloads`] — seeded benchmark generators calibrated to the
//!   paper's Table 1.
//!
//! # Quickstart
//!
//! ```
//! use netlist::{Bit, Circuit, TruthTable};
//! use turbomap::{turbomap_frt, Options};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new("demo");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let g1 = c.add_gate("g1", TruthTable::and(2))?;
//! let g2 = c.add_gate("g2", TruthTable::xor(2))?;
//! let o = c.add_output("o")?;
//! c.connect(a, g1, vec![Bit::One])?;
//! c.connect(b, g1, vec![Bit::Zero])?;
//! c.connect(g1, g2, vec![])?;
//! c.connect(b, g2, vec![])?;
//! c.connect(g2, o, vec![])?;
//!
//! let mapped = turbomap_frt(&c, Options::with_k(5))?;
//! assert_eq!(mapped.period, 1);
//! assert!(!mapped.initial_state_lost); // guaranteed by forward retiming
//! assert!(netlist::random_equiv(&c, &mapped.circuit, 256, 0)?.is_equivalent());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flowmap;
pub use graphalgo;
pub use netlist;
pub use retiming;
pub use turbomap;
pub use workloads;
