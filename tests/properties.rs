//! Property-based integration tests: random circuits through the whole
//! stack, with sequential equivalence and the paper's invariants as the
//! properties.

use proptest::prelude::*;
use workloads::{generate_fsm, generate_layered, Encoding, FsmSpec, LayeredSpec};

fn fsm_strategy() -> impl Strategy<Value = netlist::Circuit> {
    (
        2usize..8,
        1usize..4,
        1usize..3,
        0u64..1000,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(|(states, inputs, outputs, seed, onehot, reg_in)| {
            generate_fsm(&FsmSpec {
                name: format!("pfsm{seed}"),
                states,
                inputs,
                decoded: 2,
                outputs,
                encoding: if onehot {
                    Encoding::OneHot
                } else {
                    Encoding::Binary
                },
                registered_inputs: reg_in,
                seed,
            })
        })
}

fn layered_strategy() -> impl Strategy<Value = netlist::Circuit> {
    (10usize..60, 0usize..8, 2usize..6, 0u64..1000, prop::bool::ANY).prop_map(
        |(gates, ffs, depth, seed, reg_in)| {
            generate_layered(&LayeredSpec {
                name: format!("play{seed}"),
                gates: gates.max(depth),
                ffs,
                inputs: 4,
                outputs: 3,
                depth,
                registered_inputs: reg_in,
                seed,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn turbomap_frt_equivalent_on_random_fsms(c in fsm_strategy()) {
        let res = turbomap::turbomap_frt(&c, turbomap::Options::with_k(4)).unwrap();
        prop_assert!(!res.star());
        prop_assert!(res.circuit.max_fanin() <= 4);
        prop_assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 17).unwrap().is_equivalent()
        );
        // Optimality vs the baseline.
        let prep = turbomap::prepare(&c, 4).unwrap();
        let fm = flowmap::flowmap_frt(&prep, 4).unwrap();
        prop_assert!(res.period <= fm.period);
    }

    #[test]
    fn turbomap_frt_equivalent_on_random_layered(c in layered_strategy()) {
        let res = turbomap::turbomap_frt(&c, turbomap::Options::with_k(5)).unwrap();
        prop_assert!(!res.star());
        prop_assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 23).unwrap().is_equivalent()
        );
    }

    #[test]
    fn general_retiming_starred_or_equivalent(c in fsm_strategy()) {
        let res = turbomap::turbomap_general(&c, turbomap::Options::with_k(4)).unwrap();
        let eq = netlist::random_equiv(&c, &res.circuit, 256, 29).unwrap().is_equivalent();
        prop_assert!(eq || res.star());
    }

    #[test]
    fn blif_round_trip_random(c in fsm_strategy()) {
        let text = netlist::write_blif(&c);
        let back = netlist::parse_blif(&text).unwrap();
        prop_assert!(
            netlist::random_equiv(&c, &back, 256, 31).unwrap().is_equivalent()
        );
        prop_assert!(
            netlist::random_equiv(&back, &c, 256, 37).unwrap().is_equivalent()
        );
    }

    #[test]
    fn forward_retiming_preserves_behaviour(c in layered_strategy()) {
        let res = retiming::retime_min_period_forward(&c).unwrap();
        prop_assert!(res.period <= c.clock_period().unwrap());
        prop_assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 41).unwrap().is_equivalent()
        );
    }

    #[test]
    fn pushback_preserves_behaviour(c in fsm_strategy()) {
        let (pushed, r, _) = retiming::push_registers_backward(&c, 8);
        prop_assert!(r.values().iter().all(|&x| x >= 0));
        prop_assert!(
            netlist::random_equiv(&c, &pushed, 256, 43).unwrap().is_equivalent()
        );
    }

    #[test]
    fn decompose_preserves_behaviour(c in fsm_strategy()) {
        // Re-bound to 2 (generators already emit ≤2, so splice in a wide
        // gate first to exercise decomposition).
        let mut wide = c.clone();
        let pis: Vec<_> = wide.inputs().to_vec();
        if pis.len() >= 2 {
            let g = wide.add_gate("wide_g", netlist::TruthTable::xor(pis.len().min(6))).unwrap();
            for &p in pis.iter().take(6) {
                wide.connect(p, g, vec![]).unwrap();
            }
            let o = wide.add_output("wide_o").unwrap();
            wide.connect(g, o, vec![]).unwrap();
        }
        let d = netlist::decompose_to_k(&wide, 2).unwrap();
        prop_assert!(d.max_fanin() <= 2);
        prop_assert!(
            netlist::random_equiv(&wide, &d, 256, 47).unwrap().is_equivalent()
        );
    }

    #[test]
    fn feasibility_monotone_in_phi(c in fsm_strategy()) {
        let prep = turbomap::prepare(&c, 3).unwrap();
        let ctx = turbomap::FrtContext::new(&prep, 3, 16);
        let mut prev = false;
        for phi in 1..=10u64 {
            let f = ctx.check(phi).feasible;
            prop_assert!(!prev || f, "feasibility must be monotone in Φ");
            prev = prev || f;
        }
    }
}
