//! Randomized integration tests: seeded random circuits through the whole
//! stack, with sequential equivalence and the paper's invariants as the
//! properties. Deterministic (fixed seeds via `engine::Rng64`) so failures
//! reproduce exactly.

use engine::Rng64;
use workloads::{generate_fsm, generate_layered, Encoding, FsmSpec, LayeredSpec};

const CASES: u64 = 24;

fn random_fsm(rng: &mut Rng64, tag: &str, case: u64) -> netlist::Circuit {
    generate_fsm(&FsmSpec {
        name: format!("p{tag}{case}"),
        states: rng.range_usize(2, 8),
        inputs: rng.range_usize(1, 4),
        decoded: 2,
        outputs: rng.range_usize(1, 3),
        encoding: if rng.chance(0.5) {
            Encoding::OneHot
        } else {
            Encoding::Binary
        },
        registered_inputs: rng.chance(0.5),
        seed: rng.next_u64() % 1000,
    })
}

fn random_layered(rng: &mut Rng64, tag: &str, case: u64) -> netlist::Circuit {
    let depth = rng.range_usize(2, 6);
    generate_layered(&LayeredSpec {
        name: format!("p{tag}{case}"),
        gates: rng.range_usize(10, 60).max(depth),
        ffs: rng.below(8),
        inputs: 4,
        outputs: 3,
        depth,
        registered_inputs: rng.chance(0.5),
        seed: rng.next_u64() % 1000,
    })
}

#[test]
fn turbomap_frt_equivalent_on_random_fsms() {
    let mut rng = Rng64::new(0x7A11);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "fsm", case);
        let res = turbomap::turbomap_frt(&c, turbomap::Options::with_k(4)).unwrap();
        assert!(!res.star(), "case {case}");
        assert!(res.circuit.max_fanin() <= 4, "case {case}");
        assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 17)
                .unwrap()
                .is_equivalent(),
            "case {case}: not equivalent"
        );
        // Optimality vs the baseline.
        let prep = turbomap::prepare(&c, 4).unwrap();
        let fm = flowmap::flowmap_frt(&prep, 4).unwrap();
        assert!(
            res.period <= fm.period,
            "case {case}: worse than FlowMap-frt"
        );
    }
}

#[test]
fn turbomap_frt_equivalent_on_random_layered() {
    let mut rng = Rng64::new(0x7A12);
    for case in 0..CASES {
        let c = random_layered(&mut rng, "lay", case);
        let res = turbomap::turbomap_frt(&c, turbomap::Options::with_k(5)).unwrap();
        assert!(!res.star(), "case {case}");
        assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 23)
                .unwrap()
                .is_equivalent(),
            "case {case}: not equivalent"
        );
    }
}

#[test]
fn general_retiming_starred_or_equivalent() {
    let mut rng = Rng64::new(0x7A13);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "gen", case);
        let res = turbomap::turbomap_general(&c, turbomap::Options::with_k(4)).unwrap();
        let eq = netlist::random_equiv(&c, &res.circuit, 256, 29)
            .unwrap()
            .is_equivalent();
        assert!(eq || res.star(), "case {case}: inequivalent without a star");
    }
}

#[test]
fn blif_round_trip_random() {
    let mut rng = Rng64::new(0x7A14);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "blif", case);
        let text = netlist::write_blif(&c);
        let back = netlist::parse_blif(&text).unwrap();
        assert!(
            netlist::random_equiv(&c, &back, 256, 31)
                .unwrap()
                .is_equivalent(),
            "case {case}"
        );
        assert!(
            netlist::random_equiv(&back, &c, 256, 37)
                .unwrap()
                .is_equivalent(),
            "case {case}"
        );
    }
}

#[test]
fn forward_retiming_preserves_behaviour() {
    let mut rng = Rng64::new(0x7A15);
    for case in 0..CASES {
        let c = random_layered(&mut rng, "fwd", case);
        let res = retiming::retime_min_period_forward(&c).unwrap();
        assert!(res.period <= c.clock_period().unwrap(), "case {case}");
        assert!(
            netlist::random_equiv(&c, &res.circuit, 256, 41)
                .unwrap()
                .is_equivalent(),
            "case {case}"
        );
    }
}

#[test]
fn pushback_preserves_behaviour() {
    let mut rng = Rng64::new(0x7A16);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "push", case);
        let (pushed, r, _) = retiming::push_registers_backward(&c, 8);
        assert!(r.values().iter().all(|&x| x >= 0), "case {case}");
        assert!(
            netlist::random_equiv(&c, &pushed, 256, 43)
                .unwrap()
                .is_equivalent(),
            "case {case}"
        );
    }
}

#[test]
fn decompose_preserves_behaviour() {
    let mut rng = Rng64::new(0x7A17);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "dec", case);
        // Re-bound to 2 (generators already emit ≤2, so splice in a wide
        // gate first to exercise decomposition).
        let mut wide = c.clone();
        let pis: Vec<_> = wide.inputs().to_vec();
        if pis.len() >= 2 {
            let g = wide
                .add_gate("wide_g", netlist::TruthTable::xor(pis.len().min(6)))
                .unwrap();
            for &p in pis.iter().take(6) {
                wide.connect(p, g, vec![]).unwrap();
            }
            let o = wide.add_output("wide_o").unwrap();
            wide.connect(g, o, vec![]).unwrap();
        }
        let d = netlist::decompose_to_k(&wide, 2).unwrap();
        assert!(d.max_fanin() <= 2, "case {case}");
        assert!(
            netlist::random_equiv(&wide, &d, 256, 47)
                .unwrap()
                .is_equivalent(),
            "case {case}"
        );
    }
}

#[test]
fn feasibility_monotone_in_phi() {
    let mut rng = Rng64::new(0x7A18);
    for case in 0..CASES {
        let c = random_fsm(&mut rng, "mono", case);
        let prep = turbomap::prepare(&c, 3).unwrap();
        let ctx = turbomap::FrtContext::new(&prep, 3, 16);
        let mut prev = false;
        for phi in 1..=10u64 {
            let f = ctx.check(phi).feasible;
            assert!(!prev || f, "case {case}: feasibility must be monotone in Φ");
            prev = prev || f;
        }
    }
}
