//! Cross-crate integration tests: the full mapping flows on generated
//! benchmarks, with sequential equivalence as the ground truth.

use netlist::{random_equiv, Circuit};
use turbomap::{turbomap_frt, turbomap_general, Options};

fn suite_under(max_gates: usize) -> Vec<(String, Circuit)> {
    workloads::table1_suite()
        .into_iter()
        .filter(|(_, c)| c.num_gates() <= max_gates)
        .map(|(p, c)| (p.name.to_string(), c))
        .collect()
}

#[test]
fn flows_are_equivalent_and_ordered() {
    for (name, c) in suite_under(150) {
        let k = 5;
        let prep = turbomap::prepare(&c, k).expect("valid");
        let fm = flowmap::flowmap_frt(&prep, k).expect("flowmap-frt");
        let tf = turbomap_frt(&c, Options::with_k(k)).expect("turbomap-frt");
        let tm = turbomap_general(&c, Options::with_k(k)).expect("turbomap");

        // Optimality ordering: more freedom never hurts.
        assert!(tf.period <= fm.period, "{name}: TMF > FM");
        assert!(tm.period <= tf.period, "{name}: TM > TMF");

        // Equivalence: FM and TMF always; TM unless starred.
        assert!(
            random_equiv(&c, &fm.circuit, 512, 1)
                .unwrap()
                .is_equivalent(),
            "{name}: FlowMap-frt not equivalent"
        );
        assert!(!tf.star(), "{name}: TurboMap-frt must never lose state");
        assert!(
            random_equiv(&c, &tf.circuit, 512, 2)
                .unwrap()
                .is_equivalent(),
            "{name}: TurboMap-frt not equivalent"
        );
        let tm_eq = random_equiv(&c, &tm.circuit, 512, 3)
            .unwrap()
            .is_equivalent();
        assert!(
            tm_eq || tm.star(),
            "{name}: TurboMap neither equivalent nor starred"
        );
    }
}

#[test]
fn k_sweep_monotone() {
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "dk17")
        .unwrap();
    let c = workloads::build_preset(&preset);
    let mut prev = u64::MAX;
    for k in 2..=6 {
        let tf = turbomap_frt(&c, Options::with_k(k)).expect("maps");
        assert!(
            tf.period <= prev,
            "period must not increase with K: k={k} gave {} after {prev}",
            tf.period
        );
        assert!(tf.circuit.max_fanin() <= k, "k={k}: LUT arity violated");
        assert!(
            random_equiv(&c, &tf.circuit, 256, k as u64)
                .unwrap()
                .is_equivalent(),
            "k={k}: not equivalent"
        );
        prev = tf.period;
    }
}

#[test]
fn fig2_requires_nonsimple() {
    // The Figure-2 property: simple FRT solutions (weight horizon 0)
    // cannot reach the optimal period.
    let c = workloads::fig2_circuit();
    let full = turbomap_frt(&c, Options::with_k(3)).expect("maps");
    let simple = turbomap_frt(
        &c,
        Options {
            weight_horizon: 0,
            ..Options::with_k(3)
        },
    )
    .expect("maps");
    assert!(
        full.period < simple.period,
        "non-simple Φ={} must beat simple-only Φ={}",
        full.period,
        simple.period
    );
    assert!(random_equiv(&c, &full.circuit, 512, 4)
        .unwrap()
        .is_equivalent());
}

#[test]
fn fig3_fig4_absorption() {
    use turbomap::{find_cut, ExpandedCircuit};
    // Figure 3: frt(c) = 0 forbids absorbing b's register.
    let f3 = workloads::fig3_circuit();
    let frt3 = retiming::max_forward_retiming_values(&f3);
    let c3 = f3.find("c").unwrap();
    assert_eq!(frt3[c3.index()], 0);
    let exp3 = ExpandedCircuit::build(&f3, c3, frt3[c3.index()], 10_000).unwrap();
    let ls3 = vec![0i64; f3.num_nodes()];
    let cut3 = find_cut(&exp3, &ls3, 10, 100, 0, 3).unwrap();
    let b3 = f3.find("b").unwrap();
    assert!(cut3.signals.iter().any(|s| s.node == b3 && s.weight == 1));

    // Figure 4: frt(c) = 1 allows it.
    let f4 = workloads::fig4_circuit();
    let frt4 = retiming::max_forward_retiming_values(&f4);
    let c4 = f4.find("c").unwrap();
    assert_eq!(frt4[c4.index()], 1);
    let exp4 = ExpandedCircuit::build(&f4, c4, frt4[c4.index()], 10_000).unwrap();
    // Force absorption: make a and b uncuttable via high labels.
    let mut ls4 = vec![0i64; f4.num_nodes()];
    ls4[f4.find("a").unwrap().index()] = 1000;
    ls4[f4.find("b").unwrap().index()] = 1000;
    let cut4 = find_cut(&exp4, &ls4, 10, 5, 1, 3).unwrap();
    let i1 = f4.find("i1").unwrap();
    assert!(cut4.signals.iter().all(|s| s.node == i1));
}

#[test]
fn pushback_then_map_methodology() {
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "ex2")
        .unwrap();
    let c = workloads::build_preset(&preset);
    let (pushed, _, _) = retiming::push_registers_backward(&c, 16);
    assert!(random_equiv(&c, &pushed, 512, 5).unwrap().is_equivalent());
    let direct = turbomap_frt(&c, Options::with_k(5)).expect("maps");
    let staged = turbomap_frt(&pushed, Options::with_k(5)).expect("maps");
    assert!(staged.period <= direct.period);
    assert!(random_equiv(&c, &staged.circuit, 512, 6)
        .unwrap()
        .is_equivalent());
}

#[test]
fn blif_round_trip_of_mapped_result() {
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "bbara")
        .unwrap();
    let c = workloads::build_preset(&preset);
    let tf = turbomap_frt(&c, Options::with_k(5)).expect("maps");
    let blif = netlist::write_blif(&tf.circuit);
    let reparsed = netlist::parse_blif(&blif).expect("parses");
    assert!(random_equiv(&c, &reparsed, 512, 7).unwrap().is_equivalent());
}

#[test]
fn partial_initial_states_supported() {
    // The paper: circuits with partial initial state assignment (X
    // registers) are handled; the mapped circuit conforms wherever the
    // original is defined.
    let mut c = Circuit::new("partial");
    let a = c.add_input("a").unwrap();
    let g1 = c.add_gate("g1", netlist::TruthTable::xor(2)).unwrap();
    let g2 = c.add_gate("g2", netlist::TruthTable::not()).unwrap();
    let o = c.add_output("o").unwrap();
    c.connect(a, g1, vec![netlist::Bit::X]).unwrap(); // unknown register
    c.connect(g2, g1, vec![netlist::Bit::One]).unwrap();
    c.connect(g1, g2, vec![]).unwrap();
    c.connect(g1, o, vec![]).unwrap();
    let tf = turbomap_frt(&c, Options::with_k(4)).expect("maps");
    assert!(random_equiv(&c, &tf.circuit, 512, 8)
        .unwrap()
        .is_equivalent());
}

#[test]
fn frtcheck_iterations_practical() {
    // §3.2: "the number of iterations for each Φ is around 5 ~ 15".
    for name in ["kirkman", "s1", "sand"] {
        let preset = workloads::presets()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap();
        let c = workloads::build_preset(&preset);
        let tf = turbomap_frt(&c, Options::with_k(5)).expect("maps");
        for (phi, iters) in &tf.iterations {
            assert!(
                *iters <= 40,
                "{name}: Φ={phi} needed {iters} sweeps (expected ≲ 15)"
            );
        }
    }
}

#[test]
fn post_passes_compose_and_preserve_equivalence() {
    // mapping → strash → pack keeps equivalence and never grows.
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "kirkman")
        .unwrap();
    let c = workloads::build_preset(&preset);
    let tf = turbomap_frt(&c, Options::with_k(5)).expect("maps");
    let swept = netlist::strash(&tf.circuit).expect("sweeps");
    assert!(swept.circuit.num_gates() <= tf.circuit.num_gates());
    let packed = flowmap::pack_luts(&swept.circuit, 5).expect("packs");
    assert!(packed.circuit.num_gates() <= swept.circuit.num_gates());
    assert!(packed.circuit.max_fanin() <= 5);
    assert!(
        random_equiv(&c, &packed.circuit, 512, 11)
            .unwrap()
            .is_equivalent(),
        "post-passes broke equivalence"
    );
    // The clock period is not harmed by either pass.
    assert!(packed.circuit.clock_period().unwrap() <= tf.period);
}

#[test]
fn register_minimisation_after_mapping() {
    let preset = workloads::presets()
        .into_iter()
        .find(|p| p.name == "ex2")
        .unwrap();
    let c = workloads::build_preset(&preset);
    let tf = turbomap_frt(&c, Options::with_k(5)).expect("maps");
    let budget = tf.circuit.clock_period().unwrap();
    let r = retiming::minimize_registers(&tf.circuit, budget, 8).expect("runs");
    assert!(r.after <= r.before);
    assert!(r.circuit.clock_period().unwrap() <= budget);
    assert!(
        random_equiv(&c, &r.circuit, 512, 13)
            .unwrap()
            .is_equivalent(),
        "register minimisation broke equivalence"
    );
}

#[test]
fn kiss2_through_full_flow() {
    // A KISS2 STG synthesised with both encodings maps equivalently.
    let src = "\
.i 2
.o 1
.s 5
.r idle
0- idle idle 0
1- idle run  1
-0 run  run  1
-1 run  cool 0
-- cool wait 0
1- wait idle 0
0- wait wait 0
.e
";
    let stg = workloads::parse_kiss2(src).expect("parses");
    for enc in [workloads::Encoding::OneHot, workloads::Encoding::Binary] {
        let c = workloads::synthesize_stg(&stg, enc, "ctrl").expect("synthesises");
        netlist::validate(&c).expect("valid");
        let tf = turbomap_frt(&c, Options::with_k(4)).expect("maps");
        assert!(
            random_equiv(&c, &tf.circuit, 512, 17)
                .unwrap()
                .is_equivalent(),
            "{enc:?}"
        );
    }
}
