//! Cooperative cancellation: a tripped `engine::cancel` token must be
//! observed inside the FRTcheck sweep loop and surface as
//! `TurboMapError::Cancelled`, never as a bogus mapping result.

use engine::cancel::{self, CancelToken};
use turbomap::{turbomap_frt, turbomap_general, Options, TurboMapError};
use workloads::{generate_fsm, Encoding, FsmSpec};

fn sample() -> netlist::Circuit {
    generate_fsm(&FsmSpec {
        name: "cancelme".into(),
        states: 8,
        inputs: 3,
        decoded: 2,
        outputs: 2,
        encoding: Encoding::Binary,
        registered_inputs: true,
        seed: 11,
    })
}

#[test]
fn pre_cancelled_token_aborts_frt_mapping() {
    let c = sample();
    let token = CancelToken::new();
    token.cancel();
    let _guard = cancel::install(token);
    match turbomap_frt(&c, Options::with_k(4)) {
        Err(TurboMapError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_token_aborts_general_mapping() {
    let c = sample();
    let token = CancelToken::new();
    token.cancel();
    let _guard = cancel::install(token);
    match turbomap_general(&c, Options::with_k(4)) {
        Err(TurboMapError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn frtcheck_observes_cancellation_mid_run() {
    // Trip the token from a watcher thread while FRTcheck sweeps: the
    // driver must abort with Cancelled instead of running to completion.
    // (Deterministic fallback: if the run finishes before the trip lands,
    // re-run with the token pre-tripped, which must cancel.)
    let c = sample();
    let token = CancelToken::new();
    let trip = token.clone();
    let watcher = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(1));
        trip.cancel();
    });
    let res = {
        let _guard = cancel::install(token.clone());
        turbomap_frt(&c, Options::with_k(4))
    };
    watcher.join().unwrap();
    match res {
        Err(TurboMapError::Cancelled) => {}
        Ok(_) => {
            // Outran the watcher — verify the cancelled path directly.
            let _guard = cancel::install(token);
            match turbomap_frt(&c, Options::with_k(4)) {
                Err(TurboMapError::Cancelled) => {}
                other => panic!("expected Cancelled after trip, got {other:?}"),
            }
        }
        Err(other) => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn uninstalled_token_does_not_affect_runs() {
    // No token installed: mapping runs to completion normally.
    let c = sample();
    let res = turbomap_frt(&c, Options::with_k(4)).unwrap();
    assert!(res.period >= 1);
}
