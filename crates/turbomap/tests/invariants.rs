//! Crate-level invariant tests for the TurboMap machinery, exercised on
//! randomized generated circuits.

use turbomap::{ExpandedCircuit, FrtContext, GeneralContext, Options};

fn circuits() -> Vec<netlist::Circuit> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        out.push(workloads::generate_fsm(&workloads::FsmSpec {
            name: format!("inv{seed}"),
            states: 3 + (seed as usize % 4),
            inputs: 1 + (seed as usize % 3),
            decoded: 2,
            outputs: 1 + (seed as usize % 2),
            encoding: if seed % 2 == 0 {
                workloads::Encoding::OneHot
            } else {
                workloads::Encoding::Binary
            },
            registered_inputs: seed % 3 == 0,
            seed,
        }));
    }
    out
}

/// Every expanded edge corresponds to an original edge whose register
/// count equals the weight difference (the defining property of §3.1:
/// every path from `u^w` to the root carries exactly `w` registers).
#[test]
fn expanded_path_weights_exact() {
    for c in circuits() {
        let prep = turbomap::prepare(&c, 4).unwrap();
        for v in prep.gate_ids().take(6) {
            let exp = match ExpandedCircuit::build(&prep, v, 3, 20_000) {
                Some(e) => e,
                None => continue,
            };
            for i in 0..exp.len() {
                for &f in exp.fanins(i) {
                    let child = exp.nodes[f as usize];
                    let parent = exp.nodes[i];
                    let delta = child.weight - parent.weight;
                    let matches = prep.node(parent.node).fanin().iter().any(|&e| {
                        let edge = prep.edge(e);
                        edge.from() == child.node && edge.weight() as u64 == delta
                    });
                    assert!(matches, "expanded edge weight mismatch");
                }
            }
        }
    }
}

/// Labels weaken as Φ grows: a larger period can only loosen the bounds.
#[test]
fn frt_labels_weaken_with_phi() {
    for c in circuits() {
        let prep = turbomap::prepare(&c, 4).unwrap();
        let ctx = FrtContext::new(&prep, 4, 16);
        let mut phis = Vec::new();
        for phi in 1..=6u64 {
            let r = ctx.check(phi);
            if r.feasible {
                phis.push((phi, r.labels));
            }
        }
        for w in phis.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            for i in 0..a.ls.len() {
                assert!(b.ls[i] <= a.ls[i], "label grew when Φ increased (node {i})");
            }
        }
    }
}

/// Forward-only feasibility implies general feasibility (forward is a
/// restriction of general retiming).
#[test]
fn general_labels_bound_forward() {
    for c in circuits() {
        let prep = turbomap::prepare(&c, 4).unwrap();
        let fctx = FrtContext::new(&prep, 4, 16);
        let gctx = GeneralContext::new(&prep, 4, 16);
        for phi in 1..=5u64 {
            let f = fctx.check(phi);
            let g = gctx.check(phi);
            if f.feasible {
                assert!(g.feasible, "forward feasible but general not (Φ={phi})");
            }
        }
    }
}

/// Mapped networks are valid, K-bounded and sharing-consistent (forward
/// retiming cannot create register value conflicts).
#[test]
fn mapped_networks_k_bounded() {
    for c in circuits() {
        for k in [3usize, 5] {
            let r = turbomap::turbomap_frt(&c, Options::with_k(k)).unwrap();
            assert!(r.circuit.max_fanin() <= k);
            assert!(netlist::validate(&r.circuit).is_ok());
            assert!(r.circuit.sharing_consistent());
        }
    }
}
