//! Deterministic intra-job parallelism for the label sweeps.
//!
//! A [`Board`] distributes the independent `LabelUpdate` queries of one
//! topological level across a fixed crew of helper threads (spawned once
//! per label check through [`engine::pool::scoped_workers`]) and collects
//! their results **in task order**, so the owner can apply them in exactly
//! the sequence a serial sweep would. The protocol per level ("epoch"):
//!
//! 1. the owner publishes the level's task list and bumps the epoch
//!    sequence number (helpers park on a condvar between epochs),
//! 2. owner and helpers claim task slots from a shared atomic counter and
//!    push `(slot, result)` pairs into a shared vector,
//! 3. each helper, once the counter is exhausted, checks in on the
//!    finished barrier; the owner waits for the full crew, then drains
//!    the results sorted by slot.
//!
//! Determinism across worker counts follows because the tasks of one
//! epoch are computed against labels the owner does not touch until the
//! barrier: each result is a pure function of (snapshot, task), whoever
//! computes it, and the apply order is fixed by the slot sort.
//!
//! Helpers never exit an epoch early — a worker that stopped claiming
//! while slots remain would still check in, so the barrier cannot hang;
//! cancellation instead short-circuits inside the compute closure (the
//! query returns a cheap "no information" answer) and the *owner* aborts
//! the sweep, whose partial results the driver then discards.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared state of one level-synchronized sweep crew.
///
/// `R` is the per-task result type. One board serves many epochs; create
/// it next to the labels it feeds and hand `&Board` to the helper
/// closures of [`engine::pool::scoped_workers`].
pub struct Board<R> {
    epoch: Mutex<Epoch>,
    epoch_cv: Condvar,
    /// Next unclaimed slot of the current epoch.
    next: AtomicUsize,
    /// Helpers that finished the current epoch.
    finished: Mutex<usize>,
    finished_cv: Condvar,
    results: Mutex<Vec<(usize, R)>>,
    stop: AtomicBool,
}

struct Epoch {
    seq: u64,
    tasks: Arc<Vec<u32>>,
}

impl<R> Default for Board<R> {
    fn default() -> Board<R> {
        Board::new()
    }
}

impl<R> Board<R> {
    /// A board with no published epoch.
    pub fn new() -> Board<R> {
        Board {
            epoch: Mutex::new(Epoch {
                seq: 0,
                tasks: Arc::new(Vec::new()),
            }),
            epoch_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            finished: Mutex::new(0),
            finished_cv: Condvar::new(),
            results: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    /// Helper-thread entry point: serve epochs until [`Board::stop`].
    ///
    /// `compute` runs once per claimed task; per-thread state (a cut
    /// scratch, a labels read guard) lives in the closure.
    pub fn serve(&self, mut compute: impl FnMut(u32) -> R) {
        let mut seen = 0u64;
        loop {
            let tasks = {
                let mut e = self.epoch.lock().expect("epoch poisoned");
                loop {
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    if e.seq > seen {
                        seen = e.seq;
                        break Arc::clone(&e.tasks);
                    }
                    e = self.epoch_cv.wait(e).expect("epoch poisoned");
                }
            };
            // Check in even if `compute` unwinds: a missing check-in would
            // park the owner on the barrier forever, turning a panic into
            // a hang. With the guard the owner sees a short result vector
            // instead and raises the alarm (and the original panic still
            // propagates when the thread scope joins).
            let _checkin = Checkin(self);
            self.claim(&tasks, &mut compute);
        }
    }

    fn claim(&self, tasks: &[u32], compute: &mut impl FnMut(u32) -> R) {
        loop {
            let slot = self.next.fetch_add(1, Ordering::Relaxed);
            if slot >= tasks.len() {
                return;
            }
            let r = compute(tasks[slot]);
            self.results
                .lock()
                .expect("results poisoned")
                .push((slot, r));
        }
    }

    /// Publishes one level, helps compute it, waits for the crew and
    /// returns the results in task order.
    ///
    /// `crew` is the number of [`Board::serve`] threads attached.
    ///
    /// # Panics
    ///
    /// Panics when a helper failed to deliver every claimed result (it
    /// panicked mid-task).
    pub fn run_level(
        &self,
        tasks: Vec<u32>,
        crew: usize,
        mut compute: impl FnMut(u32) -> R,
    ) -> Vec<R> {
        let want = tasks.len();
        let tasks = Arc::new(tasks);
        self.results.lock().expect("results poisoned").reserve(want);
        *self.finished.lock().expect("finished poisoned") = 0;
        {
            let mut e = self.epoch.lock().expect("epoch poisoned");
            // Helpers only read `next` after observing the new sequence
            // number, which this mutex publishes.
            self.next.store(0, Ordering::Relaxed);
            e.seq += 1;
            e.tasks = Arc::clone(&tasks);
            self.epoch_cv.notify_all();
        }
        self.claim(&tasks, &mut compute);
        let mut finished = self.finished.lock().expect("finished poisoned");
        while *finished < crew {
            finished = self.finished_cv.wait(finished).expect("finished poisoned");
        }
        drop(finished);
        let mut out = std::mem::take(&mut *self.results.lock().expect("results poisoned"));
        assert_eq!(out.len(), want, "a sweep helper lost results (panicked?)");
        out.sort_unstable_by_key(|&(slot, _)| slot);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Releases the crew: every [`Board::serve`] call returns. Idempotent;
    /// must run before the owning thread scope joins the helpers.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Lock the epoch mutex so a helper between its stop-check and its
        // condvar wait cannot miss the wake-up.
        let _e = self.epoch.lock().expect("epoch poisoned");
        self.epoch_cv.notify_all();
    }
}

struct Checkin<'a, R>(&'a Board<R>);

impl<R> Drop for Checkin<'_, R> {
    fn drop(&mut self) {
        let mut finished = self.0.finished.lock().expect("finished poisoned");
        *finished += 1;
        self.0.finished_cv.notify_all();
    }
}

/// RAII wrapper that [`Board::stop`]s on drop, so helpers are released
/// even when the owner's sweep unwinds.
pub struct StopOnDrop<'a, R>(
    /// The board whose crew to release.
    pub &'a Board<R>,
);

impl<R> Drop for StopOnDrop<'_, R> {
    fn drop(&mut self) {
        self.0.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_crew<R: Send>(
        crew: usize,
        board: &Board<R>,
        compute: impl Fn(u32) -> R + Sync,
        main: impl FnOnce() -> Vec<Vec<R>>,
    ) -> Vec<Vec<R>> {
        engine::pool::scoped_workers(
            crew,
            |_| board.serve(&compute),
            || {
                let out = main();
                board.stop();
                out
            },
        )
    }

    #[test]
    fn epochs_return_results_in_task_order() {
        let square = |t: u32| u64::from(t) * u64::from(t);
        for crew in [0usize, 1, 3] {
            // One board per crew: `stop` is terminal.
            let board: Board<u64> = Board::new();
            let levels = with_crew(crew, &board, square, || {
                (0..4u32)
                    .map(|lvl| {
                        let tasks: Vec<u32> = (lvl * 10..lvl * 10 + 7).collect();
                        board.run_level(tasks, crew, square)
                    })
                    .collect()
            });
            for (lvl, got) in levels.iter().enumerate() {
                let want: Vec<u64> = (lvl as u32 * 10..lvl as u32 * 10 + 7)
                    .map(|t| u64::from(t) * u64::from(t))
                    .collect();
                assert_eq!(*got, want, "crew={crew} level={lvl}");
            }
        }
    }

    #[test]
    fn empty_level_is_fine() {
        let board: Board<u32> = Board::new();
        let out = with_crew(
            2,
            &board,
            |t| t,
            || vec![board.run_level(Vec::new(), 2, |t| t)],
        );
        assert!(out[0].is_empty());
    }

    #[test]
    fn stop_on_drop_releases_crew() {
        let board: Board<u32> = Board::new();
        // No epochs at all: helpers park, the guard must free them.
        engine::pool::scoped_workers(
            2,
            |_| board.serve(|t| t),
            || {
                let _guard = StopOnDrop(&board);
            },
        );
    }
}
