//! Slack-aware mapping planning.
//!
//! The label pairs give each node the *tightest* achievable `l^s`, but the
//! final mapping only needs tight cuts along critical paths. Choosing every
//! root's min-height cut absorbs (and duplicates) far more logic than
//! necessary; real mappers relax non-critical cuts. This module plans the
//! root set with **required bounds** (`rb`):
//!
//! * a PO driver needs `rb = Φ` (forward retiming; Corollary 1 caps every
//!   root at `l^s ≤ Φ`) or `Φ·(1 + w_PO)` (general retiming);
//! * a cut signal `(u, w)` of a root planned with height bound `hb` needs
//!   `rb(u) ≤ hb + Φ·w − 1` so the consumer's cut height stays valid.
//!
//! Bounds only decrease, so a worklist converges; they never drop below
//! the optimal labels `L^s` (a chosen cut's height bound guarantees
//! `ls(u) ≤ hb + Φ·w − 1` for its own signals), so a feasible cut always
//! exists. The retiming values are `Ɍ(v) = ⌈hb(v)/Φ⌉ − 1`, legal by the
//! same ceiling algebra as Theorem 6.

use crate::cutsearch::{find_cut, ExpCut};
use crate::expand::ExpandedCircuit;
use netlist::{Circuit, NodeId};
use std::collections::HashMap;

/// A planned mapping: roots with their cuts and retiming values.
#[derive(Debug, Clone)]
pub struct MappingPlan {
    /// Root → its K-cut.
    pub roots: HashMap<NodeId, ExpCut>,
    /// Root → `Ɍ(v)` (Leiserson–Saxe sign).
    pub rr: HashMap<NodeId, i64>,
    /// Root → its final required bound `rb(v)`; `rb(v) − l^s(v) ≥ 0` is
    /// the root's label slack (0 on the critical demand chain).
    pub rb: HashMap<NodeId, i64>,
}

fn ceil_div(a: i64, b: i64) -> i64 {
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

/// Plans roots and cuts with slack relaxation.
///
/// `expanded(v)` supplies the expanded circuit of a gate; `ls` holds the
/// converged labels (`l^s` for FRT, plain `l` for general); `weight_cap`
/// maps a gate and its candidate height bound to the maximal cone weight
/// to try (`frt(v)` for FRT, the horizon for general); `forward_only`
/// caps all bounds at `Φ` so every `Ɍ ≤ 0`.
///
/// # Panics
///
/// Panics when no cut exists within the bounds (would contradict the
/// label computation's convergence).
pub fn plan_mapping<'a>(
    c: &Circuit,
    expanded: impl Fn(NodeId) -> Option<&'a ExpandedCircuit>,
    ls: &[i64],
    phi: u64,
    k: usize,
    weight_cap: impl Fn(NodeId) -> u64,
    forward_only: bool,
) -> MappingPlan {
    let phi_i = phi as i64;
    let hard_cap = |v: NodeId, base: i64| -> i64 {
        let _ = v;
        if forward_only {
            base.min(phi_i)
        } else {
            base
        }
    };
    let mut rb: HashMap<NodeId, i64> = HashMap::new();
    let mut worklist: Vec<NodeId> = Vec::new();
    for &po in c.outputs() {
        let e = c.node(po).fanin()[0];
        let edge = c.edge(e);
        let d = edge.from();
        if !c.node(d).is_gate() {
            continue;
        }
        let base = phi_i * (1 + edge.weight() as i64);
        let bound = hard_cap(d, base);
        match rb.get(&d) {
            Some(&old) if old <= bound => {}
            _ => {
                rb.insert(d, bound);
                worklist.push(d);
            }
        }
    }
    // chosen: root -> (height bound used, weight used, cut)
    let mut chosen: HashMap<NodeId, (i64, u64, ExpCut)> = HashMap::new();
    while let Some(v) = worklist.pop() {
        let bound = rb[&v];
        if let Some((hb_used, _, _)) = chosen.get(&v) {
            if *hb_used <= bound {
                continue; // still valid under the (possibly lowered) bound
            }
        }
        let exp = expanded(v).expect("live gates have expanded circuits");
        let cap = weight_cap(v);
        let mut picked = None;
        for w in 0..=cap {
            let hb = if forward_only {
                bound.min(phi_i * (1 - w as i64))
            } else {
                bound
            };
            if let Some(cut) = find_cut(exp, ls, phi_i, hb, w, k) {
                picked = Some((hb, w, cut));
                break;
            }
            if !forward_only {
                // General retiming: the bound does not depend on w, so a
                // single attempt at the full horizon settles existence.
                if let Some(cut) = find_cut(exp, ls, phi_i, hb, cap, k) {
                    picked = Some((hb, cap, cut));
                }
                break;
            }
        }
        let (hb, w, cut) = picked.unwrap_or_else(|| {
            panic!(
                "no cut for `{}` within rb={} (labels converged, so this \
                 contradicts Corollary 1)",
                c.node(v).name(),
                bound
            )
        });
        // Propagate demands to the cut's gate signals.
        for s in &cut.signals {
            if !c.node(s.node).is_gate() {
                continue;
            }
            let demand = hard_cap(s.node, hb + phi_i * s.weight as i64 - 1);
            match rb.get(&s.node) {
                Some(&old) if old <= demand => {}
                _ => {
                    rb.insert(s.node, demand);
                    worklist.push(s.node);
                }
            }
        }
        chosen.insert(v, (hb, w, cut));
    }
    // Re-chosen roots may have left stale demands behind; keep only the
    // roots actually reachable from the PO drivers through final cuts.
    let mut keep: HashMap<NodeId, bool> = HashMap::new();
    let mut stack: Vec<NodeId> = c
        .outputs()
        .iter()
        .filter_map(|&po| {
            let d = c.edge(c.node(po).fanin()[0]).from();
            c.node(d).is_gate().then_some(d)
        })
        .collect();
    while let Some(v) = stack.pop() {
        if keep.insert(v, true).is_some() {
            continue;
        }
        if let Some((_, _, cut)) = chosen.get(&v) {
            for s in &cut.signals {
                if c.node(s.node).is_gate() && !keep.contains_key(&s.node) {
                    stack.push(s.node);
                }
            }
        }
    }
    let mut roots = HashMap::new();
    let mut rr = HashMap::new();
    let mut rb_out = HashMap::new();
    for (v, (hb, _w, cut)) in chosen {
        if !keep.contains_key(&v) {
            continue;
        }
        rr.insert(v, ceil_div(hb, phi_i) - 1);
        rb_out.insert(v, rb[&v]);
        roots.insert(v, cut);
    }
    MappingPlan {
        roots,
        rr,
        rb: rb_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frtcheck::FrtContext;
    use netlist::{Bit, TruthTable};

    /// Chain with registers in front: slack planning should keep shallow
    /// gates in their own cheap LUTs instead of deep duplicated cones.
    fn sample() -> Circuit {
        let mut c = Circuit::new("s");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(i1, g1, vec![Bit::Zero]).unwrap();
        c.connect(i2, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i2, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(i1, g3, vec![]).unwrap();
        c.connect(g3, o1, vec![]).unwrap();
        c.connect(g1, o2, vec![]).unwrap(); // g1 is visible: must be a root
        c
    }

    #[test]
    fn plan_covers_pos_and_respects_k() {
        let c = sample();
        let ctx = FrtContext::new(&c, 2, 8);
        let phi = (1..=8)
            .find(|&p| ctx.check(p).feasible)
            .expect("some period feasible");
        let res = ctx.check(phi);
        let plan = plan_mapping(
            &c,
            |v| ctx.expanded(v),
            &res.labels.ls,
            phi,
            2,
            |v| ctx.frt[v.index()],
            true,
        );
        // Every PO driver is a root; every cut signal driver is a root.
        for &po in c.outputs() {
            let d = c.edge(c.node(po).fanin()[0]).from();
            assert!(plan.roots.contains_key(&d));
        }
        for cut in plan.roots.values() {
            assert!(cut.signals.len() <= 2);
            for s in &cut.signals {
                if c.node(s.node).is_gate() {
                    assert!(plan.roots.contains_key(&s.node));
                }
            }
        }
        // Forward-only: all retimings ≤ 0.
        assert!(plan.rr.values().all(|&r| r <= 0));
    }

    #[test]
    fn bounds_never_below_labels() {
        let c = sample();
        let ctx = FrtContext::new(&c, 2, 8);
        let phi = (1..=8).find(|&p| ctx.check(p).feasible).unwrap();
        let res = ctx.check(phi);
        let plan = plan_mapping(
            &c,
            |v| ctx.expanded(v),
            &res.labels.ls,
            phi,
            2,
            |v| ctx.frt[v.index()],
            true,
        );
        let _ = plan;
        // (The planner panics internally if a bound drops below L^s.)
    }
}
