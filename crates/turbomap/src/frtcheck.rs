//! FRTcheck: iterative label-pair computation (Figure 5 / Section 3.2).
//!
//! For a target clock period `Φ`, every node carries a lower-bound pair
//! `(l^s(v), r(v))` on its node label pair `(L^s(v), R(v))` (Definitions
//! 1–2): `l^s` is the l-value of the corresponding *simple* mapping
//! solution and `r` the number of registers pulled forward across the LUT.
//! Starting from `(0, 0)` at PIs and `(−∞, 0)` elsewhere, `LabelUpdate`
//! tightens the bounds monotonically via min-height-min-weight K-cuts on
//! the expanded circuits `F_v^{frt(v)}` until they converge to the label
//! pairs — or provably exceed the feasibility condition
//! `l^s(v) + Φ·r(v) ≤ Φ` (Corollary 1), in which case `Φ` is infeasible.
//!
//! Since lower bounds only grow and any node with `l^s(v) > Φ` already
//! violates Corollary 1 for every `r ≥ 0`, divergence is detected long
//! before the theoretical `|V|²` iteration cap.
//!
//! # Sweep structure: level-synchronized, two-phase
//!
//! Each sweep walks the topological levels of the combinational graph.
//! Per level, the dirty nodes' updates are **computed** against a frozen
//! label snapshot (serially, or fanned out over a [`crate::sweep::Board`]
//! crew), then **applied** in node order. Every computed pair is a pure
//! function of (snapshot, node), so the outcome — labels, sweep counts,
//! requeue counts — is byte-identical for every worker count. Register
//! edges may point within or across levels in either direction; that only
//! means an update can be computed against a slightly stale fanin bound,
//! and the dirty re-marking in the apply phase schedules the node again —
//! chaotic iteration of a monotone system converges to the same least
//! fixpoint under any fair order.
//!
//! # Warm starts
//!
//! [`FrtContext::check_opts`] can seed `l^s` from the labels of a
//! previously *feasible* check at a strictly larger Φ′. Since the final
//! `l^s` values are pointwise non-decreasing as Φ shrinks, that seed is
//! still below this probe's least fixpoint, and monotone ascent from any
//! point below the least fixpoint converges exactly to it (`r` restarts
//! at 0 and reconverges the same way) — so a warm probe returns the same
//! answer as a cold one, minus the sweeps spent re-deriving what the
//! previous probe already proved.

use crate::cutsearch::{find_cut_with, min_weight_cut_with, CutScratch, ExpCut};
use crate::expand::ExpandedCircuit;
use crate::sweep::{Board, StopOnDrop};
use crate::witness::{WitnessOutcome, WitnessStep};
use netlist::{Circuit, NodeId};
use std::sync::RwLock;

/// Practical ceiling on expanded-circuit size; `F_v^i` beyond this is
/// treated as cut-less at that bound (conservative; never triggered by the
/// benchmark suite — see DESIGN.md).
pub const MAX_EXPANDED_NODES: usize = 500_000;

/// Sentinel for `−∞` labels.
pub const LS_NEG_INF: i64 = i64::MIN / 4;

/// Smallest dirty-task count of a level worth waking the sweep crew for
/// (and the recording threshold of the `parallel_batch_size` histogram).
const PAR_THRESHOLD: usize = 4;

/// Per-node label pairs.
#[derive(Debug, Clone)]
pub struct LabelPairs {
    /// `l^s` lower bounds, per node id.
    pub ls: Vec<i64>,
    /// `r` lower bounds, per node id.
    pub r: Vec<u64>,
}

/// Outcome of one FRTcheck run.
#[derive(Debug, Clone)]
pub struct FrtCheck {
    /// True when a feasible FRT mapping solution exists for the period.
    pub feasible: bool,
    /// Final label pairs (meaningful when feasible).
    pub labels: LabelPairs,
    /// Sweeps executed (the paper reports 5–15 in practice).
    pub iterations: usize,
}

/// How a sweep loop ended (internal).
enum SweepEnd {
    /// The installed cancel token tripped; partial labels, no records.
    Cancelled,
    /// Corollary 1 provably violated (or the iteration cap was hit).
    Infeasible,
    /// Labels converged; Corollary 1 decides feasibility.
    Converged,
}

/// Precomputed per-circuit state shared across FRTcheck runs (binary
/// search on `Φ` re-uses it).
pub struct FrtContext<'a> {
    circuit: &'a Circuit,
    /// Capped `frt(v)` per node.
    pub frt: Vec<u64>,
    /// Gates whose true `frt(v)` exceeded the cap, so their expanded
    /// circuits are truncated and the mapping may be pessimal for them.
    pub frt_capped_gates: u64,
    /// Expanded circuit per gate, at bound `frt(v)`.
    expanded: Vec<Option<ExpandedCircuit>>,
    /// Topological levels over zero-weight edges: level `d` lists the
    /// non-PI nodes at combinational depth `d`, in topological order.
    /// Within a level no zero-weight edge connects two members, which is
    /// what makes the per-level fan-out safe and effective.
    levels: Levels,
    /// Inverted cone index as a CSR graph: the out-row of node `x` lists
    /// the gates whose expanded circuits contain `x` (whose labels
    /// therefore depend on `x`'s label through the cut heights).
    influenced: graphalgo::Csr,
    k: usize,
}

/// Topological levels in flat form: the nodes of level `d` are
/// `nodes[off[d]..off[d + 1]]` — one arena for the whole partition
/// instead of a `Vec` per depth.
#[derive(Debug, Clone, Default)]
pub(crate) struct Levels {
    off: Vec<u32>,
    nodes: Vec<u32>,
}

impl Levels {
    /// Number of levels.
    pub(crate) fn len(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// The nodes of level `d`, in topological order.
    pub(crate) fn level(&self, d: usize) -> &[u32] {
        &self.nodes[self.off[d] as usize..self.off[d + 1] as usize]
    }

    /// Iterates the levels shallow-to-deep.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len()).map(move |d| self.level(d))
    }

    /// Total node count across all levels.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.nodes.len()
    }
}

impl<'a> FrtContext<'a> {
    /// Builds the context: `frt` values (Lemma 1, Dijkstra) and expanded
    /// circuits `F_v^{frt(v)}` for every gate — built **once** per run and
    /// shared read-only by every Φ probe of the binary search.
    ///
    /// `frt_cap` bounds the forward-retiming horizon (Definition 3 allows
    /// arbitrarily large values on register-heavy inputs; the cap trades
    /// optimality for memory and is far beyond anything the benchmarks
    /// need). Gates actually truncated by the cap are counted in
    /// [`FrtContext::frt_capped_gates`], the `frt_capped` telemetry
    /// counter, and a structured warning — truncation is no longer
    /// silent.
    ///
    /// # Panics
    ///
    /// Panics on combinational cycles (validate first).
    pub fn new(circuit: &'a Circuit, k: usize, frt_cap: u64) -> FrtContext<'a> {
        let raw_frt = retiming::max_forward_retiming_values(circuit);
        let mut frt_capped_gates = 0u64;
        for v in circuit.gate_ids() {
            if raw_frt[v.index()] > frt_cap {
                frt_capped_gates += 1;
            }
        }
        if frt_capped_gates > 0 {
            engine::telemetry::count(engine::telemetry::Counter::FrtCapped, frt_capped_gates);
            engine::log::warn(
                "turbomap::frtcheck",
                "weight horizon capped frt(v); mapping may be suboptimal for these gates",
                &[
                    ("gates", engine::JsonValue::UInt(frt_capped_gates)),
                    ("cap", engine::JsonValue::UInt(frt_cap)),
                ],
            );
        }
        let frt: Vec<u64> = raw_frt.into_iter().map(|f| f.min(frt_cap)).collect();
        let order = circuit
            .comb_topo_order()
            .expect("combinational cycles must be rejected before mapping");
        let levels = comb_levels(circuit, &order);
        let mut expanded: Vec<Option<ExpandedCircuit>> = vec![None; circuit.num_nodes()];
        // Collect (node, dependent gate) pairs flat, then counting-sort
        // into a CSR row per node. The stamp array replaces a fresh
        // `seen` bitmap per gate (gate ids are dense, so `v.0 + 1` is a
        // unique generation tag).
        let mut infl_pairs: Vec<(usize, usize)> = Vec::new();
        let mut seen_stamp: Vec<u32> = vec![0; circuit.num_nodes()];
        for v in circuit.gate_ids() {
            let exp = ExpandedCircuit::build(circuit, v, frt[v.index()], MAX_EXPANDED_NODES);
            if let Some(exp) = &exp {
                let stamp = v.0 + 1;
                for en in &exp.nodes {
                    if seen_stamp[en.node.index()] != stamp {
                        seen_stamp[en.node.index()] = stamp;
                        infl_pairs.push((en.node.index(), v.index()));
                    }
                }
            }
            expanded[v.index()] = exp;
        }
        let influenced = graphalgo::Csr::from_edges(circuit.num_nodes(), &infl_pairs);
        FrtContext {
            circuit,
            frt,
            frt_capped_gates,
            expanded,
            levels,
            influenced,
            k,
        }
    }

    /// The expanded circuit of a gate (None when the size cap was hit).
    pub fn expanded(&self, v: NodeId) -> Option<&ExpandedCircuit> {
        self.expanded[v.index()].as_ref()
    }

    /// The LUT input bound `K` the context was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `ℒ^s(v) = max { l^s(u) − Φ·w(e) }` over fanin edges (§3.2).
    fn script_l(&self, ls: &[i64], v: NodeId, phi: i64) -> i64 {
        let mut best = LS_NEG_INF;
        for &e in self.circuit.node(v).fanin() {
            let edge = self.circuit.edge(e);
            let lu = ls[edge.from().index()];
            if lu > LS_NEG_INF {
                best = best.max(lu - phi * edge.weight() as i64);
            }
        }
        best
    }

    /// Runs FRTcheck for one target period (serial, cold-started).
    pub fn check(&self, phi: u64) -> FrtCheck {
        self.check_opts(phi, None, 1)
    }

    /// Runs FRTcheck with explicit reuse controls.
    ///
    /// * `warm` — label pairs of a previously **feasible** check of this
    ///   same context at a strictly larger Φ; their `l^s` seeds this run
    ///   (see the module docs for why that is sound). Pass `None` for a
    ///   cold start.
    /// * `workers` — total compute threads for the per-level cut queries
    ///   (1 = serial). The answer is byte-identical for every value;
    ///   helpers inherit the caller's cancel token and telemetry mirror
    ///   through [`engine::pool::scoped_workers`].
    pub fn check_opts(&self, phi: u64, warm: Option<&LabelPairs>, workers: usize) -> FrtCheck {
        let c = self.circuit;
        let n = c.num_nodes();
        let phi_i = phi as i64;
        let helpers = workers.max(1) - 1;
        let mut init = LabelPairs {
            ls: vec![LS_NEG_INF; n],
            r: vec![0; n],
        };
        for &pi in c.inputs() {
            init.ls[pi.index()] = 0;
        }
        if let Some(seed) = warm {
            debug_assert_eq!(seed.ls.len(), n);
            for v in c.node_ids() {
                if !c.node(v).is_input() {
                    init.ls[v.index()] = seed.ls[v.index()];
                }
            }
        }
        let labels = RwLock::new(init);
        let board: Board<Option<(i64, u64)>> = Board::new();
        let (end, iterations, cache_hits) = engine::pool::scoped_workers(
            helpers,
            |_| {
                let mut scratch = CutScratch::new();
                board.serve(|t| {
                    let guard = labels.read().expect("labels poisoned");
                    self.compute_node(&guard.ls, NodeId(t), phi_i, &mut scratch)
                });
            },
            || {
                let _stop = StopOnDrop(&board);
                self.sweep_loop(phi_i, &labels, &board, helpers)
            },
        );
        let labels = labels.into_inner().expect("labels poisoned");
        match end {
            SweepEnd::Cancelled => FrtCheck {
                feasible: false,
                labels,
                iterations,
            },
            SweepEnd::Infeasible => {
                record_probe_metrics(iterations, cache_hits);
                FrtCheck {
                    feasible: false,
                    labels,
                    iterations,
                }
            }
            SweepEnd::Converged => {
                record_probe_metrics(iterations, cache_hits);
                // Converged: Corollary 1 must hold at every node.
                let feasible = c.node_ids().all(|v| {
                    let i = v.index();
                    labels.ls[i] <= LS_NEG_INF || labels.ls[i] + phi_i * labels.r[i] as i64 <= phi_i
                });
                FrtCheck {
                    feasible,
                    labels,
                    iterations,
                }
            }
        }
    }

    /// The dirty-driven sweep loop: owner side of the two-phase scheme.
    /// Returns the end state, the sweep count, and the number of cut
    /// queries answered from the probe-invariant expansion cache.
    fn sweep_loop(
        &self,
        phi_i: i64,
        labels: &RwLock<LabelPairs>,
        board: &Board<Option<(i64, u64)>>,
        helpers: usize,
    ) -> (SweepEnd, usize, u64) {
        let c = self.circuit;
        let n = c.num_nodes();
        let cap = n.saturating_mul(n).max(4);
        let mut iterations = 0usize;
        let mut cache_hits = 0u64;
        // Dirty-driven sweeps: a node needs re-evaluation only when some
        // fanin label changed since its last update (the practical
        // speed-up behind the paper's "5–15 iterations per Φ").
        let mut dirty = vec![true; n];
        let mut tasks: Vec<u32> = Vec::new();
        let mut scratch = CutScratch::new();
        loop {
            // Sweep-granular cancellation: when the batch runner's deadline
            // (or an external cancel) trips the installed token, bail out
            // as "infeasible" — the driver re-checks the token and maps
            // the early exit to `TurboMapError::Cancelled`, never using
            // the partial labels. (The compute closures additionally
            // short-circuit per task, so a tripped token also drains an
            // in-flight parallel level at full speed.)
            if engine::cancel::cancelled() {
                return (SweepEnd::Cancelled, iterations, cache_hits);
            }
            iterations += 1;
            engine::telemetry::count(engine::telemetry::Counter::FrtSweeps, 1);
            let _sweep = engine::trace::span1("frtcheck_sweep", "n", iterations as u64);
            let _mem = engine::mem::scope(engine::mem::MemPhase::LabelSweep);
            let mut changed = false;
            for level in self.levels.iter() {
                // Phase 1: collect this level's dirty nodes. The flags
                // clear now; the apply phase below may re-mark them.
                tasks.clear();
                for &vi in level {
                    if dirty[vi as usize] {
                        dirty[vi as usize] = false;
                        tasks.push(vi);
                    }
                }
                if tasks.is_empty() {
                    continue;
                }
                cache_hits += tasks
                    .iter()
                    .filter(|&&vi| self.expanded[vi as usize].is_some())
                    .count() as u64;
                // Phase 2: compute every update against the frozen labels.
                // The batch-size histogram keys off the level size alone,
                // so its shape is identical for every worker count.
                let parallel = tasks.len() >= PAR_THRESHOLD;
                if parallel {
                    engine::telemetry::record(
                        engine::hist::Metric::ParallelBatchSize,
                        tasks.len() as u64,
                    );
                }
                let results: Vec<Option<(i64, u64)>> = if helpers > 0 && parallel {
                    board.run_level(tasks.clone(), helpers, |t| {
                        let guard = labels.read().expect("labels poisoned");
                        self.compute_node(&guard.ls, NodeId(t), phi_i, &mut scratch)
                    })
                } else {
                    let guard = labels.read().expect("labels poisoned");
                    tasks
                        .iter()
                        .map(|&t| self.compute_node(&guard.ls, NodeId(t), phi_i, &mut scratch))
                        .collect()
                };
                // Phase 3: apply in task order (what a serial sweep would
                // have done), re-marking dependents.
                let mut w = labels.write().expect("labels poisoned");
                for (slot, res) in results.into_iter().enumerate() {
                    let (new_ls, new_r) = match res {
                        Some(pair) => pair,
                        None => continue, // no information yet
                    };
                    let i = tasks[slot] as usize;
                    if new_ls > w.ls[i] || (new_ls == w.ls[i] && new_r > w.r[i]) {
                        w.ls[i] = new_ls;
                        w.r[i] = new_r;
                        changed = true;
                        // Direct fanouts see the change through ℒ^s; gates
                        // whose expanded circuits contain the node see it
                        // through their cut heights.
                        let node = c.node(NodeId(i as u32));
                        for &e in node.fanout() {
                            let t = c.edge(e).to().index();
                            if !dirty[t] {
                                dirty[t] = true;
                                engine::telemetry::count(
                                    engine::telemetry::Counter::FrtRequeuedGates,
                                    1,
                                );
                            }
                        }
                        for &g in self.influenced.out(i) {
                            if !dirty[g as usize] {
                                dirty[g as usize] = true;
                                engine::telemetry::count(
                                    engine::telemetry::Counter::FrtRequeuedGates,
                                    1,
                                );
                            }
                        }
                        if new_ls > phi_i {
                            // Lower bound already violates Corollary 1 for
                            // every r ≥ 0: infeasible.
                            return (SweepEnd::Infeasible, iterations, cache_hits);
                        }
                    }
                }
            }
            if !changed {
                return (SweepEnd::Converged, iterations, cache_hits);
            }
            if iterations >= cap {
                return (SweepEnd::Infeasible, iterations, cache_hits);
            }
        }
    }

    /// One node's tightened pair against a frozen snapshot: `ℒ^s` plus
    /// `LabelUpdate` for gates, `ℒ^s` itself for POs, `None` when the
    /// fanins carry no information yet (or cancellation tripped — the
    /// sweep is about to be discarded, so stop burning max-flows).
    fn compute_node(
        &self,
        ls: &[i64],
        v: NodeId,
        phi: i64,
        scratch: &mut CutScratch,
    ) -> Option<(i64, u64)> {
        if engine::cancel::cancelled() {
            return None;
        }
        if self.circuit.node(v).is_output() {
            let script = self.script_l(ls, v, phi);
            if script <= LS_NEG_INF {
                return None;
            }
            return Some((script, 0));
        }
        self.label_update(ls, v, phi, scratch)
    }

    /// `LabelUpdate` (§3.2): the tightened pair for a gate, or `None` when
    /// the fanins carry no information yet.
    fn label_update(
        &self,
        ls: &[i64],
        v: NodeId,
        phi: i64,
        scratch: &mut CutScratch,
    ) -> Option<(i64, u64)> {
        let script = self.script_l(ls, v, phi);
        if script <= LS_NEG_INF {
            return None;
        }
        let exp = match self.expanded(v) {
            Some(exp) => exp,
            None => return Some((script + 1, 0)), // conservative on cap
        };
        let frt_v = self.frt[v.index()];
        match min_weight_cut_with(scratch, exp, ls, phi, script, frt_v, self.k) {
            None => Some((script + 1, 0)),
            Some((w_min, _)) => {
                if script + phi * w_min as i64 <= phi {
                    Some((script, w_min))
                } else {
                    Some((script + 1, 0))
                }
            }
        }
    }

    /// Extracts, for every gate, the K-cut consistent with the final
    /// labels: height ≤ `l^s(v)`, cone weight ≤ `r(v)`.
    ///
    /// # Panics
    ///
    /// Panics if a cut cannot be re-derived (would contradict
    /// convergence).
    pub fn final_cuts(&self, labels: &LabelPairs, phi: u64) -> Vec<Option<ExpCut>> {
        let phi_i = phi as i64;
        let mut cuts: Vec<Option<ExpCut>> = vec![None; self.circuit.num_nodes()];
        let mut scratch = CutScratch::new();
        for v in self.circuit.gate_ids() {
            let i = v.index();
            if labels.ls[i] <= LS_NEG_INF {
                continue;
            }
            let exp = self.expanded(v).expect("expanded circuit exists");
            let cut = find_cut_with(
                &mut scratch,
                exp,
                &labels.ls,
                phi_i,
                labels.ls[i],
                labels.r[i],
                self.k,
            )
            .expect("converged labels admit a cut");
            cuts[i] = Some(cut);
        }
        cuts
    }

    /// Re-runs the probe at `phi` serially, recording every label
    /// improvement as a replayable [`WitnessStep`] (see [`crate::witness`]
    /// for the certificate semantics). Intended for the `Φ_min − 1` probe:
    /// on a truly infeasible period the recorded log ends with a step whose
    /// `value` exceeds `phi`, and an independent checker can replay the
    /// arithmetic without trusting the mapper.
    ///
    /// The probe is always serial and cold-started, and applies each
    /// improvement immediately (no per-level snapshot), so a checker
    /// replaying the log in order sees exactly the labels each cut query
    /// ran against. The `l^s` recurrence is self-contained (the `r`
    /// components never feed back into it), so the probe iterates `l^s`
    /// alone; it reaches the same least fixpoint as [`FrtContext::check`]
    /// and therefore the same feasibility verdict.
    pub fn infeasibility_witness(&self, phi: u64) -> WitnessOutcome {
        if self.frt_capped_gates > 0 {
            // R2/R3 justifications quantify over cuts of the *true*
            // F_v^{frt(v)}; a capped horizon hides cuts, so the log could
            // assert "no cut" where one exists and would not verify.
            return WitnessOutcome::Capped;
        }
        let c = self.circuit;
        let n = c.num_nodes();
        let phi_i = phi as i64;
        let cap = n.saturating_mul(n).max(4);
        let mut ls = vec![LS_NEG_INF; n];
        for &pi in c.inputs() {
            ls[pi.index()] = 0;
        }
        let mut dirty = vec![true; n];
        let mut scratch = CutScratch::new();
        let mut steps: Vec<WitnessStep> = Vec::new();
        let mut sweeps = 0usize;
        loop {
            if engine::cancel::cancelled() {
                return WitnessOutcome::Cancelled;
            }
            sweeps += 1;
            let mut changed = false;
            for level in self.levels.iter() {
                for &vi in level {
                    let i = vi as usize;
                    if !dirty[i] {
                        continue;
                    }
                    dirty[i] = false;
                    let v = NodeId(vi);
                    // ℒ^s with its argmax edge (the R1 justification).
                    let mut script = LS_NEG_INF;
                    let mut arg: Option<(NodeId, u64)> = None;
                    for &e in c.node(v).fanin() {
                        let edge = c.edge(e);
                        let lu = ls[edge.from().index()];
                        if lu > LS_NEG_INF {
                            let cand = lu - phi_i * edge.weight() as i64;
                            if cand > script {
                                script = cand;
                                arg = Some((edge.from(), edge.weight() as u64));
                            }
                        }
                    }
                    if script <= LS_NEG_INF {
                        continue;
                    }
                    let (from, weight) = arg.expect("finite ℒ^s has an argmax edge");
                    let (new_ls, step) = if c.node(v).is_output() {
                        (
                            script,
                            WitnessStep::Fanin {
                                node: v,
                                from,
                                weight,
                                value: script,
                            },
                        )
                    } else {
                        let exp = match self.expanded(v) {
                            Some(exp) => exp,
                            None => return WitnessOutcome::Capped,
                        };
                        let frt_v = self.frt[v.index()];
                        match min_weight_cut_with(
                            &mut scratch,
                            exp,
                            &ls,
                            phi_i,
                            script,
                            frt_v,
                            self.k,
                        ) {
                            None => (
                                script + 1,
                                WitnessStep::NoCut {
                                    node: v,
                                    height: script,
                                    value: script + 1,
                                },
                            ),
                            Some((w_min, _)) => {
                                if script + phi_i * w_min as i64 <= phi_i {
                                    (
                                        script,
                                        WitnessStep::Fanin {
                                            node: v,
                                            from,
                                            weight,
                                            value: script,
                                        },
                                    )
                                } else {
                                    (
                                        script + 1,
                                        WitnessStep::WeightBump {
                                            node: v,
                                            height: script,
                                            w_min,
                                            value: script + 1,
                                        },
                                    )
                                }
                            }
                        }
                    };
                    if new_ls > ls[i] {
                        ls[i] = new_ls;
                        steps.push(step);
                        changed = true;
                        if new_ls > phi_i {
                            return WitnessOutcome::Infeasible(steps);
                        }
                        for &e in c.node(v).fanout() {
                            dirty[c.edge(e).to().index()] = true;
                        }
                        for &g in self.influenced.out(i) {
                            dirty[g as usize] = true;
                        }
                    }
                }
            }
            if !changed {
                return WitnessOutcome::Feasible;
            }
            if sweeps >= cap {
                return WitnessOutcome::IterationCap;
            }
        }
    }
}

/// Records the per-probe reuse metrics (shared by the converged and
/// infeasible exits; cancelled runs record nothing, like before).
fn record_probe_metrics(iterations: usize, cache_hits: u64) {
    engine::telemetry::record(engine::hist::Metric::SweepsPerPhi, iterations as u64);
    engine::telemetry::record(engine::hist::Metric::CacheHitsPerProbe, cache_hits);
}

/// Groups the non-PI nodes by combinational depth (longest zero-weight
/// path from any source), preserving topological order within each level.
pub(crate) fn comb_levels(c: &Circuit, order: &[NodeId]) -> Levels {
    let n = c.num_nodes();
    let mut depth = vec![0u32; n];
    let mut max_depth = 0u32;
    for &v in order {
        let mut d = 0u32;
        for &e in c.node(v).fanin() {
            let edge = c.edge(e);
            if edge.weight() == 0 {
                d = d.max(depth[edge.from().index()] + 1);
            }
        }
        depth[v.index()] = d;
        max_depth = max_depth.max(d);
    }
    // Stable counting sort by depth over the topological scan: each
    // level's slice keeps topological order, packed into one flat arena.
    let num_levels = max_depth as usize + 1;
    let mut off = vec![0u32; num_levels + 1];
    for &v in order {
        if !c.node(v).is_input() {
            off[depth[v.index()] as usize + 1] += 1;
        }
    }
    for d in 0..num_levels {
        off[d + 1] += off[d];
    }
    let mut nodes = vec![0u32; off[num_levels] as usize];
    let mut cursor = off[..num_levels].to_vec();
    for &v in order {
        if !c.node(v).is_input() {
            let d = depth[v.index()] as usize;
            nodes[cursor[d] as usize] = v.0;
            cursor[d] += 1;
        }
    }
    Levels { off, nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// Figure 2(a) of the paper (our reconstruction): a 2-gate chain from
    /// i1 plus a register-carrying side path, K = 3. The paper's point:
    /// Φ = 2 has no *simple* FRT solution but does have a non-simple one.
    fn chainy() -> Circuit {
        let mut c = Circuit::new("t");
        let i1 = c.add_input("i1").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        c
    }

    #[test]
    fn pis_stay_zero() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(3);
        assert!(res.feasible);
        for &pi in c.inputs() {
            assert_eq!(res.labels.ls[pi.index()], 0);
            assert_eq!(res.labels.r[pi.index()], 0);
        }
    }

    #[test]
    fn single_lut_when_k_large() {
        // Whole chain fits one LUT; with the register pulled forward
        // (r = 1), Φ = 1 becomes feasible... the cut {i1^1} has weight 1:
        // l^s = 0 - Φ·1 + ... cut height = l(i1) - Φ·1 + 1 = -Φ + 1 ≤ 0.
        let c = chainy();
        let ctx = FrtContext::new(&c, 3, 32);
        let res = ctx.check(1);
        assert!(res.feasible, "labels: {:?}", res.labels);
        let g3 = c.find("g3").unwrap();
        assert!(res.labels.ls[g3.index()] + res.labels.r[g3.index()] as i64 <= 1);
    }

    #[test]
    fn k1_collapses_inverter_chain() {
        // With K=1 the whole inverter chain is a single 1-input LUT, so
        // pulling the register forward gives Φ = 1.
        let c = chainy();
        let ctx = FrtContext::new(&c, 1, 32);
        assert!(ctx.check(1).feasible);
    }

    #[test]
    fn wide_chain_needs_period_two() {
        // Each gate mixes the chain with a fresh PI: at K=2 every gate is
        // its own LUT, and the single register can only split the 3-LUT
        // path as 1+2 → Φ=2 optimal, Φ=1 infeasible.
        let mut c = Circuit::new("w");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let i3 = c.add_input("i3").unwrap();
        let i4 = c.add_input("i4").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::Zero]).unwrap();
        c.connect(i2, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i3, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(i4, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 32);
        assert!(!ctx.check(1).feasible);
        assert!(ctx.check(2).feasible);
    }

    #[test]
    fn iterations_reported_small() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(2);
        assert!(res.feasible);
        assert!(res.iterations <= 10, "iterations = {}", res.iterations);
    }

    #[test]
    fn labels_monotone_under_phi() {
        // Feasibility is monotone in Φ.
        let c = chainy();
        for k in 1..=3 {
            let ctx = FrtContext::new(&c, k, 32);
            let mut prev = false;
            for phi in 1..=4 {
                let f = ctx.check(phi).feasible;
                assert!(!prev || f, "k={k} phi={phi}");
                prev = f;
            }
        }
    }

    #[test]
    fn final_cuts_respect_labels() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(2);
        assert!(res.feasible);
        let cuts = ctx.final_cuts(&res.labels, 2);
        for v in c.gate_ids() {
            let cut = cuts[v.index()].as_ref().expect("gate cut");
            assert!(cut.signals.len() <= 2);
            for s in &cut.signals {
                let h = res.labels.ls[s.node.index()] - 2 * s.weight as i64 + 1;
                assert!(h <= res.labels.ls[v.index()]);
            }
        }
    }

    #[test]
    fn cycle_ratio_infeasibility_detected() {
        // 3-gate register loop, one register, and a fresh PI into every
        // loop gate: at K=2 no LUT can absorb two loop gates (3 distinct
        // inputs), so the loop stays 3 LUTs with 1 register → Φ ≥ 3.
        let mut c = Circuit::new("loop");
        let a1 = c.add_input("a1").unwrap();
        let a2 = c.add_input("a2").unwrap();
        let a3 = c.add_input("a3").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a1, g1, vec![]).unwrap();
        c.connect(g3, g1, vec![Bit::Zero]).unwrap();
        c.connect(a2, g2, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(a3, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 32);
        assert!(!ctx.check(2).feasible);
        assert!(ctx.check(3).feasible);
    }

    #[test]
    fn levels_partition_non_inputs_topologically() {
        let c = chainy();
        let order = c.comb_topo_order().unwrap();
        let levels = comb_levels(&c, &order);
        let total = levels.total();
        let non_inputs = c.node_ids().filter(|&v| !c.node(v).is_input()).count();
        assert_eq!(total, non_inputs);
        // Zero-weight edges must never connect two nodes of one level.
        let mut level_of = vec![usize::MAX; c.num_nodes()];
        for (d, lvl) in levels.iter().enumerate() {
            for &vi in lvl {
                level_of[vi as usize] = d;
            }
        }
        for v in c.node_ids() {
            for &e in c.node(v).fanin() {
                let edge = c.edge(e);
                if edge.weight() == 0 && !c.node(edge.from()).is_input() {
                    assert!(level_of[edge.from().index()] < level_of[v.index()]);
                }
            }
        }
    }

    #[test]
    fn warm_start_reaches_the_same_fixpoint() {
        let c = chainy();
        for k in 1..=3 {
            let ctx = FrtContext::new(&c, k, 32);
            for upper in 2..=4u64 {
                let seed = ctx.check(upper);
                if !seed.feasible {
                    continue;
                }
                for phi in 1..upper {
                    let cold = ctx.check(phi);
                    let warm = ctx.check_opts(phi, Some(&seed.labels), 1);
                    assert_eq!(cold.feasible, warm.feasible, "k={k} phi={phi}");
                    if cold.feasible {
                        assert_eq!(cold.labels.ls, warm.labels.ls, "k={k} phi={phi}");
                        assert_eq!(cold.labels.r, warm.labels.r, "k={k} phi={phi}");
                    }
                    assert!(
                        warm.iterations <= cold.iterations,
                        "warm start must not add sweeps (k={k} phi={phi})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_check_matches_serial_exactly() {
        let c = chainy();
        for k in 1..=3 {
            let ctx = FrtContext::new(&c, k, 32);
            for phi in 1..=4u64 {
                let serial = ctx.check_opts(phi, None, 1);
                for workers in [2usize, 4] {
                    let par = ctx.check_opts(phi, None, workers);
                    assert_eq!(serial.feasible, par.feasible, "k={k} phi={phi}");
                    assert_eq!(serial.iterations, par.iterations, "k={k} phi={phi}");
                    assert_eq!(serial.labels.ls, par.labels.ls, "k={k} phi={phi}");
                    assert_eq!(serial.labels.r, par.labels.r, "k={k} phi={phi}");
                }
            }
        }
    }

    /// Replays a witness log the way the independent checker does (same
    /// label array, rules accepted at face value) — here we only assert
    /// the structural invariants the checker relies on: steps in replay
    /// order never cite labels that have not been derived yet, and the
    /// terminal value exceeds the probed period.
    fn assert_witness_shape(c: &Circuit, phi: u64, steps: &[WitnessStep]) {
        let phi_i = phi as i64;
        let mut cur = vec![LS_NEG_INF; c.num_nodes()];
        for &pi in c.inputs() {
            cur[pi.index()] = 0;
        }
        for step in steps {
            if let WitnessStep::Fanin {
                node,
                from,
                weight,
                value,
            } = step
            {
                assert!(cur[from.index()] > LS_NEG_INF, "R1 cites underived label");
                assert_eq!(*value, cur[from.index()] - phi_i * *weight as i64);
                assert!(c.node(*node).fanin().iter().any(|&e| {
                    let edge = c.edge(e);
                    edge.from() == *from && edge.weight() as u64 == *weight
                }));
            }
            let v = step.node().index();
            assert!(step.value() > cur[v], "step does not improve its node");
            cur[v] = step.value();
        }
        let last = steps.last().expect("non-empty witness");
        assert!(last.value() > phi_i, "terminal value must exceed Φ");
    }

    #[test]
    fn witness_probe_matches_check_verdicts() {
        let c = chainy();
        for k in 1..=3 {
            let ctx = FrtContext::new(&c, k, 32);
            for phi in 1..=4u64 {
                let check = ctx.check(phi);
                match ctx.infeasibility_witness(phi) {
                    WitnessOutcome::Infeasible(steps) => {
                        assert!(!check.feasible, "k={k} phi={phi}");
                        assert_witness_shape(&c, phi, &steps);
                    }
                    WitnessOutcome::Feasible => assert!(check.feasible, "k={k} phi={phi}"),
                    other => panic!("unexpected outcome {other:?} (k={k} phi={phi})"),
                }
            }
        }
    }

    #[test]
    fn witness_for_cycle_ratio_infeasibility() {
        // Same register-loop circuit as `cycle_ratio_infeasibility_detected`:
        // Φ = 2 infeasible at K = 2.
        let mut c = Circuit::new("loop");
        let a1 = c.add_input("a1").unwrap();
        let a2 = c.add_input("a2").unwrap();
        let a3 = c.add_input("a3").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a1, g1, vec![]).unwrap();
        c.connect(g3, g1, vec![Bit::Zero]).unwrap();
        c.connect(a2, g2, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(a3, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 32);
        match ctx.infeasibility_witness(2) {
            WitnessOutcome::Infeasible(steps) => assert_witness_shape(&c, 2, &steps),
            other => panic!("expected a witness, got {other:?}"),
        }
        assert_eq!(ctx.infeasibility_witness(3), WitnessOutcome::Feasible);
    }

    #[test]
    fn witness_probe_handles_phi_zero() {
        // Φ = 0 (the probe below Φ_min = 1): any gate fed by a PI refutes
        // it, giving the shortest possible derivation.
        let c = chainy();
        let ctx = FrtContext::new(&c, 3, 32);
        match ctx.infeasibility_witness(0) {
            WitnessOutcome::Infeasible(steps) => assert_witness_shape(&c, 0, &steps),
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn witness_unavailable_when_frt_capped() {
        let mut c = Circuit::new("deep");
        let i = c.add_input("i").unwrap();
        let mut prev = i;
        for d in 0..6u64 {
            let g = c.add_gate(format!("g{d}"), TruthTable::not()).unwrap();
            c.connect(prev, g, vec![Bit::Zero]).unwrap();
            prev = g;
        }
        let o = c.add_output("o").unwrap();
        c.connect(prev, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 3);
        assert!(ctx.frt_capped_gates > 0);
        assert_eq!(ctx.infeasibility_witness(1), WitnessOutcome::Capped);
    }

    #[test]
    fn frt_cap_truncation_is_counted() {
        // A register chain deeper than the cap: every gate past the cap
        // has frt(v) above it.
        let mut c = Circuit::new("deep");
        let i = c.add_input("i").unwrap();
        let mut prev = i;
        let depth = 6u64;
        for d in 0..depth {
            let g = c.add_gate(format!("g{d}"), TruthTable::not()).unwrap();
            c.connect(prev, g, vec![Bit::Zero]).unwrap();
            prev = g;
        }
        let o = c.add_output("o").unwrap();
        c.connect(prev, o, vec![]).unwrap();
        // Cap below the chain depth: gates at register depth cap+1.. are
        // truncated. frt(g_d) = d+1 registers from the PI.
        let cap = 3u64;
        let ctx = FrtContext::new(&c, 2, cap);
        assert_eq!(ctx.frt_capped_gates, depth - cap);
        for d in 0..depth {
            let g = c.find(&format!("g{d}")).unwrap();
            assert!(ctx.frt[g.index()] <= cap);
        }
        // An ample cap reports nothing.
        let ctx2 = FrtContext::new(&c, 2, 64);
        assert_eq!(ctx2.frt_capped_gates, 0);
    }
}
