//! FRTcheck: iterative label-pair computation (Figure 5 / Section 3.2).
//!
//! For a target clock period `Φ`, every node carries a lower-bound pair
//! `(l^s(v), r(v))` on its node label pair `(L^s(v), R(v))` (Definitions
//! 1–2): `l^s` is the l-value of the corresponding *simple* mapping
//! solution and `r` the number of registers pulled forward across the LUT.
//! Starting from `(0, 0)` at PIs and `(−∞, 0)` elsewhere, `LabelUpdate`
//! tightens the bounds monotonically via min-height-min-weight K-cuts on
//! the expanded circuits `F_v^{frt(v)}` until they converge to the label
//! pairs — or provably exceed the feasibility condition
//! `l^s(v) + Φ·r(v) ≤ Φ` (Corollary 1), in which case `Φ` is infeasible.
//!
//! Since lower bounds only grow and any node with `l^s(v) > Φ` already
//! violates Corollary 1 for every `r ≥ 0`, divergence is detected long
//! before the theoretical `|V|²` iteration cap.

use crate::cutsearch::{find_cut, min_weight_cut, ExpCut};
use crate::expand::ExpandedCircuit;
use netlist::{Circuit, NodeId};

/// Practical ceiling on expanded-circuit size; `F_v^i` beyond this is
/// treated as cut-less at that bound (conservative; never triggered by the
/// benchmark suite — see DESIGN.md).
pub const MAX_EXPANDED_NODES: usize = 500_000;

/// Sentinel for `−∞` labels.
pub const LS_NEG_INF: i64 = i64::MIN / 4;

/// Per-node label pairs.
#[derive(Debug, Clone)]
pub struct LabelPairs {
    /// `l^s` lower bounds, per node id.
    pub ls: Vec<i64>,
    /// `r` lower bounds, per node id.
    pub r: Vec<u64>,
}

/// Outcome of one FRTcheck run.
#[derive(Debug, Clone)]
pub struct FrtCheck {
    /// True when a feasible FRT mapping solution exists for the period.
    pub feasible: bool,
    /// Final label pairs (meaningful when feasible).
    pub labels: LabelPairs,
    /// Sweeps executed (the paper reports 5–15 in practice).
    pub iterations: usize,
}

/// Precomputed per-circuit state shared across FRTcheck runs (binary
/// search on `Φ` re-uses it).
pub struct FrtContext<'a> {
    circuit: &'a Circuit,
    /// Capped `frt(v)` per node.
    pub frt: Vec<u64>,
    /// Expanded circuit per gate, at bound `frt(v)`.
    expanded: Vec<Option<ExpandedCircuit>>,
    /// Combinational topological order (good label propagation order).
    order: Vec<NodeId>,
    /// Inverted cone index: `influenced[x]` lists the gates whose
    /// expanded circuits contain node `x` (whose labels therefore depend
    /// on `x`'s label through the cut heights).
    influenced: Vec<Vec<u32>>,
    k: usize,
}

impl<'a> FrtContext<'a> {
    /// Builds the context: `frt` values (Lemma 1, Dijkstra) and expanded
    /// circuits `F_v^{frt(v)}` for every gate.
    ///
    /// `frt_cap` bounds the forward-retiming horizon (Definition 3 allows
    /// arbitrarily large values on register-heavy inputs; the cap trades
    /// optimality for memory and is far beyond anything the benchmarks
    /// need).
    ///
    /// # Panics
    ///
    /// Panics on combinational cycles (validate first).
    pub fn new(circuit: &'a Circuit, k: usize, frt_cap: u64) -> FrtContext<'a> {
        let frt: Vec<u64> = retiming::max_forward_retiming_values(circuit)
            .into_iter()
            .map(|f| f.min(frt_cap))
            .collect();
        let order = circuit
            .comb_topo_order()
            .expect("combinational cycles must be rejected before mapping");
        let mut expanded: Vec<Option<ExpandedCircuit>> = vec![None; circuit.num_nodes()];
        let mut influenced: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_nodes()];
        for v in circuit.gate_ids() {
            let exp = ExpandedCircuit::build(circuit, v, frt[v.index()], MAX_EXPANDED_NODES);
            if let Some(exp) = &exp {
                let mut seen = vec![false; circuit.num_nodes()];
                for en in &exp.nodes {
                    if !seen[en.node.index()] {
                        seen[en.node.index()] = true;
                        influenced[en.node.index()].push(v.0);
                    }
                }
            }
            expanded[v.index()] = exp;
        }
        FrtContext {
            circuit,
            frt,
            expanded,
            order,
            influenced,
            k,
        }
    }

    /// The expanded circuit of a gate (None when the size cap was hit).
    pub fn expanded(&self, v: NodeId) -> Option<&ExpandedCircuit> {
        self.expanded[v.index()].as_ref()
    }

    /// `ℒ^s(v) = max { l^s(u) − Φ·w(e) }` over fanin edges (§3.2).
    fn script_l(&self, ls: &[i64], v: NodeId, phi: i64) -> i64 {
        let mut best = LS_NEG_INF;
        for &e in self.circuit.node(v).fanin() {
            let edge = self.circuit.edge(e);
            let lu = ls[edge.from().index()];
            if lu > LS_NEG_INF {
                best = best.max(lu - phi * edge.weight() as i64);
            }
        }
        best
    }

    /// Runs FRTcheck for one target period.
    pub fn check(&self, phi: u64) -> FrtCheck {
        let c = self.circuit;
        let n = c.num_nodes();
        let phi_i = phi as i64;
        let mut labels = LabelPairs {
            ls: vec![LS_NEG_INF; n],
            r: vec![0; n],
        };
        for &pi in c.inputs() {
            labels.ls[pi.index()] = 0;
        }
        let cap = n.saturating_mul(n).max(4);
        let mut iterations = 0usize;
        // Dirty-driven sweeps: a node needs re-evaluation only when some
        // fanin label changed since its last update (the practical
        // speed-up behind the paper's "5–15 iterations per Φ").
        let mut dirty = vec![true; n];
        loop {
            // Sweep-granular cancellation: when the batch runner's deadline
            // (or an external cancel) trips the installed token, bail out
            // as "infeasible" — the driver re-checks the token and maps
            // the early exit to `TurboMapError::Cancelled`, never using
            // the partial labels.
            if engine::cancel::cancelled() {
                return FrtCheck {
                    feasible: false,
                    labels,
                    iterations,
                };
            }
            iterations += 1;
            engine::telemetry::count(engine::telemetry::Counter::FrtSweeps, 1);
            let _sweep = engine::trace::span1("frtcheck_sweep", "n", iterations as u64);
            let mut changed = false;
            for &v in &self.order {
                let node = c.node(v);
                if node.is_input() || !dirty[v.index()] {
                    continue;
                }
                dirty[v.index()] = false;
                let (new_ls, new_r) = if node.is_output() {
                    (self.script_l(&labels.ls, v, phi_i), 0u64)
                } else {
                    match self.label_update(&labels.ls, v, phi_i) {
                        Some(pair) => pair,
                        None => continue, // no information yet
                    }
                };
                let i = v.index();
                if new_ls > labels.ls[i] || (new_ls == labels.ls[i] && new_r > labels.r[i]) {
                    labels.ls[i] = new_ls;
                    labels.r[i] = new_r;
                    changed = true;
                    // Direct fanouts see the change through ℒ^s; gates
                    // whose expanded circuits contain `v` see it through
                    // their cut heights.
                    for &e in node.fanout() {
                        let t = c.edge(e).to().index();
                        if !dirty[t] {
                            dirty[t] = true;
                            engine::telemetry::count(
                                engine::telemetry::Counter::FrtRequeuedGates,
                                1,
                            );
                        }
                    }
                    for &g in &self.influenced[i] {
                        if !dirty[g as usize] {
                            dirty[g as usize] = true;
                            engine::telemetry::count(
                                engine::telemetry::Counter::FrtRequeuedGates,
                                1,
                            );
                        }
                    }
                    if new_ls > phi_i {
                        // Lower bound already violates Corollary 1 for
                        // every r ≥ 0: infeasible.
                        engine::telemetry::record(
                            engine::hist::Metric::SweepsPerPhi,
                            iterations as u64,
                        );
                        return FrtCheck {
                            feasible: false,
                            labels,
                            iterations,
                        };
                    }
                }
            }
            if !changed {
                break;
            }
            if iterations >= cap {
                engine::telemetry::record(engine::hist::Metric::SweepsPerPhi, iterations as u64);
                return FrtCheck {
                    feasible: false,
                    labels,
                    iterations,
                };
            }
        }
        engine::telemetry::record(engine::hist::Metric::SweepsPerPhi, iterations as u64);
        // Converged: Corollary 1 must hold at every node.
        let feasible = c.node_ids().all(|v| {
            let i = v.index();
            labels.ls[i] <= LS_NEG_INF || labels.ls[i] + phi_i * labels.r[i] as i64 <= phi_i
        });
        FrtCheck {
            feasible,
            labels,
            iterations,
        }
    }

    /// `LabelUpdate` (§3.2): the tightened pair for a gate, or `None` when
    /// the fanins carry no information yet.
    fn label_update(&self, ls: &[i64], v: NodeId, phi: i64) -> Option<(i64, u64)> {
        let script = self.script_l(ls, v, phi);
        if script <= LS_NEG_INF {
            return None;
        }
        let exp = match self.expanded(v) {
            Some(exp) => exp,
            None => return Some((script + 1, 0)), // conservative on cap
        };
        let frt_v = self.frt[v.index()];
        match min_weight_cut(exp, ls, phi, script, frt_v, self.k) {
            None => Some((script + 1, 0)),
            Some((w_min, _)) => {
                if script + phi * w_min as i64 <= phi {
                    Some((script, w_min))
                } else {
                    Some((script + 1, 0))
                }
            }
        }
    }

    /// Extracts, for every gate, the K-cut consistent with the final
    /// labels: height ≤ `l^s(v)`, cone weight ≤ `r(v)`.
    ///
    /// # Panics
    ///
    /// Panics if a cut cannot be re-derived (would contradict
    /// convergence).
    pub fn final_cuts(&self, labels: &LabelPairs, phi: u64) -> Vec<Option<ExpCut>> {
        let phi_i = phi as i64;
        let mut cuts: Vec<Option<ExpCut>> = vec![None; self.circuit.num_nodes()];
        for v in self.circuit.gate_ids() {
            let i = v.index();
            if labels.ls[i] <= LS_NEG_INF {
                continue;
            }
            let exp = self.expanded(v).expect("expanded circuit exists");
            let cut = find_cut(exp, &labels.ls, phi_i, labels.ls[i], labels.r[i], self.k)
                .expect("converged labels admit a cut");
            cuts[i] = Some(cut);
        }
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// Figure 2(a) of the paper (our reconstruction): a 2-gate chain from
    /// i1 plus a register-carrying side path, K = 3. The paper's point:
    /// Φ = 2 has no *simple* FRT solution but does have a non-simple one.
    fn chainy() -> Circuit {
        let mut c = Circuit::new("t");
        let i1 = c.add_input("i1").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        c
    }

    #[test]
    fn pis_stay_zero() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(3);
        assert!(res.feasible);
        for &pi in c.inputs() {
            assert_eq!(res.labels.ls[pi.index()], 0);
            assert_eq!(res.labels.r[pi.index()], 0);
        }
    }

    #[test]
    fn single_lut_when_k_large() {
        // Whole chain fits one LUT; with the register pulled forward
        // (r = 1), Φ = 1 becomes feasible... the cut {i1^1} has weight 1:
        // l^s = 0 - Φ·1 + ... cut height = l(i1) - Φ·1 + 1 = -Φ + 1 ≤ 0.
        let c = chainy();
        let ctx = FrtContext::new(&c, 3, 32);
        let res = ctx.check(1);
        assert!(res.feasible, "labels: {:?}", res.labels);
        let g3 = c.find("g3").unwrap();
        assert!(res.labels.ls[g3.index()] + res.labels.r[g3.index()] as i64 <= 1);
    }

    #[test]
    fn k1_collapses_inverter_chain() {
        // With K=1 the whole inverter chain is a single 1-input LUT, so
        // pulling the register forward gives Φ = 1.
        let c = chainy();
        let ctx = FrtContext::new(&c, 1, 32);
        assert!(ctx.check(1).feasible);
    }

    #[test]
    fn wide_chain_needs_period_two() {
        // Each gate mixes the chain with a fresh PI: at K=2 every gate is
        // its own LUT, and the single register can only split the 3-LUT
        // path as 1+2 → Φ=2 optimal, Φ=1 infeasible.
        let mut c = Circuit::new("w");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let i3 = c.add_input("i3").unwrap();
        let i4 = c.add_input("i4").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::Zero]).unwrap();
        c.connect(i2, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i3, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(i4, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 32);
        assert!(!ctx.check(1).feasible);
        assert!(ctx.check(2).feasible);
    }

    #[test]
    fn iterations_reported_small() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(2);
        assert!(res.feasible);
        assert!(res.iterations <= 10, "iterations = {}", res.iterations);
    }

    #[test]
    fn labels_monotone_under_phi() {
        // Feasibility is monotone in Φ.
        let c = chainy();
        for k in 1..=3 {
            let ctx = FrtContext::new(&c, k, 32);
            let mut prev = false;
            for phi in 1..=4 {
                let f = ctx.check(phi).feasible;
                assert!(!prev || f, "k={k} phi={phi}");
                prev = f;
            }
        }
    }

    #[test]
    fn final_cuts_respect_labels() {
        let c = chainy();
        let ctx = FrtContext::new(&c, 2, 32);
        let res = ctx.check(2);
        assert!(res.feasible);
        let cuts = ctx.final_cuts(&res.labels, 2);
        for v in c.gate_ids() {
            let cut = cuts[v.index()].as_ref().expect("gate cut");
            assert!(cut.signals.len() <= 2);
            for s in &cut.signals {
                let h = res.labels.ls[s.node.index()] - 2 * s.weight as i64 + 1;
                assert!(h <= res.labels.ls[v.index()]);
            }
        }
    }

    #[test]
    fn cycle_ratio_infeasibility_detected() {
        // 3-gate register loop, one register, and a fresh PI into every
        // loop gate: at K=2 no LUT can absorb two loop gates (3 distinct
        // inputs), so the loop stays 3 LUTs with 1 register → Φ ≥ 3.
        let mut c = Circuit::new("loop");
        let a1 = c.add_input("a1").unwrap();
        let a2 = c.add_input("a2").unwrap();
        let a3 = c.add_input("a3").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a1, g1, vec![]).unwrap();
        c.connect(g3, g1, vec![Bit::Zero]).unwrap();
        c.connect(a2, g2, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(a3, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        let ctx = FrtContext::new(&c, 2, 32);
        assert!(!ctx.check(2).feasible);
        assert!(ctx.check(3).feasible);
    }
}
