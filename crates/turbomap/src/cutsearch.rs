//! Height- and weight-bounded K-cut search on expanded circuits.
//!
//! The `LabelUpdate` step of FRTcheck asks: *does `F_v^w` contain a
//! K-feasible cut whose cut-height is at most `ℒ`?* where the height of a
//! cut is `max { l^s(u) − Φ·w + 1 }` over its cut-set nodes `u^w`
//! (Definition 5). This module answers that with one bounded max-flow per
//! query:
//!
//! * expanded nodes heavier than the weight bound are **leaves** (they may
//!   be cut — tapped as registered LUT inputs — but not absorbed into the
//!   LUT, since the cut-weight of Definition 4 ranges over the cone `X̄`);
//! * nodes whose value `l^s(u) − Φ·w + 1` exceeds the height bound are
//!   **uncuttable** (uncapacitated): they may sit strictly inside `X` or
//!   inside the cone, but never on the boundary;
//! * everything else has unit capacity; flow ≤ K ⟺ a K-cut exists, and the
//!   residual min-cut is returned.

use crate::expand::{ExpNode, ExpandedCircuit};
use graphalgo::NodeCutNetwork;

/// A cut on an expanded circuit: the future LUT inputs, as expanded nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpCut {
    /// Cut-set nodes `u^w`, each a signal `u` delayed by `w` registers.
    pub signals: Vec<ExpNode>,
}

/// Reusable flow-network arena for cut queries.
///
/// The FRTcheck sweeps issue one bounded max-flow per `LabelUpdate`
/// candidate weight — hundreds of thousands of queries per Φ probe on the
/// larger circuits — and the inner [`NodeCutNetwork`] is the only
/// allocation each query needs. A scratch amortises it: every query calls
/// [`NodeCutNetwork::reset`] instead of reallocating, so the adjacency
/// rows, arc pool and BFS buffers grow to the largest expanded circuit
/// seen and stay there. One scratch per thread (they are not shared).
#[derive(Debug, Clone, Default)]
pub struct CutScratch {
    net: NodeCutNetwork,
}

impl CutScratch {
    /// An empty scratch; the first query sizes it.
    pub fn new() -> CutScratch {
        CutScratch::default()
    }
}

/// Searches `F_v^{weight_bound}` (restricted from `exp`) for a K-feasible
/// cut with height ≤ `height_bound`.
///
/// `ls` holds the current `l^s` lower bound per **original** node id
/// (PIs 0). Returns the min-cut found, or `None` when no such cut exists.
///
/// # Panics
///
/// Panics if `exp` is rooted at a leaf (never constructed that way).
pub fn find_cut(
    exp: &ExpandedCircuit,
    ls: &[i64],
    phi: i64,
    height_bound: i64,
    weight_bound: u64,
    k: usize,
) -> Option<ExpCut> {
    find_cut_with(
        &mut CutScratch::new(),
        exp,
        ls,
        phi,
        height_bound,
        weight_bound,
        k,
    )
}

/// [`find_cut`] with a caller-provided arena — the hot-path form used by
/// the label sweeps, which reuse one [`CutScratch`] per thread across all
/// queries of a run.
pub fn find_cut_with(
    scratch: &mut CutScratch,
    exp: &ExpandedCircuit,
    ls: &[i64],
    phi: i64,
    height_bound: i64,
    weight_bound: u64,
    k: usize,
) -> Option<ExpCut> {
    let n = exp.len();
    debug_assert!(!exp.is_leaf[exp.root()]);
    let _span = engine::trace::span_with(
        "min_cut",
        [
            Some(("node", exp.nodes[exp.root()].node.index() as u64)),
            Some(("weight_bound", weight_bound)),
        ],
    );
    let _mem = engine::mem::scope(engine::mem::MemPhase::MinCut);
    // Effective leaf: a declared leaf, or weight above the current bound.
    let effective_leaf = |i: usize| exp.is_leaf[i] || exp.nodes[i].weight > weight_bound;
    let value = |i: usize| {
        let en = exp.nodes[i];
        ls[en.node.index()] - phi * en.weight as i64 + 1
    };
    let net = &mut scratch.net;
    net.reset(n + 1);
    let source = n;
    let root = exp.root();
    for i in 0..n {
        if effective_leaf(i) {
            net.add_edge(source, i);
        } else {
            for &f in exp.fanins(i) {
                net.add_edge(f as usize, i);
            }
        }
        if i != root && value(i) > height_bound {
            // May not appear on the cut boundary.
            net.set_uncapacitated(i);
        }
    }
    let result = net.max_flow(source, root, k as u32);
    if result.exceeded_limit {
        return None;
    }
    let cut = net.min_cut_near_sink(source);
    let signals: Vec<ExpNode> = cut.cut_nodes.iter().map(|&i| exp.nodes[i]).collect();
    debug_assert!(signals.len() <= k);
    debug_assert!(signals
        .iter()
        .all(|s| { ls[s.node.index()] - phi * (s.weight as i64) < height_bound }));
    // A cut of zero signals means the root was unreachable from every
    // leaf, which cannot happen for PI-reachable circuits.
    if signals.is_empty() {
        return None;
    }
    engine::telemetry::record(engine::hist::Metric::CutSize, signals.len() as u64);
    engine::trace::event1("cut_found", "size", signals.len() as u64);
    Some(ExpCut { signals })
}

/// Finds the minimum cut-weight `w ∈ [0, weight_cap]` for which a
/// K-feasible cut of height ≤ `height_bound` exists, together with such a
/// cut (binary search on the weight, §3.2).
pub fn min_weight_cut(
    exp: &ExpandedCircuit,
    ls: &[i64],
    phi: i64,
    height_bound: i64,
    weight_cap: u64,
    k: usize,
) -> Option<(u64, ExpCut)> {
    min_weight_cut_with(
        &mut CutScratch::new(),
        exp,
        ls,
        phi,
        height_bound,
        weight_cap,
        k,
    )
}

/// [`min_weight_cut`] with a caller-provided arena (see [`find_cut_with`]).
pub fn min_weight_cut_with(
    scratch: &mut CutScratch,
    exp: &ExpandedCircuit,
    ls: &[i64],
    phi: i64,
    height_bound: i64,
    weight_cap: u64,
    k: usize,
) -> Option<(u64, ExpCut)> {
    // Existence at the full bound first.
    find_cut_with(scratch, exp, ls, phi, height_bound, weight_cap, k)?;
    let mut lo = 0u64;
    let mut hi = weight_cap;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if find_cut_with(scratch, exp, ls, phi, height_bound, mid, k).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // `lo` is the minimal feasible weight bound; a cut found under a
    // larger probe bound may have heavier cone nodes, so re-extract at
    // exactly `lo`.
    let cut = find_cut_with(scratch, exp, ls, phi, height_bound, lo, k).expect("lo is feasible");
    Some((lo, cut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, Circuit, NodeId, TruthTable};

    /// i1 -> a -> b -FF-> c <- a (Figure 3-style).
    fn fig_circuit(extra_ff_on_i1: bool) -> (Circuit, NodeId) {
        let mut c = Circuit::new("fig");
        let i1 = c.add_input("i1").unwrap();
        let a = c.add_gate("a", TruthTable::not()).unwrap();
        let b = c.add_gate("b", TruthTable::not()).unwrap();
        let cc = c.add_gate("c", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        let i1_ffs = if extra_ff_on_i1 {
            vec![Bit::Zero]
        } else {
            vec![]
        };
        c.connect(i1, a, i1_ffs).unwrap();
        c.connect(a, b, vec![]).unwrap();
        c.connect(b, cc, vec![Bit::Zero]).unwrap();
        c.connect(a, cc, vec![]).unwrap();
        c.connect(cc, o, vec![]).unwrap();
        (c, cc)
    }

    fn zero_labels(c: &Circuit) -> Vec<i64> {
        vec![0; c.num_nodes()]
    }

    #[test]
    fn weight_zero_bound_blocks_lut_past_register() {
        // Figure 3: frt(c) = 0, so b^1 cannot be inside the LUT. With K=2
        // a cut {a^0, b^1} exists (both cuttable as signals).
        let (c, cc) = fig_circuit(false);
        let exp = ExpandedCircuit::build(&c, cc, 0, 1000).unwrap();
        let ls = zero_labels(&c);
        let cut = find_cut(&exp, &ls, 10, 100, 0, 2).unwrap();
        assert_eq!(cut.signals.len(), 2);
        // With K=1 no cut exists at weight bound 0 (need both a and b).
        assert!(find_cut(&exp, &ls, 10, 100, 0, 1).is_none());
    }

    #[test]
    fn weight_one_bound_absorbs_register() {
        // Figure 4: with a FF on (i1, a), frt(c) = 1 and F_c^1 allows the
        // whole cone as one LUT with inputs {i1^1, i1^2}. Force the deep
        // cut by making a and b uncuttable (high labels).
        let (c, cc) = fig_circuit(true);
        let exp = ExpandedCircuit::build(&c, cc, 1, 1000).unwrap();
        let mut ls = zero_labels(&c);
        ls[c.find("a").unwrap().index()] = 1_000;
        ls[c.find("b").unwrap().index()] = 1_000;
        let cut = find_cut(&exp, &ls, 10, 5, 1, 2).unwrap();
        let i1 = c.find("i1").unwrap();
        let mut weights: Vec<u64> = cut
            .signals
            .iter()
            .filter(|s| s.node == i1)
            .map(|s| s.weight)
            .collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![1, 2]);
    }

    #[test]
    fn height_bound_excludes_high_labels() {
        // Give `a` a huge label: it cannot be a cut signal, so the cut
        // must go past it to i1 (possible only if K allows).
        let (c, cc) = fig_circuit(true);
        let exp = ExpandedCircuit::build(&c, cc, 1, 1000).unwrap();
        let mut ls = zero_labels(&c);
        ls[c.find("a").unwrap().index()] = 1_000;
        let phi = 10;
        // Cut must avoid a^0/a^1 (uncuttable); {b^1, i1^1} or the deeper
        // {i1^1, i1^2} both qualify.
        let cut = find_cut(&exp, &ls, phi, 5, 1, 2).unwrap();
        assert!(cut.signals.iter().all(|s| s.node != c.find("a").unwrap()));
        assert!(cut.signals.iter().any(|s| s.node == c.find("i1").unwrap()));
    }

    #[test]
    fn impossible_height_returns_none() {
        let (c, cc) = fig_circuit(false);
        let exp = ExpandedCircuit::build(&c, cc, 0, 1000).unwrap();
        let mut ls = zero_labels(&c);
        // Every potential cut signal too high.
        for v in c.node_ids() {
            ls[v.index()] = 100;
        }
        assert!(find_cut(&exp, &ls, 1, 0, 0, 3).is_none());
    }

    #[test]
    fn min_weight_prefers_small() {
        // Figure 4 circuit: at K=3 a weight-0 cut {a^0, b^1} exists, so
        // min_weight_cut must return weight 0 even though weight 1 also
        // works.
        let (c, cc) = fig_circuit(true);
        let exp = ExpandedCircuit::build(&c, cc, 1, 1000).unwrap();
        let ls = zero_labels(&c);
        let (w, cut) = min_weight_cut(&exp, &ls, 10, 100, 1, 3).unwrap();
        assert_eq!(w, 0);
        assert!(cut.signals.len() <= 3);
    }

    #[test]
    fn min_weight_needs_one_when_k_too_small() {
        // Height bound excluding both `a` and `b` everywhere: the only
        // cut left is {i1^1, i1^2}, which must absorb b^1 → weight 1.
        let (c, cc) = fig_circuit(true);
        let exp = ExpandedCircuit::build(&c, cc, 1, 1000).unwrap();
        let mut ls = zero_labels(&c);
        ls[c.find("a").unwrap().index()] = 1_000;
        ls[c.find("b").unwrap().index()] = 1_000;
        let (w, cut) = min_weight_cut(&exp, &ls, 10, 5, 1, 2).unwrap();
        assert_eq!(w, 1);
        assert_eq!(cut.signals.len(), 2);
        let i1 = c.find("i1").unwrap();
        assert!(cut.signals.iter().all(|s| s.node == i1));
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        // The arena must be invisible: mixed-size queries through one
        // reused scratch agree exactly with fresh-network queries.
        let (c1, cc1) = fig_circuit(false);
        let exp1 = ExpandedCircuit::build(&c1, cc1, 0, 1000).unwrap();
        let (c2, cc2) = fig_circuit(true);
        let exp2 = ExpandedCircuit::build(&c2, cc2, 1, 1000).unwrap();
        let ls1 = zero_labels(&c1);
        let mut ls2 = zero_labels(&c2);
        ls2[c2.find("a").unwrap().index()] = 1_000;
        ls2[c2.find("b").unwrap().index()] = 1_000;
        let mut scratch = CutScratch::new();
        for _ in 0..2 {
            // Bigger then smaller network through the same arena.
            assert_eq!(
                find_cut_with(&mut scratch, &exp2, &ls2, 10, 5, 1, 2),
                find_cut(&exp2, &ls2, 10, 5, 1, 2)
            );
            assert_eq!(
                find_cut_with(&mut scratch, &exp1, &ls1, 10, 100, 0, 2),
                find_cut(&exp1, &ls1, 10, 100, 0, 2)
            );
            assert_eq!(
                min_weight_cut_with(&mut scratch, &exp2, &ls2, 10, 5, 1, 3),
                min_weight_cut(&exp2, &ls2, 10, 5, 1, 3)
            );
        }
    }

    #[test]
    fn trivial_fanin_cut_found() {
        let (c, cc) = fig_circuit(false);
        let exp = ExpandedCircuit::build(&c, cc, 0, 1000).unwrap();
        let ls = zero_labels(&c);
        // Bound that admits only the fanin cut works at K=2.
        let cut = find_cut(&exp, &ls, 1, 1, 0, 2).unwrap();
        assert!(cut.signals.len() <= 2);
    }
}

#[cfg(test)]
mod validity_tests {
    use super::*;
    use crate::expand::ExpandedCircuit;
    use engine::Rng64;

    /// Checks that `cut` is a valid cut of `exp` under `weight_bound`:
    /// every path from an effective leaf to the root crosses a cut node,
    /// every cut node satisfies the height bound, and every cone-internal
    /// node respects the weight bound.
    fn assert_valid_cut(
        exp: &ExpandedCircuit,
        cut: &ExpCut,
        ls: &[i64],
        phi: i64,
        height_bound: i64,
        weight_bound: u64,
    ) {
        let cut_set: std::collections::HashSet<ExpNode> = cut.signals.iter().copied().collect();
        for s in &cut.signals {
            let h = ls[s.node.index()] - phi * s.weight as i64 + 1;
            assert!(h <= height_bound, "cut node violates height");
        }
        // Walk the cone from the root; it must terminate at cut nodes
        // without touching an effective leaf.
        let mut stack = vec![exp.root()];
        let mut seen = vec![false; exp.len()];
        seen[exp.root()] = true;
        while let Some(i) = stack.pop() {
            let en = exp.nodes[i];
            assert!(
                en.weight <= weight_bound || i == exp.root(),
                "cone node heavier than the bound"
            );
            assert!(
                !(exp.is_leaf[i] && i != exp.root()),
                "cone contains a leaf: the cut failed to separate"
            );
            for &f in exp.fanins(i) {
                let fi = f as usize;
                if cut_set.contains(&exp.nodes[fi]) || seen[fi] {
                    continue;
                }
                assert!(
                    !(exp.is_leaf[fi] || exp.nodes[fi].weight > weight_bound),
                    "uncut boundary reached at {:?}",
                    exp.nodes[fi]
                );
                seen[fi] = true;
                stack.push(fi);
            }
        }
    }

    #[test]
    fn random_circuits_random_labels_cuts_valid() {
        let mut rng = Rng64::new(0xC07);
        for trial in 0..40 {
            let c = workloads::generate_fsm(&workloads::FsmSpec {
                name: format!("cv{trial}"),
                states: rng.range_usize(2, 7),
                inputs: rng.range_usize(1, 4),
                decoded: 2,
                outputs: 1,
                encoding: if rng.chance(0.5) {
                    workloads::Encoding::OneHot
                } else {
                    workloads::Encoding::Binary
                },
                registered_inputs: rng.chance(0.5),
                seed: trial,
            });
            let ls: Vec<i64> = (0..c.num_nodes()).map(|_| rng.range_i64(-4, 4)).collect();
            let phi = rng.range_i64(1, 4);
            let k = rng.range_usize(2, 6);
            let hb = rng.range_i64(-2, 6);
            let wb = rng.range_i64(0, 3) as u64;
            for v in c.gate_ids().take(8) {
                let exp = match ExpandedCircuit::build(&c, v, wb, 50_000) {
                    Some(e) => e,
                    None => continue,
                };
                if let Some(cut) = find_cut(&exp, &ls, phi, hb, wb, k) {
                    assert!(cut.signals.len() <= k);
                    assert_valid_cut(&exp, &cut, &ls, phi, hb, wb);
                }
            }
        }
    }
}
