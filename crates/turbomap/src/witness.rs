//! Infeasibility witnesses: replayable derivation logs for `Φ` probes.
//!
//! When the binary search settles on `Φ_min`, the probe at `Φ_min − 1`
//! proved infeasibility — and then threw the proof away. This module
//! keeps it: [`FrtContext::infeasibility_witness`] re-runs the probe
//! serially, recording every label improvement as a [`WitnessStep`] whose
//! arithmetic an independent checker can replay without trusting the
//! mapper (see `crates/report`).
//!
//! # Certificate semantics
//!
//! The log is a proof by contradiction. Assume a feasible FRT mapping
//! solution at period `P` exists; by Corollary 1 every node of it
//! satisfies `l^s(v) + P·r(v) ≤ P`, hence `l^s(v) ≤ P`. Each step derives
//! a valid lower bound on the solution's `l^s` labels:
//!
//! * **Fanin** (R1): the l-value edge inequality — across any edge
//!   `e(u, v)`, `l^s(v) ≥ l^s(u) − P·w(e)`.
//! * **NoCut** (R2): a simple mapping solution gives `v` a LUT that is a
//!   K-cut of `F_v^{frt(v)}` with cut-height ≤ `l^s(v)`; if no K-cut of
//!   height ≤ `h` exists (heights from already-derived lower bounds),
//!   then `l^s(v) ≥ h + 1`.
//! * **WeightBump** (R3): if the minimum cone weight admitting a K-cut of
//!   height ≤ `h` is `w_min`, any solution with `l^s(v) ≤ h` pulls
//!   `r(v) ≥ w_min` registers forward; `h + P·w_min > P` then contradicts
//!   Corollary 1 at `v`, so `l^s(v) ≥ h + 1`.
//!
//! The terminal step pushes some `l^s(v)` past `P`, contradicting the
//! assumption — so no feasible solution at `P` exists and `Φ_min ≥ P + 1`.
//!
//! Lower bounds derived against *smaller* current labels stay sound
//! (cut-heights only grow with the labels), so a checker replaying the
//! log in order with its own label array verifies every step exactly.

use netlist::NodeId;

/// One derivation step of an infeasibility witness, in replay order.
///
/// `value` is the new lower bound on `l^s(node)` the step establishes;
/// a checker accepts the step only if its own replayed state justifies
/// at least `value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessStep {
    /// R1: `l^s(node) ≥ l^s(from) − P·weight` via a fanin edge of weight
    /// `weight` (`value` equals that right-hand side at recording time).
    Fanin {
        /// The improved node.
        node: NodeId,
        /// The fanin edge's driver.
        from: NodeId,
        /// The fanin edge's register count.
        weight: u64,
        /// The derived lower bound on `l^s(node)`.
        value: i64,
    },
    /// R2: no K-cut of height ≤ `height` exists in `F_node^{frt(node)}`,
    /// so `l^s(node) ≥ height + 1 = value`.
    NoCut {
        /// The improved node (a gate).
        node: NodeId,
        /// The refuted cut-height bound.
        height: i64,
        /// The derived lower bound (`height + 1`).
        value: i64,
    },
    /// R3: the minimum cone weight admitting a K-cut of height ≤ `height`
    /// is `w_min`, and `height + P·w_min > P`, so
    /// `l^s(node) ≥ height + 1 = value`.
    WeightBump {
        /// The improved node (a gate).
        node: NodeId,
        /// The height bound the minimal weight was computed for.
        height: i64,
        /// The minimal cone weight admitting such a cut.
        w_min: u64,
        /// The derived lower bound (`height + 1`).
        value: i64,
    },
}

impl WitnessStep {
    /// The node whose label the step improves.
    pub fn node(&self) -> NodeId {
        match *self {
            WitnessStep::Fanin { node, .. }
            | WitnessStep::NoCut { node, .. }
            | WitnessStep::WeightBump { node, .. } => node,
        }
    }

    /// The lower bound on `l^s(node)` the step establishes.
    pub fn value(&self) -> i64 {
        match *self {
            WitnessStep::Fanin { value, .. }
            | WitnessStep::NoCut { value, .. }
            | WitnessStep::WeightBump { value, .. } => value,
        }
    }

    /// Stable rule name (JSON schema field).
    pub fn rule(&self) -> &'static str {
        match self {
            WitnessStep::Fanin { .. } => "fanin",
            WitnessStep::NoCut { .. } => "no_cut",
            WitnessStep::WeightBump { .. } => "weight_bump",
        }
    }
}

/// Outcome of a witness probe at one period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessOutcome {
    /// The period is infeasible; the ordered derivation log ends with a
    /// step whose `value` exceeds the probed period.
    Infeasible(Vec<WitnessStep>),
    /// The probe converged with every label within the period — the
    /// period is feasible, so there is no infeasibility to witness.
    Feasible,
    /// A derivation would have leaned on a truncated expansion (the
    /// `frt` weight horizon or the expanded-node cap), so the log would
    /// not replay against true cone arithmetic; no witness is produced.
    Capped,
    /// The theoretical sweep cap was hit before convergence (never seen
    /// in practice); no witness is produced.
    IterationCap,
    /// The installed cancel token tripped mid-probe; no witness.
    Cancelled,
}
