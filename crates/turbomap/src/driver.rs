//! The TurboMap-frt algorithm (Section 3) and the TurboMap general-
//! retiming baseline (Cong & Wu, ICCD'96), end to end.
//!
//! Both drivers binary-search the clock period `Φ ∈ [1, Φ_upper]` — the
//! upper bound coming from a quick FlowMap-frt run (footnote 4 of the
//! paper) — with their respective label computations as the feasibility
//! oracle, then generate the mapping at `Φ_min`.

use crate::frtcheck::FrtContext;
use crate::gencheck::GeneralContext;
use crate::generate::{generate_mapping, GenerateError};
use engine::telemetry::{time_phase, Phase};
use netlist::Circuit;
use retiming::MoveStats;

/// Configuration shared by the TurboMap drivers.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// LUT input bound K.
    pub k: usize,
    /// Cap on `frt(v)` — the expansion bound of TurboMap-frt (Theorem 2
    /// needs `F_v^{frt(v)}`; the cap only matters on register-heavy
    /// inputs; see DESIGN.md).
    pub weight_horizon: u64,
    /// Per-LUT register-crossing horizon for the **general** TurboMap
    /// baseline. Theory allows `K·n` (which admits loop-unrolled LUTs),
    /// but the ICCD'96 implementation's partial flow networks explore
    /// small windows in practice; 1 reproduces its reported behaviour
    /// (see DESIGN.md).
    pub general_horizon: u64,
    /// Intra-job parallelism of the FRTcheck label sweeps: total compute
    /// threads per Φ probe. `1` (the default) runs serially; `0` resolves
    /// to the machine's available parallelism. Every setting produces
    /// byte-identical results — the sweeps are level-synchronized and
    /// apply updates in a fixed order (see DESIGN.md).
    pub sweep_workers: usize,
    /// Seed each Φ probe's `l^s` lower bounds from the best feasible
    /// probe so far (sound: the labels are pointwise non-decreasing as Φ
    /// shrinks, so they remain lower bounds). Skipped sweeps show up in
    /// the `sweeps_saved` counter. On by default; the switch exists as a
    /// kill switch and for A/B measurement.
    pub warm_start: bool,
}

impl Options {
    /// Default options for a given K.
    pub fn with_k(k: usize) -> Options {
        Options {
            k,
            weight_horizon: 32,
            general_horizon: 1,
            sweep_workers: 1,
            warm_start: true,
        }
    }

    /// The effective sweep worker count: `0` means auto-detect.
    pub fn resolved_sweep_workers(&self) -> usize {
        match self.sweep_workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            w => w,
        }
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::with_k(5)
    }
}

/// Result of a TurboMap-frt or TurboMap run.
#[derive(Debug, Clone)]
pub struct TurboMapResult {
    /// The mapped, retimed LUT network with initial state.
    pub circuit: Circuit,
    /// The minimum clock period found.
    pub period: u64,
    /// Number of K-LUTs.
    pub luts: usize,
    /// FF count (register sharing).
    pub ffs: usize,
    /// Label-computation sweeps per probed period (Φ, sweeps).
    pub iterations: Vec<(u64, usize)>,
    /// Unit-move statistics of the final retiming.
    pub moves: MoveStats,
    /// True when initial state computation failed and values were erased
    /// to `X` (never set by TurboMap-frt; the paper's `⋆` for TurboMap).
    pub initial_state_lost: bool,
    /// True when the computed initial values are *not* consistent under
    /// register sharing: the FF count assumes shared chains, but the
    /// justified values of duplicated registers disagree, so the shared
    /// implementation has no equivalent initial state. Together with
    /// `initial_state_lost` this is the reproduction's analogue of the
    /// paper's `⋆` outcomes.
    pub sharing_conflict: bool,
}

impl TurboMapResult {
    /// The paper's `⋆`: no usable equivalent initial state was computed
    /// for the (register-shared) mapping.
    pub fn star(&self) -> bool {
        self.initial_state_lost || self.sharing_conflict
    }
}

/// Errors from the TurboMap drivers.
#[derive(Debug)]
pub enum TurboMapError {
    /// The input circuit failed validation.
    Invalid(netlist::NetlistError),
    /// Even the upper-bound period was infeasible (internal error).
    NoFeasiblePeriod,
    /// Mapping generation failed.
    Generate(GenerateError),
    /// Baseline FlowMap-frt run failed.
    Baseline(flowmap::FlowMapError),
    /// The run was cancelled through the thread's installed
    /// [`engine::cancel`] token (batch deadline or external cancel).
    Cancelled,
}

impl std::fmt::Display for TurboMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TurboMapError::Invalid(e) => write!(f, "invalid circuit: {e}"),
            TurboMapError::NoFeasiblePeriod => write!(f, "no feasible clock period found"),
            TurboMapError::Generate(e) => write!(f, "generation: {e}"),
            TurboMapError::Baseline(e) => write!(f, "baseline: {e}"),
            TurboMapError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for TurboMapError {}

impl From<GenerateError> for TurboMapError {
    fn from(e: GenerateError) -> Self {
        TurboMapError::Generate(e)
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

/// TurboMap-frt's core guarantee is that it only ever moves registers
/// **forward** (that is what makes initial states computable in linear
/// time); pin that invariant on both the move stats and the thread's
/// telemetry counter in debug builds.
#[cfg(debug_assertions)]
fn debug_assert_no_backward_moves(counter_before: u64, moves: &MoveStats) {
    assert_eq!(
        moves.backward_moves, 0,
        "turbomap_frt applied backward register moves"
    );
    let now = engine::telemetry::snapshot().counter(engine::telemetry::Counter::BackwardMoves);
    assert_eq!(
        now, counter_before,
        "turbomap_frt incremented the backward_moves counter"
    );
}

/// Errors out when the thread's installed cancellation token tripped
/// (the oracles bail out early in that state, so their answers must be
/// discarded rather than interpreted as infeasibility).
fn check_cancelled() -> Result<(), TurboMapError> {
    if engine::cancel::cancelled() {
        Err(TurboMapError::Cancelled)
    } else {
        Ok(())
    }
}

/// One debug log line per Φ probe of the binary search; a disabled
/// filter costs one atomic load.
fn log_probe(target: &str, phi: u64, feasible: bool, sweeps: usize) {
    engine::log::debug(
        target,
        "phi probe",
        &[
            ("phi", engine::JsonValue::UInt(phi)),
            ("feasible", engine::JsonValue::Bool(feasible)),
            ("sweeps", engine::JsonValue::UInt(sweeps as u64)),
        ],
    );
}

/// Prepares a circuit for mapping: validate and K-bound it.
///
/// # Errors
///
/// Returns the validation error if the circuit is malformed.
pub fn prepare(c: &Circuit, k: usize) -> Result<Circuit, TurboMapError> {
    netlist::validate(c).map_err(TurboMapError::Invalid)?;
    let live = netlist::prune_dead(c).map_err(TurboMapError::Invalid)?;
    let bounded = if live.max_fanin() > k {
        netlist::decompose_to_k(&live, 2).map_err(TurboMapError::Invalid)?
    } else {
        live
    };
    Ok(bounded)
}

/// TurboMap-frt (the paper's algorithm): optimal K-LUT mapping with
/// forward retiming, minimum clock period, guaranteed initial state.
///
/// # Errors
///
/// See [`TurboMapError`]; initial state computation cannot fail here.
pub fn turbomap_frt(c: &Circuit, opts: Options) -> Result<TurboMapResult, TurboMapError> {
    #[cfg(debug_assertions)]
    let backward_before =
        engine::telemetry::snapshot().counter(engine::telemetry::Counter::BackwardMoves);
    let bounded = prepare(c, opts.k)?;
    // Upper bound: FlowMap-frt (cheap, feasible by construction).
    let baseline = flowmap::flowmap_frt(&bounded, opts.k).map_err(TurboMapError::Baseline)?;
    let upper = baseline.period.max(1);
    let ctx = {
        let _t = time_phase(Phase::Search);
        FrtContext::new(&bounded, opts.k, opts.weight_horizon)
    };
    let workers = opts.resolved_sweep_workers();
    let mut iterations = Vec::new();
    let mut lo = 1u64;
    let mut hi = upper;
    let phi_span = engine::trace::span1("phi_search", "upper", upper);
    // Confirm the upper bound under FRTcheck itself (it must be feasible;
    // keep its labels as fallback).
    let top = {
        let _t = time_phase(Phase::Label);
        let _p = engine::trace::span1("phi_probe", "phi", upper);
        ctx.check_opts(upper, None, workers)
    };
    check_cancelled()?;
    log_probe("turbomap::frt", upper, top.feasible, top.iterations);
    iterations.push((upper, top.iterations));
    if !top.feasible {
        return Err(TurboMapError::NoFeasiblePeriod);
    }
    // Best feasible probe so far: its period, labels (the mapping seed
    // and the warm-start donor) and sweep count (the warm-start savings
    // baseline).
    let mut best = Some((upper, top.labels, top.iterations));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let res = {
            let _t = time_phase(Phase::Label);
            let _p = engine::trace::span1("phi_probe", "phi", mid);
            // Every remaining probe sits strictly below the best feasible
            // Φ (the search keeps `hi` at it), so its labels are a sound
            // warm seed for `mid`.
            let warm = if opts.warm_start {
                best.as_ref().map(|(_, l, _)| l)
            } else {
                None
            };
            ctx.check_opts(mid, warm, workers)
        };
        check_cancelled()?;
        log_probe("turbomap::frt", mid, res.feasible, res.iterations);
        if opts.warm_start {
            if let Some((_, _, seed_iters)) = &best {
                // Estimate: a cold probe re-derives at least what the
                // seeding probe needed; count the sweeps the warm seed
                // let this probe skip relative to that.
                engine::telemetry::count(
                    engine::telemetry::Counter::SweepsSaved,
                    (seed_iters.saturating_sub(res.iterations)) as u64,
                );
            }
        }
        iterations.push((mid, res.iterations));
        if res.feasible {
            best = Some((mid, res.labels, res.iterations));
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    drop(phi_span);
    let (phi, labels, _) = best.ok_or(TurboMapError::NoFeasiblePeriod)?;
    debug_assert_eq!(phi, lo.min(upper));

    // At equal Φ the FlowMap-frt network is itself an optimal FRT mapping
    // solution and block-wise generation wastes no area on duplication —
    // take it (the paper's near-identical LUT counts at equal Φ suggest
    // the authors' generation behaves the same way).
    if phi == baseline.period {
        let mut circuit = baseline.circuit;
        circuit.set_name(format!("{}_tmfrt", c.name()));
        #[cfg(debug_assertions)]
        debug_assert_no_backward_moves(backward_before, &baseline.moves);
        return Ok(TurboMapResult {
            period: phi,
            luts: circuit.num_gates(),
            ffs: circuit.ff_count_shared(),
            iterations,
            moves: baseline.moves,
            initial_state_lost: false,
            sharing_conflict: !circuit.sharing_consistent(),
            circuit,
        });
    }
    let cuts = {
        let _t = time_phase(Phase::Search);
        ctx.final_cuts(&labels, phi)
    };
    let _t_gen = time_phase(Phase::Generate);
    let roots = crate::generate::collect_roots(&bounded, &cuts)?;
    let rr: std::collections::HashMap<netlist::NodeId, i64> = roots
        .keys()
        .map(|&v| (v, ceil_div(labels.ls[v.index()], phi as i64) - 1))
        .collect();
    let gen = generate_mapping(&bounded, &roots, &rr, &format!("{}_tmfrt", c.name()), false)?;
    debug_assert!(!gen.initial_state_lost);
    #[cfg(debug_assertions)]
    debug_assert_no_backward_moves(backward_before, &gen.moves);
    let achieved = gen.circuit.clock_period().map_err(TurboMapError::Invalid)?;
    debug_assert!(achieved <= phi, "generated period {achieved} > Φ {phi}");
    let sharing_conflict = !gen.circuit.sharing_consistent();
    Ok(TurboMapResult {
        period: achieved.min(phi),
        luts: gen.circuit.num_gates(),
        ffs: gen.circuit.ff_count_shared(),
        iterations,
        moves: gen.moves,
        initial_state_lost: gen.initial_state_lost,
        sharing_conflict,
        circuit: gen.circuit,
    })
}

/// TurboMap (general retiming baseline): optimal mapping with
/// unrestricted retiming; initial states need backward justification and
/// may be lost (`initial_state_lost` — the paper's `⋆`).
///
/// # Errors
///
/// See [`TurboMapError`].
pub fn turbomap_general(c: &Circuit, opts: Options) -> Result<TurboMapResult, TurboMapError> {
    let bounded = prepare(c, opts.k)?;
    let baseline = flowmap::flowmap_frt(&bounded, opts.k).map_err(TurboMapError::Baseline)?;
    let upper = baseline.period.max(1);
    let ctx = {
        let _t = time_phase(Phase::Search);
        GeneralContext::new(&bounded, opts.k, opts.general_horizon)
    };
    let mut iterations = Vec::new();
    let mut lo = 1u64;
    let mut hi = upper;
    let phi_span = engine::trace::span1("phi_search", "upper", upper);
    let top = {
        let _t = time_phase(Phase::Label);
        let _p = engine::trace::span1("phi_probe", "phi", upper);
        ctx.check(upper)
    };
    check_cancelled()?;
    log_probe("turbomap::general", upper, top.feasible, top.iterations);
    iterations.push((upper, top.iterations));
    if !top.feasible {
        return Err(TurboMapError::NoFeasiblePeriod);
    }
    let mut best = Some((upper, top.labels));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let res = {
            let _t = time_phase(Phase::Label);
            let _p = engine::trace::span1("phi_probe", "phi", mid);
            ctx.check(mid)
        };
        check_cancelled()?;
        log_probe("turbomap::general", mid, res.feasible, res.iterations);
        iterations.push((mid, res.iterations));
        if res.feasible {
            best = Some((mid, res.labels));
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    drop(phi_span);
    let (phi, labels) = best.ok_or(TurboMapError::NoFeasiblePeriod)?;
    if phi == baseline.period {
        // The baseline network achieves the same period with guaranteed
        // initial state — a general-retiming run cannot improve on it.
        let mut circuit = baseline.circuit;
        circuit.set_name(format!("{}_tm", c.name()));
        return Ok(TurboMapResult {
            period: phi,
            luts: circuit.num_gates(),
            ffs: circuit.ff_count_shared(),
            iterations,
            moves: baseline.moves,
            initial_state_lost: false,
            sharing_conflict: !circuit.sharing_consistent(),
            circuit,
        });
    }
    let cuts = {
        let _t = time_phase(Phase::Search);
        ctx.final_cuts(&labels, phi)
    };
    let _t_gen = time_phase(Phase::Generate);
    let roots = crate::generate::collect_roots(&bounded, &cuts)?;
    let rr: std::collections::HashMap<netlist::NodeId, i64> = roots
        .keys()
        .map(|&v| (v, ceil_div(labels[v.index()], phi as i64) - 1))
        .collect();
    let gen = generate_mapping(&bounded, &roots, &rr, &format!("{}_tm", c.name()), true)?;
    let achieved = gen.circuit.clock_period().map_err(TurboMapError::Invalid)?;
    debug_assert!(achieved <= phi, "generated period {achieved} > Φ {phi}");
    let sharing_conflict = !gen.circuit.sharing_consistent();
    Ok(TurboMapResult {
        period: achieved.min(phi),
        luts: gen.circuit.num_gates(),
        ffs: gen.circuit.ff_count_shared(),
        iterations,
        moves: gen.moves,
        initial_state_lost: gen.initial_state_lost,
        sharing_conflict,
        circuit: gen.circuit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    fn pipeline_with_front_ff() -> Circuit {
        let mut c = Circuit::new("p");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::One]).unwrap();
        c.connect(i2, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i2, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(i1, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        c
    }

    #[test]
    fn frt_result_is_equivalent_and_fast() {
        let c = pipeline_with_front_ff();
        let res = turbomap_frt(&c, Options::with_k(2)).unwrap();
        assert!(!res.initial_state_lost);
        assert!(res.period <= c.clock_period().unwrap());
        assert!(exhaustive_equiv(&c, &res.circuit, 6)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn frt_single_lut_at_k5() {
        let c = pipeline_with_front_ff();
        let res = turbomap_frt(&c, Options::with_k(5)).unwrap();
        // Only 2 PIs: with K=5 and registers pullable, one LUT + retiming
        // reaches Φ = 1.
        assert_eq!(res.period, 1);
        assert!(exhaustive_equiv(&c, &res.circuit, 6)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn general_no_worse_than_frt() {
        let c = pipeline_with_front_ff();
        for k in 2..=5 {
            let frt = turbomap_frt(&c, Options::with_k(k)).unwrap();
            let gen = turbomap_general(&c, Options::with_k(k)).unwrap();
            assert!(gen.period <= frt.period, "k={k}");
        }
    }

    #[test]
    fn frt_no_worse_than_flowmap_frt() {
        let c = pipeline_with_front_ff();
        for k in 2..=5 {
            let base = flowmap::flowmap_frt(&c, k).unwrap();
            let frt = turbomap_frt(&c, Options::with_k(k)).unwrap();
            assert!(frt.period <= base.period, "k={k}");
        }
    }

    #[test]
    fn general_equivalent_when_state_kept() {
        let c = pipeline_with_front_ff();
        let res = turbomap_general(&c, Options::with_k(3)).unwrap();
        if !res.initial_state_lost {
            assert!(exhaustive_equiv(&c, &res.circuit, 6)
                .unwrap()
                .is_equivalent());
        }
    }

    #[test]
    fn wide_gates_are_decomposed() {
        let mut c = Circuit::new("wide");
        let ins: Vec<_> = (0..7)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g = c.add_gate("g", TruthTable::and(7)).unwrap();
        let o = c.add_output("o").unwrap();
        for &i in &ins {
            c.connect(i, g, vec![Bit::One]).unwrap();
        }
        c.connect(g, o, vec![]).unwrap();
        let res = turbomap_frt(&c, Options::with_k(4)).unwrap();
        assert!(res.circuit.max_fanin() <= 4);
        assert!(exhaustive_equiv(&c, &res.circuit, 2)
            .unwrap()
            .is_equivalent());
    }

    fn medium_fsm() -> Circuit {
        workloads::generate_fsm(&workloads::FsmSpec {
            name: "det".into(),
            states: 9,
            inputs: 4,
            decoded: 2,
            outputs: 2,
            encoding: workloads::Encoding::Binary,
            registered_inputs: true,
            seed: 11,
        })
    }

    /// The tentpole's correctness bar: whatever the sweep-worker count
    /// and whether probes are warm-started, `turbomap_frt` must produce
    /// the byte-identical mapped circuit — same Φ, LUTs, FFs, initial
    /// states, names. Only the per-probe sweep counts may differ (warm
    /// starts exist to shrink them).
    #[test]
    fn results_identical_across_workers_and_warm_start() {
        let c = medium_fsm();
        let mut opts = Options::with_k(4);
        let baseline = turbomap_frt(&c, opts).unwrap();
        let reference = netlist::write_blif(&baseline.circuit);
        for (workers, warm) in [(1, false), (3, true), (3, false), (0, true)] {
            opts.sweep_workers = workers;
            opts.warm_start = warm;
            let res = turbomap_frt(&c, opts).unwrap();
            let tag = format!("workers={workers} warm={warm}");
            assert_eq!(res.period, baseline.period, "{tag}");
            assert_eq!(res.luts, baseline.luts, "{tag}");
            assert_eq!(res.ffs, baseline.ffs, "{tag}");
            assert_eq!(res.star(), baseline.star(), "{tag}");
            assert_eq!(netlist::write_blif(&res.circuit), reference, "{tag}");
        }
    }

    /// Warm starts must never probe *more* periods and still report the
    /// same feasibility frontier (same probed Φ sequence).
    #[test]
    fn warm_start_probes_the_same_periods() {
        let c = medium_fsm();
        let mut opts = Options::with_k(4);
        opts.warm_start = false;
        let cold = turbomap_frt(&c, opts).unwrap();
        opts.warm_start = true;
        let warm = turbomap_frt(&c, opts).unwrap();
        let phis = |r: &TurboMapResult| r.iterations.iter().map(|&(p, _)| p).collect::<Vec<_>>();
        assert_eq!(phis(&warm), phis(&cold));
        let sweeps = |r: &TurboMapResult| r.iterations.iter().map(|&(_, s)| s).sum::<usize>();
        assert!(sweeps(&warm) <= sweeps(&cold));
    }

    /// A pre-tripped cancel token must stop a parallel run promptly with
    /// `Cancelled` — helpers parked on the sweep board may not deadlock
    /// the driver or leak past the scope.
    #[test]
    fn parallel_sweeps_respect_cancellation() {
        let c = medium_fsm();
        let token = engine::CancelToken::new();
        token.cancel();
        let _guard = engine::cancel::install(token);
        let mut opts = Options::with_k(4);
        opts.sweep_workers = 4;
        let start = std::time::Instant::now();
        let res = turbomap_frt(&c, opts);
        assert!(matches!(res, Err(TurboMapError::Cancelled)), "{res:?}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "cancelled run took {:?} — sweep crew hung?",
            start.elapsed()
        );
    }

    #[test]
    fn invalid_circuit_rejected() {
        let mut c = Circuit::new("bad");
        c.add_input("a").unwrap();
        c.add_output("o").unwrap(); // unconnected PO
        assert!(matches!(
            turbomap_frt(&c, Options::default()),
            Err(TurboMapError::Invalid(_))
        ));
    }
}
