//! **TurboMap-frt** — optimal FPGA mapping with forward retiming and
//! efficient initial state computation (Cong & Wu, DAC 1998).
//!
//! This crate is the reproduction's core: a polynomial-time algorithm that
//! simultaneously computes a K-LUT technology mapping and a *forward-only*
//! retiming minimising the clock period, such that the equivalent initial
//! state of the result is computable in linear time by simulation — no
//! NP-hard backward justification, no state-transition-graph traversal.
//!
//! The pieces, mirroring the paper's Section 3:
//!
//! * [`expand`] — expanded circuits `F_v^i` (§3.1, Theorem 2),
//! * [`cutsearch`] — min-height / min-weight K-feasible cuts by bounded
//!   max-flow (§3.2, Definitions 4–5),
//! * [`frtcheck`] — the FRTcheck label-pair iteration (Figure 5) deciding
//!   one target period,
//! * [`generate`] — mapping generation with forward retiming and initial
//!   state computation (§3.3, Theorem 6),
//! * [`gencheck`] — the label computation for the **TurboMap** general-
//!   retiming baseline (ICCD'96) used in the paper's comparison,
//! * [`driver`] — binary search over Φ and the two end-to-end entry
//!   points [`turbomap_frt`] and [`turbomap_general`].
//!
//! # Examples
//!
//! ```
//! use netlist::{Bit, Circuit, TruthTable};
//! use turbomap::{turbomap_frt, Options};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A register in front of a 2-level AND/XOR pipeline.
//! let mut c = Circuit::new("demo");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let g1 = c.add_gate("g1", TruthTable::and(2))?;
//! let g2 = c.add_gate("g2", TruthTable::xor(2))?;
//! let o = c.add_output("o")?;
//! c.connect(a, g1, vec![Bit::One])?;
//! c.connect(b, g1, vec![Bit::Zero])?;
//! c.connect(g1, g2, vec![])?;
//! c.connect(b, g2, vec![])?;
//! c.connect(g2, o, vec![])?;
//!
//! let result = turbomap_frt(&c, Options::with_k(5))?;
//! assert_eq!(result.period, 1);          // one 5-LUT after retiming
//! assert!(!result.initial_state_lost);   // guaranteed by construction
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cutsearch;
pub mod driver;
pub mod expand;
pub mod frtcheck;
pub mod gencheck;
pub mod generate;
pub mod slack;
pub mod sweep;
pub mod witness;

pub use cutsearch::{
    find_cut, find_cut_with, min_weight_cut, min_weight_cut_with, CutScratch, ExpCut,
};
pub use driver::{prepare, turbomap_frt, turbomap_general, Options, TurboMapError, TurboMapResult};
pub use expand::{ExpNode, ExpandedCircuit};
pub use frtcheck::{FrtCheck, FrtContext, LabelPairs};
pub use gencheck::{po_reachable, GeneralCheck, GeneralContext};
pub use generate::{collect_roots, generate_mapping, GenerateError, GeneratedMapping};
pub use slack::{plan_mapping, MappingPlan};
pub use sweep::Board;
pub use witness::{WitnessOutcome, WitnessStep};
