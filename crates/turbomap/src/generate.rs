//! Mapping generation (Section 3.3).
//!
//! Given the final labels and one K-cut per LUT root, the mapping is
//! materialised in three steps, following the paper:
//!
//! 1. **Root selection** — a FIFO seeded with the PO drivers; every gate
//!    named by a chosen cut becomes a root itself.
//! 2. **Expanded network** — each root's cone is instantiated as real
//!    gates (node duplication), every edge carrying its original register
//!    chain and initial values; the whole network is then retimed with
//!    `Ɍ(v) = ⌈L^s(v)/Φ⌉ − 1` at roots and `Ɍ(u^w) = Ɍ(v) + w` inside
//!    cones (Theorem 6), computing initial states with the retiming
//!    engine's unit moves.
//! 3. **Collapse** — after retiming every intra-cone edge carries zero
//!    registers, so each cone folds into a single K-LUT (truth table by
//!    exhaustive cone simulation).
//!
//! For TurboMap-frt the retiming is pure forward and the initial state
//! computation cannot fail; the general TurboMap baseline reuses the same
//! machinery with mixed-direction retimings, where backward justification
//! *can* fail — reported to the caller (the paper's `⋆` rows).

use crate::cutsearch::ExpCut;
use crate::expand::ExpNode;
use flowmap::{build_lut_network, Cut, CutSignal};
use netlist::{Circuit, NodeId};
use retiming::{apply_retiming, MoveStats, Retiming, RetimingError};
use std::collections::{HashMap, VecDeque};

/// Errors from mapping generation.
#[derive(Debug)]
pub enum GenerateError {
    /// A cut referenced a gate with no cut of its own (internal error).
    MissingCut {
        /// The gate without a cut.
        node: String,
    },
    /// A cone reached a boundary not listed in its cut (internal error).
    InconsistentCone {
        /// The root whose cone broke.
        root: String,
    },
    /// Initial state computation failed (only possible for general
    /// retiming with backward moves — the paper's `⋆` case).
    InitialState(RetimingError),
    /// Other retiming error (illegal retiming — internal error).
    Retiming(RetimingError),
    /// Netlist construction error.
    Netlist(netlist::NetlistError),
    /// LUT collapse error.
    Collapse(flowmap::MapError),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::MissingCut { node } => write!(f, "no cut stored for `{node}`"),
            GenerateError::InconsistentCone { root } => {
                write!(f, "cone of `{root}` crossed an uncut boundary")
            }
            GenerateError::InitialState(e) => write!(f, "initial state: {e}"),
            GenerateError::Retiming(e) => write!(f, "retiming: {e}"),
            GenerateError::Netlist(e) => write!(f, "netlist: {e}"),
            GenerateError::Collapse(e) => write!(f, "collapse: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<netlist::NetlistError> for GenerateError {
    fn from(e: netlist::NetlistError) -> Self {
        GenerateError::Netlist(e)
    }
}

impl From<flowmap::MapError> for GenerateError {
    fn from(e: flowmap::MapError) -> Self {
        GenerateError::Collapse(e)
    }
}

/// The generated mapping.
#[derive(Debug, Clone)]
pub struct GeneratedMapping {
    /// The final LUT network with registers and initial states.
    pub circuit: Circuit,
    /// Unit-move statistics of the retiming step.
    pub moves: MoveStats,
    /// True when the initial state had to be abandoned (values replaced by
    /// `X`) because backward justification failed — the `⋆` outcome.
    pub initial_state_lost: bool,
}

/// Selects the LUT roots: FIFO from the PO drivers, pulling in every gate
/// named by a root's cut (§3.3 step 1).
pub fn collect_roots(
    c: &Circuit,
    cuts: &[Option<ExpCut>],
) -> Result<HashMap<NodeId, ExpCut>, GenerateError> {
    let mut roots: HashMap<NodeId, ExpCut> = HashMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &po in c.outputs() {
        let driver = c.edge(c.node(po).fanin()[0]).from();
        if c.node(driver).is_gate() {
            queue.push_back(driver);
        }
    }
    while let Some(v) = queue.pop_front() {
        if roots.contains_key(&v) {
            continue;
        }
        let cut = cuts[v.index()]
            .clone()
            .ok_or_else(|| GenerateError::MissingCut {
                node: c.node(v).name().to_string(),
            })?;
        for s in &cut.signals {
            if c.node(s.node).is_gate() && !roots.contains_key(&s.node) {
                queue.push_back(s.node);
            }
        }
        roots.insert(v, cut);
    }
    Ok(roots)
}

/// One root's cone, derived from its cut: the internal expanded nodes and,
/// per internal node, its fanin resolution.
struct Cone {
    /// Internal expanded nodes, root first.
    internal: Vec<ExpNode>,
    /// For each internal node (same order), its fanins: the original edge
    /// and the expanded target, plus whether the target is a boundary
    /// (cut) signal.
    fanins: Vec<Vec<(netlist::EdgeId, ExpNode, bool)>>,
}

fn derive_cone(c: &Circuit, root: NodeId, cut: &ExpCut) -> Result<Cone, GenerateError> {
    let cut_set: std::collections::HashSet<ExpNode> = cut.signals.iter().copied().collect();
    let mut index: HashMap<ExpNode, usize> = HashMap::new();
    let mut internal: Vec<ExpNode> = Vec::new();
    let mut fanins: Vec<Vec<(netlist::EdgeId, ExpNode, bool)>> = Vec::new();
    let start = ExpNode {
        node: root,
        weight: 0,
    };
    index.insert(start, 0);
    internal.push(start);
    fanins.push(Vec::new());
    let mut stack = vec![0usize];
    while let Some(xi) = stack.pop() {
        let x = internal[xi];
        let fanin_edges: Vec<netlist::EdgeId> = c.node(x.node).fanin().to_vec();
        for e in fanin_edges {
            let edge = c.edge(e);
            let target = ExpNode {
                node: edge.from(),
                weight: x.weight + edge.weight() as u64,
            };
            if cut_set.contains(&target) {
                fanins[xi].push((e, target, true));
                continue;
            }
            if !c.node(target.node).is_gate() {
                return Err(GenerateError::InconsistentCone {
                    root: c.node(root).name().to_string(),
                });
            }
            let ti = match index.get(&target) {
                Some(&ti) => ti,
                None => {
                    let ti = internal.len();
                    index.insert(target, ti);
                    internal.push(target);
                    fanins.push(Vec::new());
                    stack.push(ti);
                    ti
                }
            };
            fanins[xi].push((e, target, false));
            let _ = ti;
        }
    }
    Ok(Cone { internal, fanins })
}

/// Generates the final LUT network from roots, cuts and per-root retiming
/// values `rr(v) = Ɍ(v)` (Leiserson–Saxe sign: ≤ 0 pulls registers
/// forward).
///
/// When `allow_state_loss` is set and backward justification fails, the
/// generation retries with all initial values erased to `X` and flags the
/// result (`initial_state_lost`) instead of failing — this reproduces the
/// paper's `⋆` outcomes while still reporting structure and timing.
///
/// # Errors
///
/// See [`GenerateError`].
pub fn generate_mapping(
    c: &Circuit,
    roots: &HashMap<NodeId, ExpCut>,
    rr: &HashMap<NodeId, i64>,
    name: &str,
    allow_state_loss: bool,
) -> Result<GeneratedMapping, GenerateError> {
    // ---- Step 2a: build the expanded (node-duplicated) network H. ----
    let mut h = Circuit::new(format!("{name}_expanded"));
    let mut pi_map: HashMap<NodeId, NodeId> = HashMap::new();
    for &pi in c.inputs() {
        pi_map.insert(pi, h.add_input(c.node(pi).name().to_string())?);
    }
    let mut root_ids: Vec<NodeId> = roots.keys().copied().collect();
    root_ids.sort_unstable();

    // Instance nodes per (root, expanded node).
    let mut cones: HashMap<NodeId, Cone> = HashMap::new();
    let mut inst: HashMap<(NodeId, ExpNode), NodeId> = HashMap::new();
    let mut retime_values: Vec<(NodeId, i64)> = Vec::new();
    for &v in &root_ids {
        let cone = derive_cone(c, v, &roots[&v])?;
        let rv = *rr.get(&v).expect("retiming value for every root");
        for (pos, &en) in cone.internal.iter().enumerate() {
            let node_name = if pos == 0 {
                c.node(v).name().to_string()
            } else {
                format!(
                    "{}~x{}w{}",
                    c.node(v).name(),
                    c.node(en.node).name(),
                    en.weight
                )
            };
            let tt = c.node(en.node).function().expect("cone gates").clone();
            let id = h.add_gate(node_name, tt)?;
            inst.insert((v, en), id);
            retime_values.push((id, rv + en.weight as i64));
        }
        cones.insert(v, cone);
    }
    // Wire cone fanins; record boundary edges per root for the collapse.
    let mut boundary_edges: HashMap<NodeId, Vec<netlist::EdgeId>> = HashMap::new();
    for &v in &root_ids {
        let cone = &cones[&v];
        let mut blist = Vec::new();
        for (pos, &en) in cone.internal.iter().enumerate() {
            let consumer = inst[&(v, en)];
            for &(e, target, is_boundary) in &cone.fanins[pos] {
                let chain = c.edge(e).ffs().to_vec();
                let src = if is_boundary {
                    signal_driver(c, &pi_map, &inst, target, v)?
                } else {
                    inst[&(v, target)]
                };
                let new_edge = h.connect(src, consumer, chain)?;
                if is_boundary {
                    blist.push(new_edge);
                }
            }
        }
        boundary_edges.insert(v, blist);
    }
    // Primary outputs.
    for &po in c.outputs() {
        let new_po = h.add_output(c.node(po).name().to_string())?;
        let e = c.node(po).fanin()[0];
        let edge = c.edge(e);
        let d = edge.from();
        let src = if c.node(d).is_gate() {
            *inst
                .get(&(d, ExpNode { node: d, weight: 0 }))
                .ok_or_else(|| GenerateError::MissingCut {
                    node: c.node(d).name().to_string(),
                })?
        } else {
            pi_map[&d]
        };
        h.connect(src, new_po, edge.ffs().to_vec())?;
    }

    // ---- Step 2b: retime H, computing initial states. ----
    let mut retiming = Retiming::zero(&h);
    for &(id, r) in &retime_values {
        retiming.set(id, r);
    }
    let (h_retimed, moves, initial_state_lost) = match apply_retiming(&h, &retiming) {
        Ok((hr, mv)) => (hr, mv, false),
        Err(
            e @ (RetimingError::ConflictingFanoutValues { .. }
            | RetimingError::NotJustifiable { .. }),
        ) => {
            if !allow_state_loss {
                return Err(GenerateError::InitialState(e));
            }
            // Erase initial values and retime structurally.
            let mut hx = h.clone();
            for eid in hx.edge_ids().collect::<Vec<_>>() {
                for b in hx.ffs_mut(eid).iter_mut() {
                    *b = netlist::Bit::X;
                }
            }
            let (hr, mv) = apply_retiming(&hx, &retiming).map_err(GenerateError::Retiming)?;
            (hr, mv, true)
        }
        Err(e) => return Err(GenerateError::Retiming(e)),
    };

    // ---- Step 3: collapse cones into K-LUTs. ----
    // Boundary edges with the same (driver, weight) carry the *same
    // logical signal* and become one LUT input — the cut counted them
    // once, so K-feasibility depends on merging them. Their register
    // chains must agree; justified backward values can diverge, in which
    // case the positions are erased to X and the initial state is lost
    // for those registers (a `⋆` ingredient).
    let mut h_retimed = h_retimed;
    let mut initial_state_lost = initial_state_lost;
    let mut lut_roots: HashMap<NodeId, Cut> = HashMap::new();
    for &v in &root_ids {
        let root_inst = inst[&(v, ExpNode { node: v, weight: 0 })];
        // Merge chains per (driver, weight).
        let mut merged: Vec<((NodeId, usize), Vec<netlist::Bit>)> = Vec::new();
        for &be in &boundary_edges[&v] {
            let edge = h_retimed.edge(be);
            let key = (edge.from(), edge.weight());
            let chain = edge.ffs().to_vec();
            match merged.iter_mut().find(|(k, _)| *k == key) {
                Some((_, existing)) => {
                    for (slot, b) in existing.iter_mut().zip(chain) {
                        match slot.merge(b) {
                            Some(m) => *slot = m,
                            None => {
                                *slot = netlist::Bit::X;
                                initial_state_lost = true;
                            }
                        }
                    }
                }
                None => merged.push((key, chain)),
            }
        }
        // Write the merged chains back so the cone collapse sees exactly
        // the signatures listed in the cut.
        for &be in &boundary_edges[&v] {
            let key = (h_retimed.edge(be).from(), h_retimed.edge(be).weight());
            let chain = merged
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, c)| c.clone())
                .expect("merged above");
            *h_retimed.ffs_mut(be) = chain;
        }
        let signals: Vec<CutSignal> = merged
            .into_iter()
            .map(|((node, weight), chain)| CutSignal {
                node,
                weight,
                chain,
            })
            .collect();
        lut_roots.insert(root_inst, Cut { signals });
    }
    let circuit = build_lut_network(&h_retimed, &lut_roots, name)?;
    Ok(GeneratedMapping {
        circuit,
        moves,
        initial_state_lost,
    })
}

/// Resolves the H-network driver of a boundary signal: the root instance
/// of a gate, or a PI.
fn signal_driver(
    c: &Circuit,
    pi_map: &HashMap<NodeId, NodeId>,
    inst: &HashMap<(NodeId, ExpNode), NodeId>,
    target: ExpNode,
    root: NodeId,
) -> Result<NodeId, GenerateError> {
    if c.node(target.node).is_gate() {
        inst.get(&(
            target.node,
            ExpNode {
                node: target.node,
                weight: 0,
            },
        ))
        .copied()
        .ok_or_else(|| GenerateError::InconsistentCone {
            root: c.node(root).name().to_string(),
        })
    } else {
        Ok(pi_map[&target.node])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    /// i1 -FF-> g1 -> g2 -> o with a side PI into g2.
    fn sample() -> Circuit {
        let mut c = Circuit::new("s");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![Bit::One]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i2, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        c
    }

    #[test]
    fn identity_cuts_reproduce_circuit() {
        let c = sample();
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let i1 = c.find("i1").unwrap();
        let i2 = c.find("i2").unwrap();
        let mut roots = HashMap::new();
        roots.insert(
            g1,
            ExpCut {
                signals: vec![ExpNode {
                    node: i1,
                    weight: 1,
                }],
            },
        );
        roots.insert(
            g2,
            ExpCut {
                signals: vec![
                    ExpNode {
                        node: g1,
                        weight: 0,
                    },
                    ExpNode {
                        node: i2,
                        weight: 0,
                    },
                ],
            },
        );
        let rr: HashMap<NodeId, i64> = [(g1, 0), (g2, 0)].into_iter().collect();
        let gen = generate_mapping(&c, &roots, &rr, "ident", false).unwrap();
        assert!(!gen.initial_state_lost);
        assert_eq!(gen.circuit.num_gates(), 2);
        assert!(exhaustive_equiv(&c, &gen.circuit, 5)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn forward_retiming_with_cone_absorb() {
        // One LUT absorbing the register: cut {i1^1, i2^0}, Ɍ(g2) = -1
        // would be illegal (i2 has no register)... instead absorb g1 into
        // g2's LUT with the register staying on the cut signal i1^1:
        // Ɍ(g2) = 0.
        let c = sample();
        let g2 = c.find("g2").unwrap();
        let i1 = c.find("i1").unwrap();
        let i2 = c.find("i2").unwrap();
        let mut roots = HashMap::new();
        roots.insert(
            g2,
            ExpCut {
                signals: vec![
                    ExpNode {
                        node: i1,
                        weight: 1,
                    },
                    ExpNode {
                        node: i2,
                        weight: 0,
                    },
                ],
            },
        );
        let rr: HashMap<NodeId, i64> = [(g2, 0)].into_iter().collect();
        let gen = generate_mapping(&c, &roots, &rr, "absorb", false).unwrap();
        assert_eq!(gen.circuit.num_gates(), 1);
        assert_eq!(gen.circuit.ff_count_shared(), 1);
        assert!(exhaustive_equiv(&c, &gen.circuit, 5)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn forward_retiming_pulls_register_through_lut() {
        // Root g1 with cut {i1^1} and Ɍ(g1) = -1: the register moves to
        // g1's output, initial value = NOT(1) = 0.
        let c = sample();
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let i1 = c.find("i1").unwrap();
        let i2 = c.find("i2").unwrap();
        let mut roots = HashMap::new();
        roots.insert(
            g1,
            ExpCut {
                signals: vec![ExpNode {
                    node: i1,
                    weight: 1,
                }],
            },
        );
        roots.insert(
            g2,
            ExpCut {
                signals: vec![
                    ExpNode {
                        node: g1,
                        weight: 0,
                    },
                    ExpNode {
                        node: i2,
                        weight: 0,
                    },
                ],
            },
        );
        // Ɍ(g1) = -1: register through g1; g2's cut signal (g1, 0)
        // becomes weight 0 + 0 - (-1) = 1 in the final network.
        let rr: HashMap<NodeId, i64> = [(g1, -1), (g2, 0)].into_iter().collect();
        let gen = generate_mapping(&c, &roots, &rr, "pull", false).unwrap();
        assert!(gen.moves.forward_moves > 0);
        let g1_new = gen.circuit.find("g1").unwrap();
        let out_edge = gen.circuit.node(g1_new).fanout()[0];
        assert_eq!(gen.circuit.edge(out_edge).ffs(), &[Bit::Zero]);
        assert!(exhaustive_equiv(&c, &gen.circuit, 5)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn duplicated_cone_instances() {
        // g1 feeds two roots; both absorb g1 → node duplication. The
        // mapping has 2 LUTs and remains equivalent.
        let mut c = Circuit::new("dup");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let p = c.add_gate("p", TruthTable::and(2)).unwrap();
        let q = c.add_gate("q", TruthTable::or(2)).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(i1, g1, vec![]).unwrap();
        c.connect(g1, p, vec![]).unwrap();
        c.connect(i2, p, vec![]).unwrap();
        c.connect(g1, q, vec![]).unwrap();
        c.connect(i2, q, vec![]).unwrap();
        c.connect(p, o1, vec![]).unwrap();
        c.connect(q, o2, vec![]).unwrap();
        let cut_for = |_root: NodeId| ExpCut {
            signals: vec![
                ExpNode {
                    node: i1,
                    weight: 0,
                },
                ExpNode {
                    node: i2,
                    weight: 0,
                },
            ],
        };
        let mut roots = HashMap::new();
        roots.insert(p, cut_for(p));
        roots.insert(q, cut_for(q));
        let rr: HashMap<NodeId, i64> = [(p, 0), (q, 0)].into_iter().collect();
        let gen = generate_mapping(&c, &roots, &rr, "dup", false).unwrap();
        assert_eq!(gen.circuit.num_gates(), 2);
        assert!(exhaustive_equiv(&c, &gen.circuit, 3)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn state_loss_flagged_for_general_retiming() {
        // Backward retiming over a constant-0 gate with a 1-valued
        // register is unjustifiable: with allow_state_loss the structure
        // is still produced, flagged.
        let mut c = Circuit::new("bk");
        let i1 = c.add_input("i1").unwrap();
        let g = c.add_gate("g", TruthTable::const_zero(1)).unwrap();
        let t = c.add_gate("t", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g, vec![]).unwrap();
        c.connect(g, t, vec![Bit::One]).unwrap();
        c.connect(t, o, vec![]).unwrap();
        let mut roots = HashMap::new();
        roots.insert(
            g,
            ExpCut {
                signals: vec![ExpNode {
                    node: i1,
                    weight: 0,
                }],
            },
        );
        roots.insert(
            t,
            ExpCut {
                signals: vec![ExpNode { node: g, weight: 1 }],
            },
        );
        // Ɍ(g) = +1: backward move, must justify 1 through const-0 → ⋆.
        let rr: HashMap<NodeId, i64> = [(g, 1), (t, 0)].into_iter().collect();
        assert!(matches!(
            generate_mapping(&c, &roots, &rr, "bk", false),
            Err(GenerateError::InitialState(_))
        ));
        let gen = generate_mapping(&c, &roots, &rr, "bk2", true).unwrap();
        assert!(gen.initial_state_lost);
        assert_eq!(gen.circuit.num_gates(), 2);
    }
}
