//! Label computation for TurboMap with **general** retiming (the ICCD'96
//! baseline the paper compares against).
//!
//! With unrestricted retiming the l-values are single labels: Pan & Liu's
//! condition says a mapping solution can be retimed to period ≤ `Φ` iff
//! `l(po) ≤ Φ` at every primary output. Internal labels may exceed `Φ`
//! (registers can be borrowed backward from downstream). The update rule
//! matches FRTcheck's but without the `(L^s, R)` pair logic, and LUT
//! cones may absorb registers up to the configured weight horizon instead
//! of `frt(v)` — nothing guarantees forward-only register motion, which is
//! exactly why this baseline's initial states need NP-hard justification.

use crate::cutsearch::{find_cut_with, CutScratch, ExpCut};
use crate::expand::ExpandedCircuit;
use crate::frtcheck::{LS_NEG_INF, MAX_EXPANDED_NODES};
use netlist::{Circuit, NodeId};

/// Outcome of one general-label check.
#[derive(Debug, Clone)]
pub struct GeneralCheck {
    /// True when some mapping + general retiming meets the period.
    pub feasible: bool,
    /// Final labels (indexed by node id).
    pub labels: Vec<i64>,
    /// Sweeps executed.
    pub iterations: usize,
}

/// Precomputed state for general-retiming label runs.
pub struct GeneralContext<'a> {
    circuit: &'a Circuit,
    expanded: Vec<Option<ExpandedCircuit>>,
    order: Vec<NodeId>,
    /// Gates that reach a PO (dead logic is skipped; see DESIGN.md).
    live: Vec<bool>,
    /// Inverted cone index (see `FrtContext::influenced`).
    influenced: Vec<Vec<u32>>,
    k: usize,
    horizon: u64,
}

impl<'a> GeneralContext<'a> {
    /// Builds expanded circuits with the weight horizon for every live
    /// gate.
    ///
    /// # Panics
    ///
    /// Panics on combinational cycles.
    pub fn new(circuit: &'a Circuit, k: usize, horizon: u64) -> GeneralContext<'a> {
        let order = circuit
            .comb_topo_order()
            .expect("combinational cycles must be rejected before mapping");
        let live = po_reachable(circuit);
        let mut expanded: Vec<Option<ExpandedCircuit>> = vec![None; circuit.num_nodes()];
        let mut influenced: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_nodes()];
        for v in circuit.gate_ids() {
            if live[v.index()] {
                let exp = ExpandedCircuit::build(circuit, v, horizon, MAX_EXPANDED_NODES);
                if let Some(exp) = &exp {
                    let mut seen = vec![false; circuit.num_nodes()];
                    for en in &exp.nodes {
                        if !seen[en.node.index()] {
                            seen[en.node.index()] = true;
                            influenced[en.node.index()].push(v.0);
                        }
                    }
                }
                expanded[v.index()] = exp;
            }
        }
        GeneralContext {
            circuit,
            expanded,
            order,
            live,
            influenced,
            k,
            horizon,
        }
    }

    /// The expanded circuit of a live gate (None when dead or capped).
    pub fn expanded(&self, v: NodeId) -> Option<&ExpandedCircuit> {
        self.expanded[v.index()].as_ref()
    }

    fn script_l(&self, ls: &[i64], v: NodeId, phi: i64) -> i64 {
        let mut best = LS_NEG_INF;
        for &e in self.circuit.node(v).fanin() {
            let edge = self.circuit.edge(e);
            let lu = ls[edge.from().index()];
            if lu > LS_NEG_INF {
                best = best.max(lu - phi * edge.weight() as i64);
            }
        }
        best
    }

    /// Runs the label iteration for one target period.
    pub fn check(&self, phi: u64) -> GeneralCheck {
        let c = self.circuit;
        let n = c.num_nodes();
        let phi_i = phi as i64;
        let mut labels = vec![LS_NEG_INF; n];
        for &pi in c.inputs() {
            labels[pi.index()] = 0;
        }
        let cap = n.saturating_mul(n).max(4);
        let mut iterations = 0usize;
        let mut dirty = vec![true; n];
        // One flow-network arena for every cut query of this run.
        let mut scratch = CutScratch::new();
        loop {
            // Same cancellation contract as `FrtContext::check`: bail out
            // as "infeasible"; the driver re-checks the token.
            if engine::cancel::cancelled() {
                return GeneralCheck {
                    feasible: false,
                    labels,
                    iterations,
                };
            }
            iterations += 1;
            engine::telemetry::count(engine::telemetry::Counter::FrtSweeps, 1);
            let _sweep = engine::trace::span1("frtcheck_sweep", "n", iterations as u64);
            let _mem = engine::mem::scope(engine::mem::MemPhase::LabelSweep);
            let mut changed = false;
            for &v in &self.order {
                let node = c.node(v);
                if node.is_input() || !self.live[v.index()] || !dirty[v.index()] {
                    continue;
                }
                dirty[v.index()] = false;
                let script = self.script_l(&labels, v, phi_i);
                if script <= LS_NEG_INF {
                    continue;
                }
                let new_l = if node.is_output() {
                    script
                } else {
                    let exp = self.expanded[v.index()].as_ref();
                    match exp.and_then(|e| {
                        find_cut_with(
                            &mut scratch,
                            e,
                            &labels,
                            phi_i,
                            script,
                            self.horizon,
                            self.k,
                        )
                    }) {
                        Some(_) => script,
                        None => script + 1,
                    }
                };
                if new_l > labels[v.index()] {
                    labels[v.index()] = new_l;
                    changed = true;
                    for &e in node.fanout() {
                        dirty[c.edge(e).to().index()] = true;
                    }
                    for &g in &self.influenced[v.index()] {
                        dirty[g as usize] = true;
                    }
                    if node.is_output() && new_l > phi_i {
                        // PO lower bound already exceeds Φ: infeasible.
                        engine::telemetry::record(
                            engine::hist::Metric::SweepsPerPhi,
                            iterations as u64,
                        );
                        return GeneralCheck {
                            feasible: false,
                            labels,
                            iterations,
                        };
                    }
                }
            }
            if !changed {
                break;
            }
            if iterations >= cap {
                engine::telemetry::record(engine::hist::Metric::SweepsPerPhi, iterations as u64);
                return GeneralCheck {
                    feasible: false,
                    labels,
                    iterations,
                };
            }
        }
        engine::telemetry::record(engine::hist::Metric::SweepsPerPhi, iterations as u64);
        let feasible = c.outputs().iter().all(|&po| labels[po.index()] <= phi_i);
        GeneralCheck {
            feasible,
            labels,
            iterations,
        }
    }

    /// Extracts a cut consistent with the final labels for every live
    /// gate.
    ///
    /// # Panics
    ///
    /// Panics if a converged label admits no cut (contradiction).
    pub fn final_cuts(&self, labels: &[i64], phi: u64) -> Vec<Option<ExpCut>> {
        let phi_i = phi as i64;
        let mut cuts: Vec<Option<ExpCut>> = vec![None; self.circuit.num_nodes()];
        let mut scratch = CutScratch::new();
        for v in self.circuit.gate_ids() {
            let i = v.index();
            if !self.live[i] || labels[i] <= LS_NEG_INF {
                continue;
            }
            let exp = self.expanded[i].as_ref().expect("live gate expanded");
            let cut = find_cut_with(
                &mut scratch,
                exp,
                labels,
                phi_i,
                labels[i],
                self.horizon,
                self.k,
            )
            .expect("converged labels admit a cut");
            cuts[i] = Some(cut);
        }
        cuts
    }
}

/// True per node when it reaches some primary output.
pub fn po_reachable(c: &Circuit) -> Vec<bool> {
    let n = c.num_nodes();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = c.outputs().iter().map(|v| v.index()).collect();
    for &s in &stack {
        live[s] = true;
    }
    while let Some(u) = stack.pop() {
        for &e in c.node(NodeId(u as u32)).fanin() {
            let f = c.edge(e).from().index();
            if !live[f] {
                live[f] = true;
                stack.push(f);
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// FF *behind* a 3-gate chain: forward retiming can't improve the
    /// period, general retiming can.
    fn back_ff_chain() -> Circuit {
        let mut c = Circuit::new("t");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let i3 = c.add_input("i3").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, g1, vec![]).unwrap();
        c.connect(i2, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(i3, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(i1, g3, vec![]).unwrap();
        c.connect(g3, o, vec![Bit::One]).unwrap();
        c
    }

    #[test]
    fn general_beats_forward_with_back_register() {
        let c = back_ff_chain();
        let gctx = GeneralContext::new(&c, 2, 16);
        let fctx = crate::frtcheck::FrtContext::new(&c, 2, 16);
        // K=2: three LUT levels; the register behind g3 can move backward
        // only under general retiming: Φ=2 feasible generally, not
        // forward-only.
        assert!(gctx.check(2).feasible);
        assert!(!fctx.check(2).feasible);
        assert!(fctx.check(3).feasible);
    }

    #[test]
    fn po_labels_bound_feasibility() {
        let c = back_ff_chain();
        let ctx = GeneralContext::new(&c, 2, 16);
        let res = ctx.check(3);
        assert!(res.feasible);
        for &po in c.outputs() {
            assert!(res.labels[po.index()] <= 3);
        }
    }

    #[test]
    fn infeasible_when_no_registers() {
        // Pure combinational 3-level K=2 structure: Φ < 3 impossible.
        let mut c = back_ff_chain();
        // Remove the register by rebuilding: easier to zero the chain.
        let o = c.find("o").unwrap();
        let e = c.node(o).fanin()[0];
        c.ffs_mut(e).clear();
        let ctx = GeneralContext::new(&c, 2, 16);
        assert!(!ctx.check(2).feasible);
        assert!(ctx.check(3).feasible);
    }

    #[test]
    fn dead_logic_is_ignored() {
        let mut c = back_ff_chain();
        // Dead register cycle with ratio 5 (five gates, one register):
        // would force Φ ≥ 5 if counted, but it feeds no PO.
        let i1 = c.find("i1").unwrap();
        let dmix = c.add_gate("dmix", TruthTable::and(2)).unwrap();
        let mut prev = dmix;
        for i in 0..4 {
            let d = c.add_gate(format!("d{i}"), TruthTable::not()).unwrap();
            c.connect(prev, d, vec![]).unwrap();
            prev = d;
        }
        c.connect(i1, dmix, vec![]).unwrap();
        c.connect(prev, dmix, vec![Bit::Zero]).unwrap();
        let ctx = GeneralContext::new(&c, 2, 16);
        assert!(ctx.check(3).feasible);
        assert!(!po_reachable(&c)[dmix.index()]);
    }

    #[test]
    fn iterations_stay_small() {
        let c = back_ff_chain();
        let ctx = GeneralContext::new(&c, 2, 16);
        let res = ctx.check(3);
        assert!(res.iterations <= 10);
    }
}
