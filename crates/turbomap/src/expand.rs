//! Expanded circuits `F_v^i` (Section 3.1 of the paper).
//!
//! The expanded circuit of a node `v` is a DAG over *expanded nodes*
//! `u^w = (u, w)` rooted at `v^0`, where `w` is the total register count
//! along the path from `u` to `v`. Nodes with the same `(u, w)` merge, so
//! **every** path from `u^w` to the root crosses exactly `w` registers —
//! the property that makes K-cuts on the expanded circuit correspond
//! one-to-one to K-LUTs under node duplication and forward retiming
//! (Theorem 2).
//!
//! `F_v^i` bounds the *internal* nodes to weight ≤ `i`; heavier nodes (and
//! PIs) become leaves. With `i = frt(v)` (the maximum forward retiming
//! value of `v`, Lemma 1) the correspondence covers exactly the LUTs
//! realisable by forward retiming.

use netlist::{Circuit, NodeId};

/// An expanded node `u^w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpNode {
    /// The original node.
    pub node: NodeId,
    /// Registers between `node` and the root.
    pub weight: u64,
}

/// Open-addressed `(node, weight) -> expanded index` map with linear
/// probing over a power-of-two table.
///
/// Expanded-circuit construction is the single hottest allocation site of
/// the label sweep (one build per node per bound probe), and the generic
/// `HashMap<ExpNode, u32>` paid SipHash plus a heap box per build. This
/// table is three flat arrays, a multiply-xorshift hash and no per-entry
/// allocation. Lookup order never leaks into results — the map is only
/// ever probed point-wise — so determinism is untouched.
#[derive(Debug, Clone)]
struct ExpIndex {
    /// Original-node id per slot; `EMPTY_SLOT` marks free slots.
    node: Vec<u32>,
    /// Weight per slot (valid only when the slot is occupied).
    weight: Vec<u64>,
    /// Expanded index per slot (valid only when the slot is occupied).
    idx: Vec<u32>,
    /// Number of occupied slots.
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl ExpIndex {
    fn new() -> Self {
        let size = 64;
        ExpIndex {
            node: vec![EMPTY_SLOT; size],
            weight: vec![0; size],
            idx: vec![0; size],
            len: 0,
        }
    }

    #[inline]
    fn hash(node: u32, weight: u64) -> u64 {
        let mut h = (node as u64 ^ weight.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^ (h >> 32)
    }

    /// Slot containing `(node, weight)`, or the free slot where it would
    /// be inserted.
    #[inline]
    fn probe(&self, node: u32, weight: u64) -> usize {
        let mask = self.node.len() - 1;
        let mut s = Self::hash(node, weight) as usize & mask;
        loop {
            if self.node[s] == EMPTY_SLOT || (self.node[s] == node && self.weight[s] == weight) {
                return s;
            }
            s = (s + 1) & mask;
        }
    }

    #[inline]
    fn get(&self, node: u32, weight: u64) -> Option<u32> {
        let s = self.probe(node, weight);
        (self.node[s] != EMPTY_SLOT).then(|| self.idx[s])
    }

    fn insert(&mut self, node: u32, weight: u64, idx: u32) {
        if self.len * 2 >= self.node.len() {
            self.grow();
        }
        let s = self.probe(node, weight);
        debug_assert_eq!(self.node[s], EMPTY_SLOT);
        self.node[s] = node;
        self.weight[s] = weight;
        self.idx[s] = idx;
        self.len += 1;
    }

    fn grow(&mut self) {
        let old_node = std::mem::replace(&mut self.node, vec![EMPTY_SLOT; 0]);
        let old_weight = std::mem::take(&mut self.weight);
        let old_idx = std::mem::take(&mut self.idx);
        let size = old_node.len() * 2;
        self.node = vec![EMPTY_SLOT; size];
        self.weight = vec![0; size];
        self.idx = vec![0; size];
        for (s, &n) in old_node.iter().enumerate() {
            if n != EMPTY_SLOT {
                let t = self.probe(n, old_weight[s]);
                self.node[t] = n;
                self.weight[t] = old_weight[s];
                self.idx[t] = old_idx[s];
            }
        }
    }
}

/// The expanded circuit `F_v^i` of one root.
///
/// Fanins live in one flat pool indexed by per-node `(offset, len)` pairs
/// — struct-of-arrays with no per-node heap boxes, so a build is a handful
/// of amortised `Vec` pushes regardless of node count.
#[derive(Debug, Clone)]
pub struct ExpandedCircuit {
    /// The root `v^0` is always index 0.
    pub nodes: Vec<ExpNode>,
    /// Offset of node `i`'s fanin slice in `fanin_pool`.
    fanin_off: Vec<u32>,
    /// Length of node `i`'s fanin slice.
    fanin_len: Vec<u32>,
    /// Flat fanin pool; each internal node's fanins are contiguous.
    fanin_pool: Vec<u32>,
    /// True when the node is a leaf (PI, or weight above the bound).
    pub is_leaf: Vec<bool>,
    /// The weight bound `i` used during construction.
    pub bound: u64,
}

impl ExpandedCircuit {
    /// Number of expanded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Index of the root `v^0`.
    pub fn root(&self) -> usize {
        0
    }

    /// Expanded fanins of node `i` (empty for leaves).
    #[inline]
    pub fn fanins(&self, i: usize) -> &[u32] {
        let off = self.fanin_off[i] as usize;
        &self.fanin_pool[off..off + self.fanin_len[i] as usize]
    }

    /// Builds `F_v^bound`.
    ///
    /// Internal nodes satisfy `weight ≤ bound`; leaves are PIs or nodes
    /// whose weight exceeds the bound. `max_nodes` guards against blow-up
    /// (`None` is returned when exceeded — callers treat this as "no cut
    /// found at this bound", which is conservative).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a gate.
    pub fn build(c: &Circuit, v: NodeId, bound: u64, max_nodes: usize) -> Option<ExpandedCircuit> {
        assert!(c.node(v).is_gate(), "expanded circuits root at gates");
        let _span = engine::trace::span_with(
            "expand",
            [Some(("node", v.index() as u64)), Some(("bound", bound))],
        );
        let _mem = engine::mem::scope(engine::mem::MemPhase::Expand);
        let mut index = ExpIndex::new();
        let mut nodes: Vec<ExpNode> = Vec::new();
        let mut fanin_off: Vec<u32> = Vec::new();
        let mut fanin_len: Vec<u32> = Vec::new();
        let mut fanin_pool: Vec<u32> = Vec::new();
        let mut is_leaf: Vec<bool> = Vec::new();
        let root = ExpNode { node: v, weight: 0 };
        index.insert(v.index() as u32, 0, 0);
        nodes.push(root);
        fanin_off.push(0);
        fanin_len.push(0);
        is_leaf.push(false);
        let mut stack: Vec<u32> = vec![0];
        while let Some(xi) = stack.pop() {
            let x = nodes[xi as usize];
            // Only internal nodes expand.
            if is_leaf[xi as usize] {
                continue;
            }
            // A node is popped at most once, so its fanin slice is filled
            // contiguously here and never touched again.
            fanin_off[xi as usize] = fanin_pool.len() as u32;
            let fanin_edges: Vec<netlist::EdgeId> = c.node(x.node).fanin().to_vec();
            for e in fanin_edges {
                let edge = c.edge(e);
                let child = ExpNode {
                    node: edge.from(),
                    weight: x.weight + edge.weight() as u64,
                };
                let child_key = child.node.index() as u32;
                let leaf = !c.node(child.node).is_gate() || child.weight > bound;
                let ci = match index.get(child_key, child.weight) {
                    Some(ci) => {
                        // An existing node's leaf-ness never changes: it
                        // was classified by (node, weight) alone.
                        engine::telemetry::count(engine::telemetry::Counter::ExpandCacheHits, 1);
                        ci
                    }
                    None => {
                        engine::telemetry::count(engine::telemetry::Counter::ExpandCacheMisses, 1);
                        if nodes.len() >= max_nodes {
                            return None;
                        }
                        let ci = nodes.len() as u32;
                        index.insert(child_key, child.weight, ci);
                        nodes.push(child);
                        fanin_off.push(0);
                        fanin_len.push(0);
                        is_leaf.push(leaf);
                        if !leaf {
                            stack.push(ci);
                        }
                        ci
                    }
                };
                fanin_pool.push(ci);
            }
            fanin_len[xi as usize] = fanin_pool.len() as u32 - fanin_off[xi as usize];
        }
        Some(ExpandedCircuit {
            nodes,
            fanin_off,
            fanin_len,
            fanin_pool,
            is_leaf,
            bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// The circuit of the paper's Figure 3(a): i1, i2 → a → b —FF→ c ← a.
    /// (a feeds both b and c; the FF sits between b and c.)
    pub(crate) fn fig3_circuit() -> Circuit {
        let mut c = Circuit::new("fig3");
        let i1 = c.add_input("i1").unwrap();
        let i2 = c.add_input("i2").unwrap();
        let a = c.add_gate("a", TruthTable::and(2)).unwrap();
        let b = c.add_gate("b", TruthTable::not()).unwrap();
        let cc = c.add_gate("c", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i1, a, vec![]).unwrap();
        c.connect(i2, a, vec![]).unwrap();
        c.connect(a, b, vec![]).unwrap();
        c.connect(b, cc, vec![Bit::Zero]).unwrap();
        c.connect(a, cc, vec![]).unwrap();
        c.connect(cc, o, vec![]).unwrap();
        c
    }

    #[test]
    fn weights_accumulate() {
        let c = fig3_circuit();
        let cc = c.find("c").unwrap();
        let exp = ExpandedCircuit::build(&c, cc, 2, 10_000).unwrap();
        // Expect c^0, b^1, a^1 (through b), a^0 (direct), i's at both
        // weights.
        let find = |name: &str, w: u64| {
            let id = c.find(name).unwrap();
            exp.nodes
                .iter()
                .position(|&en| en.node == id && en.weight == w)
        };
        assert!(find("c", 0).is_some());
        assert!(find("b", 1).is_some());
        assert!(find("a", 1).is_some());
        assert!(find("a", 0).is_some());
        assert!(find("i1", 0).is_some());
        assert!(find("i1", 1).is_some());
    }

    #[test]
    fn bound_zero_cuts_registers() {
        let c = fig3_circuit();
        let cc = c.find("c").unwrap();
        let exp = ExpandedCircuit::build(&c, cc, 0, 10_000).unwrap();
        // b^1 exceeds the bound: leaf; a^1/i^1 never created below it.
        let b = c.find("b").unwrap();
        let bi = exp
            .nodes
            .iter()
            .position(|&en| en.node == b && en.weight == 1)
            .unwrap();
        assert!(exp.is_leaf[bi]);
        assert!(exp.fanins(bi).is_empty());
        let a = c.find("a").unwrap();
        assert!(!exp.nodes.iter().any(|&en| en.node == a && en.weight == 1));
    }

    #[test]
    fn reconvergence_merges_same_weight() {
        // Diamond with no registers: u appears once as u^0.
        let mut c = Circuit::new("t");
        let i = c.add_input("i").unwrap();
        let u = c.add_gate("u", TruthTable::not()).unwrap();
        let p = c.add_gate("p", TruthTable::not()).unwrap();
        let q = c.add_gate("q", TruthTable::buf()).unwrap();
        let m = c.add_gate("m", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i, u, vec![]).unwrap();
        c.connect(u, p, vec![]).unwrap();
        c.connect(u, q, vec![]).unwrap();
        c.connect(p, m, vec![]).unwrap();
        c.connect(q, m, vec![]).unwrap();
        c.connect(m, o, vec![]).unwrap();
        let exp = ExpandedCircuit::build(&c, m, 4, 10_000).unwrap();
        let u_nodes = exp.nodes.iter().filter(|en| en.node == u).count();
        assert_eq!(u_nodes, 1);
    }

    #[test]
    fn register_loop_unrolls_up_to_bound() {
        // Self-loop with one FF: g^0, g^1, ..., g^{bound}, g^{bound+1} leaf.
        let mut c = Circuit::new("t");
        let i = c.add_input("i").unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(i, g, vec![]).unwrap();
        c.connect(g, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let exp = ExpandedCircuit::build(&c, g, 3, 10_000).unwrap();
        let g_weights: Vec<u64> = exp
            .nodes
            .iter()
            .filter(|en| en.node == g)
            .map(|en| en.weight)
            .collect();
        assert_eq!(g_weights.len(), 5); // weights 0..=4, weight 4 is a leaf
        assert!(g_weights.contains(&4));
    }

    #[test]
    fn node_cap_returns_none() {
        let c = fig3_circuit();
        let cc = c.find("c").unwrap();
        assert!(ExpandedCircuit::build(&c, cc, 2, 3).is_none());
    }

    #[test]
    fn every_root_path_has_exactly_w_registers() {
        // Property from the paper: check by enumeration on fig3.
        let c = fig3_circuit();
        let cc = c.find("c").unwrap();
        let exp = ExpandedCircuit::build(&c, cc, 3, 10_000).unwrap();
        // DFS all paths from each node to the root, counting weights via
        // the weight difference: child.weight - parent.weight is the edge
        // register count, so path weight = node.weight - root.weight.
        for (i, en) in exp.nodes.iter().enumerate() {
            let _ = i;
            assert!(en.weight <= 4);
        }
        // (The invariant holds by construction: weight is part of the key.)
    }
}
