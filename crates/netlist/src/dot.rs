//! Graphviz DOT export for retiming graphs.
//!
//! Registers are rendered as labelled boxes on the edges (with their
//! initial values), matching the paper's figures, so small circuits —
//! the Figure 1–4 examples in particular — can be inspected visually:
//!
//! ```bash
//! cargo run --release -p tmfrt -- gen:dk17 -a turbomap-frt -o /tmp/m.blif
//! # then render /tmp/m.dot with `dot -Tsvg`
//! ```

use crate::bit::Bit;
use crate::circuit::{Circuit, NodeKind};
use std::fmt::Write;

/// Renders the circuit as Graphviz DOT text.
///
/// PIs are rendered as triangles, POs as inverted houses, gates as boxes
/// labelled with their name and function; an edge with registers shows
/// `w:values` on the label.
pub fn to_dot(c: &Circuit) -> String {
    let mut s = String::new();
    writeln!(s, "digraph \"{}\" {{", escape(c.name())).ok();
    writeln!(s, "  rankdir=LR;").ok();
    for v in c.node_ids() {
        let node = c.node(v);
        let (shape, label) = match node.kind() {
            NodeKind::Input => ("triangle", node.name().to_string()),
            NodeKind::Output => ("house", node.name().to_string()),
            NodeKind::Gate(tt) => ("box", format!("{}\\n{}", node.name(), tt)),
        };
        writeln!(
            s,
            "  n{} [shape={shape}, label=\"{}\"];",
            v.index(),
            escape(&label)
        )
        .ok();
    }
    for e in c.edge_ids() {
        let edge = c.edge(e);
        if edge.weight() == 0 {
            writeln!(s, "  n{} -> n{};", edge.from().index(), edge.to().index()).ok();
        } else {
            let vals: String = edge
                .ffs()
                .iter()
                .map(|b| match b {
                    Bit::Zero => '0',
                    Bit::One => '1',
                    Bit::X => 'x',
                })
                .collect();
            writeln!(
                s,
                "  n{} -> n{} [label=\"{}:{}\", style=bold];",
                edge.from().index(),
                edge.to().index(),
                edge.weight(),
                vals
            )
            .ok();
        }
    }
    writeln!(s, "}}").ok();
    s
}

fn escape(t: &str) -> String {
    t.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    #[test]
    fn renders_nodes_and_registered_edges() {
        let mut c = Circuit::new("dot");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One, Bit::X]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let dot = to_dot(&c);
        assert!(dot.contains("digraph \"dot\""));
        assert!(dot.contains("shape=triangle"));
        assert!(dot.contains("shape=house"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("label=\"2:1x\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn escapes_quotes() {
        let c = Circuit::new("we\"ird");
        let dot = to_dot(&c);
        assert!(dot.contains("we\\\"ird"));
    }
}
