//! Technology decomposition: bounding gate fanin before LUT mapping.
//!
//! FlowMap and TurboMap both require a K-bounded input network (every gate
//! fanin ≤ K), like SIS's `xl_split`/tech-decomposition step before mapping.
//! [`decompose_to_k`] rebuilds a circuit so that every gate has fanin at
//! most `k`:
//!
//! * associative gates (AND/OR/XOR and their complements) become balanced
//!   k-ary trees;
//! * arbitrary functions are split by Shannon expansion into multiplexers
//!   of recursively decomposed cofactors (with redundant inputs pruned
//!   first).
//!
//! FF chains on the original fanin edges ride along to the tree leaves, so
//! the decomposed circuit is sequentially equivalent to the original.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::truth::TruthTable;

/// How a decomposed gate's fanin tree references its operands.
#[derive(Debug, Clone)]
enum Expr {
    /// Original fanin pin of the gate being decomposed.
    Pin(usize),
    /// An internal gate over sub-expressions.
    Op(TruthTable, Vec<Expr>),
}

/// Builds a balanced k-ary tree of `ctor`-gates over `operands`.
fn assoc_tree(ctor: fn(usize) -> TruthTable, operands: Vec<Expr>, k: usize) -> Expr {
    if operands.len() == 1 {
        return operands.into_iter().next().expect("non-empty");
    }
    if operands.len() <= k {
        let n = operands.len();
        return Expr::Op(ctor(n), operands);
    }
    // Chunk into groups of at most k, recurse on the group results.
    let group_count = operands.len().div_ceil(k);
    let per = operands.len().div_ceil(group_count);
    let mut groups = Vec::new();
    let mut it = operands.into_iter().peekable();
    while it.peek().is_some() {
        let chunk: Vec<Expr> = it.by_ref().take(per).collect();
        groups.push(assoc_tree(ctor, chunk, k));
    }
    assoc_tree(ctor, groups, k)
}

/// Decomposes `tt` over the given operand expressions into gates of fanin
/// ≤ `k`.
fn build_expr(tt: &TruthTable, operands: Vec<Expr>, k: usize) -> Expr {
    let n = tt.num_inputs();
    debug_assert_eq!(n, operands.len());
    if n <= k {
        return Expr::Op(tt.clone(), operands);
    }
    // Prune redundant inputs first: Shannon splits can create them and they
    // inflate the recursion exponentially if kept.
    for i in (0..n).rev() {
        if tt.input_is_redundant(i) {
            let reduced = tt.cofactor(i, false);
            let mut ops = operands;
            ops.remove(i);
            return build_expr(&reduced, ops, k);
        }
    }
    // Recognise associative patterns (optionally complemented at the root).
    type Pattern = (fn(usize) -> TruthTable, fn(usize) -> TruthTable, bool);
    let patterns: [Pattern; 6] = [
        (TruthTable::and, TruthTable::and, false),
        (TruthTable::or, TruthTable::or, false),
        (TruthTable::xor, TruthTable::xor, false),
        (TruthTable::nand, TruthTable::and, true),
        (TruthTable::nor, TruthTable::or, true),
        (xnor, TruthTable::xor, true),
    ];
    for (pattern, base, invert) in patterns {
        if *tt == pattern(n) {
            let tree = assoc_tree(base, operands, k);
            return if invert {
                Expr::Op(TruthTable::not(), vec![tree])
            } else {
                tree
            };
        }
    }
    // Shannon expansion on the last input.
    let i = n - 1;
    let f0 = tt.cofactor(i, false);
    let f1 = tt.cofactor(i, true);
    let sel = operands[i].clone();
    let mut rest = operands;
    rest.pop();
    let a = build_expr(&f0, rest.clone(), k);
    let b = build_expr(&f1, rest, k);
    if k >= 3 {
        Expr::Op(TruthTable::mux(), vec![sel, a, b])
    } else {
        // mux = (¬sel ∧ a) ∨ (sel ∧ b) out of 2-input gates.
        let nsel = Expr::Op(TruthTable::not(), vec![sel.clone()]);
        let t0 = Expr::Op(TruthTable::and(2), vec![nsel, a]);
        let t1 = Expr::Op(TruthTable::and(2), vec![sel, b]);
        Expr::Op(TruthTable::or(2), vec![t0, t1])
    }
}

fn xnor(k: usize) -> TruthTable {
    TruthTable::from_fn(k, |r| r.count_ones() % 2 == 0)
}

/// Operand reference used while wiring the rebuilt circuit.
#[derive(Debug, Clone, Copy)]
enum ChildRef {
    /// Freshly created internal gate.
    New(NodeId),
    /// Fanin pin `pin` of original gate `gate` (carries that edge's FFs).
    OrigPin(NodeId, usize),
}

/// Rebuilds `c` with every gate fanin bounded by `k`.
///
/// Node names are preserved; internal tree gates are named
/// `<gate>~d<counter>`. The result is sequentially equivalent to the input.
///
/// # Errors
///
/// Propagates construction errors (none are expected for valid inputs).
///
/// # Panics
///
/// Panics if `k < 2`.
///
/// # Examples
///
/// ```
/// use netlist::{decompose_to_k, Circuit, TruthTable};
/// let mut c = Circuit::new("wide");
/// let pins: Vec<_> = (0..6)
///     .map(|i| c.add_input(format!("i{i}")).unwrap())
///     .collect();
/// let g = c.add_gate("g", TruthTable::and(6)).unwrap();
/// let o = c.add_output("o").unwrap();
/// for &p in &pins {
///     c.connect(p, g, vec![]).unwrap();
/// }
/// c.connect(g, o, vec![]).unwrap();
/// let d = decompose_to_k(&c, 2).unwrap();
/// assert!(d.max_fanin() <= 2);
/// ```
pub fn decompose_to_k(c: &Circuit, k: usize) -> Result<Circuit, NetlistError> {
    assert!(k >= 2, "decomposition requires k >= 2");
    let mut out = Circuit::new(c.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; c.num_nodes()];
    let mut pending: Vec<(NodeId, Vec<ChildRef>)> = Vec::new();
    let mut counter = 0usize;

    // Pass 1: create nodes.
    for v in c.node_ids() {
        let node = c.node(v);
        match node.kind() {
            crate::circuit::NodeKind::Input => {
                map[v.index()] = Some(out.add_input(node.name().to_string())?);
            }
            crate::circuit::NodeKind::Output => {
                map[v.index()] = Some(out.add_output(node.name().to_string())?);
            }
            crate::circuit::NodeKind::Gate(tt) => {
                if tt.num_inputs() <= k {
                    let id = out.add_gate(node.name().to_string(), tt.clone())?;
                    map[v.index()] = Some(id);
                    pending.push((
                        id,
                        (0..node.fanin().len())
                            .map(|p| ChildRef::OrigPin(v, p))
                            .collect(),
                    ));
                } else {
                    let operands: Vec<Expr> = (0..tt.num_inputs()).map(Expr::Pin).collect();
                    let expr = build_expr(tt, operands, k);
                    let root = instantiate(
                        &mut out,
                        &mut pending,
                        &mut counter,
                        node.name(),
                        &expr,
                        v,
                        true,
                    )?;
                    map[v.index()] = Some(root);
                }
            }
        }
    }
    // Pass 2: wire pins.
    for (gate, children) in pending {
        for child in children {
            match child {
                ChildRef::New(src) => {
                    out.connect(src, gate, vec![])?;
                }
                ChildRef::OrigPin(orig_gate, pin) => {
                    let e = c.node(orig_gate).fanin()[pin];
                    let edge = c.edge(e);
                    let src = map[edge.from().index()].expect("driver created in pass 1");
                    out.connect(src, gate, edge.ffs().to_vec())?;
                }
            }
        }
    }
    // Primary outputs.
    for &po in c.outputs() {
        let e = c.node(po).fanin()[0];
        let edge = c.edge(e);
        let src = map[edge.from().index()].expect("driver created");
        let new_po = map[po.index()].expect("PO created");
        out.connect(src, new_po, edge.ffs().to_vec())?;
    }
    Ok(out)
}

/// Creates the gate nodes of `expr`, returning the root. The root (and only
/// the root) keeps the original gate's name when `is_root`.
fn instantiate(
    out: &mut Circuit,
    pending: &mut Vec<(NodeId, Vec<ChildRef>)>,
    counter: &mut usize,
    base_name: &str,
    expr: &Expr,
    orig_gate: NodeId,
    is_root: bool,
) -> Result<NodeId, NetlistError> {
    match expr {
        Expr::Pin(_) => unreachable!("a bare pin cannot be a gate root; wrapped by build_expr"),
        Expr::Op(tt, children) => {
            let name = if is_root {
                base_name.to_string()
            } else {
                *counter += 1;
                format!("{base_name}~d{counter}")
            };
            let id = out.add_gate(name, tt.clone())?;
            let mut refs = Vec::with_capacity(children.len());
            for ch in children {
                match ch {
                    Expr::Pin(p) => refs.push(ChildRef::OrigPin(orig_gate, *p)),
                    op => {
                        let sub =
                            instantiate(out, pending, counter, base_name, op, orig_gate, false)?;
                        refs.push(ChildRef::New(sub));
                    }
                }
            }
            pending.push((id, refs));
            Ok(id)
        }
    }
}

/// Statistics helper: true when `c` is already k-bounded.
pub fn is_k_bounded(c: &Circuit, k: usize) -> bool {
    c.max_fanin() <= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::equiv::{exhaustive_equiv, random_equiv};

    fn wide_gate_circuit(tt: TruthTable, with_ffs: bool) -> Circuit {
        let n = tt.num_inputs();
        let mut c = Circuit::new("wide");
        let pins: Vec<NodeId> = (0..n)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g = c.add_gate("g", tt).unwrap();
        let o = c.add_output("o").unwrap();
        for (i, &p) in pins.iter().enumerate() {
            let ffs = if with_ffs && i % 2 == 0 {
                vec![Bit::from_bool(i % 4 == 0)]
            } else {
                vec![]
            };
            c.connect(p, g, ffs).unwrap();
        }
        c.connect(g, o, vec![]).unwrap();
        c
    }

    #[test]
    fn and_tree_equivalent() {
        let c = wide_gate_circuit(TruthTable::and(5), false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert!(d.max_fanin() <= 2);
        assert!(exhaustive_equiv(&c, &d, 2).unwrap().is_equivalent());
    }

    #[test]
    fn or_nand_nor_xor_trees() {
        for tt in [
            TruthTable::or(6),
            TruthTable::nand(5),
            TruthTable::nor(4),
            TruthTable::xor(5),
        ] {
            let c = wide_gate_circuit(tt.clone(), false);
            let d = decompose_to_k(&c, 2).unwrap();
            assert!(d.max_fanin() <= 2, "{tt}");
            assert!(
                random_equiv(&c, &d, 64, 11).unwrap().is_equivalent(),
                "{tt}"
            );
        }
    }

    #[test]
    fn xnor_detected() {
        let xn = TruthTable::from_fn(4, |r| r.count_ones() % 2 == 0);
        let c = wide_gate_circuit(xn, false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert!(d.max_fanin() <= 2);
        assert!(random_equiv(&c, &d, 64, 3).unwrap().is_equivalent());
    }

    #[test]
    fn random_function_shannon() {
        let tt = TruthTable::from_fn(5, |r| (r * 2654435761usize) & 8 != 0);
        let c = wide_gate_circuit(tt, false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert!(d.max_fanin() <= 2);
        assert!(random_equiv(&c, &d, 128, 9).unwrap().is_equivalent());
    }

    #[test]
    fn k3_uses_mux_directly() {
        let tt = TruthTable::from_fn(5, |r| (r * 0x9E3779B9usize) & 16 != 0);
        let c = wide_gate_circuit(tt, false);
        let d = decompose_to_k(&c, 3).unwrap();
        assert!(d.max_fanin() <= 3);
        assert!(random_equiv(&c, &d, 128, 13).unwrap().is_equivalent());
    }

    #[test]
    fn ffs_preserved_on_leaves() {
        let c = wide_gate_circuit(TruthTable::and(5), true);
        let d = decompose_to_k(&c, 2).unwrap();
        assert_eq!(c.ff_count_total(), d.ff_count_total());
        assert!(random_equiv(&c, &d, 64, 21).unwrap().is_equivalent());
    }

    #[test]
    fn small_gates_untouched() {
        let c = wide_gate_circuit(TruthTable::and(2), false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert_eq!(d.num_gates(), c.num_gates());
        assert!(d.find("g").is_some());
    }

    #[test]
    fn names_preserved_for_roots() {
        let c = wide_gate_circuit(TruthTable::and(7), false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert!(d.find("g").is_some());
        assert!(d.find("i3").is_some());
        assert!(d.find("o").is_some());
    }

    #[test]
    fn redundant_input_pruned() {
        // 5-input function ignoring inputs 3 and 4.
        let tt = TruthTable::from_fn(5, |r| (r & 0b111) == 0b101);
        let c = wide_gate_circuit(tt, false);
        let d = decompose_to_k(&c, 2).unwrap();
        assert!(d.max_fanin() <= 2);
        assert!(random_equiv(&c, &d, 64, 2).unwrap().is_equivalent());
    }
}
