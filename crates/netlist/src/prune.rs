//! Dead logic removal.
//!
//! Gates with no path to any primary output cannot influence observable
//! behaviour; mapping algorithms skip them and the final LUT networks drop
//! them, so [`prune_dead`] removes them up front to keep "input gates" and
//! "output LUTs" comparable and to spare the label computations from
//! autonomous register loops in dead regions.

use crate::circuit::{Circuit, NodeId, NodeKind};
use crate::error::NetlistError;

/// Rebuilds `c` without gates that reach no primary output. PIs are always
/// kept (they are the interface).
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs).
pub fn prune_dead(c: &Circuit) -> Result<Circuit, NetlistError> {
    let n = c.num_nodes();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = c.outputs().iter().map(|v| v.index()).collect();
    for &s in &stack {
        live[s] = true;
    }
    while let Some(u) = stack.pop() {
        for &e in c.node(NodeId(u as u32)).fanin() {
            let f = c.edge(e).from().index();
            if !live[f] {
                live[f] = true;
                stack.push(f);
            }
        }
    }
    let mut out = Circuit::new(c.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    for v in c.node_ids() {
        let node = c.node(v);
        match node.kind() {
            NodeKind::Input => {
                map[v.index()] = Some(out.add_input(node.name().to_string())?);
            }
            NodeKind::Output => {
                map[v.index()] = Some(out.add_output(node.name().to_string())?);
            }
            NodeKind::Gate(tt) => {
                if live[v.index()] {
                    map[v.index()] = Some(out.add_gate(node.name().to_string(), tt.clone())?);
                }
            }
        }
    }
    for e in c.edge_ids() {
        let edge = c.edge(e);
        if let (Some(src), Some(dst)) = (map[edge.from().index()], map[edge.to().index()]) {
            out.connect(src, dst, edge.ffs().to_vec())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::truth::TruthTable;

    #[test]
    fn removes_dead_cycle_keeps_live() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        // Dead: a 2-gate register loop hanging off `a`.
        let d1 = c.add_gate("d1", TruthTable::and(2)).unwrap();
        let d2 = c.add_gate("d2", TruthTable::not()).unwrap();
        c.connect(a, d1, vec![]).unwrap();
        c.connect(d2, d1, vec![]).unwrap();
        c.connect(d1, d2, vec![Bit::Zero]).unwrap();
        let pruned = prune_dead(&c).unwrap();
        assert_eq!(pruned.num_gates(), 1);
        assert!(pruned.find("g").is_some());
        assert!(pruned.find("d1").is_none());
        assert!(crate::equiv::exhaustive_equiv(&c, &pruned, 4)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn noop_on_fully_live_circuit() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let pruned = prune_dead(&c).unwrap();
        assert_eq!(pruned.num_gates(), c.num_gates());
        assert_eq!(pruned.ff_count_total(), c.ff_count_total());
    }

    #[test]
    fn keeps_unused_inputs() {
        let mut c = Circuit::new("t");
        c.add_input("unused").unwrap();
        let b = c.add_input("b").unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(b, o, vec![]).unwrap();
        let pruned = prune_dead(&c).unwrap();
        assert_eq!(pruned.inputs().len(), 2);
    }
}
