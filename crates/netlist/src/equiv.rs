//! Sequential equivalence checking by simulation.
//!
//! The paper verifies mapped circuits with SIS `verify_fsm`, falling back to
//! "simulations with input sequences of 3008 random vectors" for the largest
//! designs. We provide both flavours as our own substrate:
//!
//! * [`random_equiv`] — drive both circuits with the same random input
//!   sequence and compare output sequences (the 3008-vector protocol).
//! * [`exhaustive_equiv`] — enumerate *all* input sequences up to a given
//!   depth (product-machine unrolling by brute force); exact for small
//!   circuits and used heavily in the test suite.
//!
//! Comparison defaults to **conformance**: wherever the reference output is
//! defined (`0`/`1`), the candidate must match; where the reference is `X`
//! the candidate may output anything. A retimed/mapped circuit with a
//! correctly computed initial state conforms to its original. The weaker
//! [`EquivMode::Compatibility`] additionally forgives a candidate `X`
//! against a defined reference — the right relation when the candidate's
//! initial state was *derived* by pessimistic 3-valued forward simulation
//! and may legitimately be less defined than the source.

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::sim::Simulator;
use crate::vsim::{Planes, VecSimulator, LANES};
use engine::rng::Rng64;

/// How two output bits are compared by the equivalence checkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivMode {
    /// Candidate must refine the reference: defined reference bits must
    /// match exactly; a reference `X` permits anything. This is the check
    /// for a mapper that claims to preserve the exact initial behaviour.
    #[default]
    Conformance,
    /// Bits must be [`Bit::compatible`]: `X` on **either** side permits the
    /// other, only conflicting defined bits miscompare. This is the check
    /// for forward-retimed results whose computed initial state may be
    /// pessimistically `X` where the source was defined (Touati–Brayton
    /// forward simulation loses information, never inverts it).
    Compatibility,
}

impl EquivMode {
    /// True when `actual` is acceptable against `expected` under this mode.
    #[inline]
    pub fn accepts(self, expected: Bit, actual: Bit) -> bool {
        match self {
            EquivMode::Conformance => actual.refines(expected),
            EquivMode::Compatibility => actual.compatible(expected),
        }
    }

    /// Lane mask of comparison violations between two 64-wide output
    /// words: bit `l` is set iff `!self.accepts(expected[l], actual[l])`.
    ///
    /// Conformance rejects a lane where the expected value is defined and
    /// the actual value is not that exact defined value; compatibility
    /// rejects only conflicting defined values.
    #[inline]
    pub fn violations(self, expected: Planes, actual: Planes) -> u64 {
        let e1 = expected.p1 & !expected.p0; // expected definitely 1
        let e0 = expected.p0 & !expected.p1; // expected definitely 0
        let a1 = actual.p1 & !actual.p0;
        let a0 = actual.p0 & !actual.p1;
        match self {
            EquivMode::Conformance => (e1 & !a1) | (e0 & !a0),
            EquivMode::Compatibility => (e1 & a0) | (e0 & a1),
        }
    }
}

/// A concrete distinguishing input sequence found by an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// The driving input sequence (one vector per cycle, PI order of the
    /// reference circuit).
    pub inputs: Vec<Vec<Bit>>,
    /// Zero-based cycle at which the outputs diverged.
    pub cycle: usize,
    /// Name of the diverging output.
    pub output: String,
    /// Reference circuit's value.
    pub expected: Bit,
    /// Candidate circuit's value.
    pub actual: Bit,
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No difference found (up to the search bound).
    Equivalent,
    /// The circuits differ; here is a witness.
    Different(Box<CounterExample>),
}

impl EquivResult {
    /// True for [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

fn check_interfaces(reference: &Circuit, candidate: &Circuit) -> Result<(), NetlistError> {
    let ref_pis: Vec<&str> = reference
        .inputs()
        .iter()
        .map(|&v| reference.node(v).name())
        .collect();
    let cand_pis: Vec<&str> = candidate
        .inputs()
        .iter()
        .map(|&v| candidate.node(v).name())
        .collect();
    if ref_pis != cand_pis {
        return Err(NetlistError::InterfaceMismatch(format!(
            "PI lists differ: {ref_pis:?} vs {cand_pis:?}"
        )));
    }
    let ref_pos: Vec<&str> = reference
        .outputs()
        .iter()
        .map(|&v| reference.node(v).name())
        .collect();
    let cand_pos: Vec<&str> = candidate
        .outputs()
        .iter()
        .map(|&v| candidate.node(v).name())
        .collect();
    if ref_pos != cand_pos {
        return Err(NetlistError::InterfaceMismatch(format!(
            "PO lists differ: {ref_pos:?} vs {cand_pos:?}"
        )));
    }
    Ok(())
}

/// Drives both circuits with `sequence` and reports the first conformance
/// violation.
///
/// # Errors
///
/// Returns [`NetlistError::InterfaceMismatch`] when PI/PO names differ and
/// [`NetlistError::CombinationalCycle`] when either circuit cannot be
/// simulated.
pub fn sequence_equiv(
    reference: &Circuit,
    candidate: &Circuit,
    sequence: &[Vec<Bit>],
) -> Result<EquivResult, NetlistError> {
    sequence_equiv_mode(reference, candidate, sequence, EquivMode::Conformance)
}

/// [`sequence_equiv`] with an explicit comparison [`EquivMode`].
///
/// # Errors
///
/// Same as [`sequence_equiv`].
pub fn sequence_equiv_mode(
    reference: &Circuit,
    candidate: &Circuit,
    sequence: &[Vec<Bit>],
    mode: EquivMode,
) -> Result<EquivResult, NetlistError> {
    check_interfaces(reference, candidate)?;
    let mut ref_sim = Simulator::new(reference)?;
    let mut cand_sim = Simulator::new(candidate)?;
    for (cycle, inputs) in sequence.iter().enumerate() {
        let ref_out = ref_sim.step(inputs)?;
        let cand_out = cand_sim.step(inputs)?;
        for (po_idx, (&e, &a)) in ref_out.iter().zip(cand_out.iter()).enumerate() {
            if !mode.accepts(e, a) {
                return Ok(EquivResult::Different(Box::new(CounterExample {
                    inputs: sequence[..=cycle].to_vec(),
                    cycle,
                    output: reference
                        .node(reference.outputs()[po_idx])
                        .name()
                        .to_string(),
                    expected: e,
                    actual: a,
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// A reproducible sequence of `num_vectors` uniformly random *defined*
/// input vectors of width `num_inputs`, generated from `seed` on the
/// workspace-wide [`engine::rng::Rng64`] (splitmix64) — the same generator
/// the workloads and fuzzing subsystems use, so one seed reproduces an
/// entire run.
pub fn random_sequence(num_inputs: usize, num_vectors: usize, seed: u64) -> Vec<Vec<Bit>> {
    let mut rng = Rng64::new(seed);
    (0..num_vectors)
        .map(|_| {
            (0..num_inputs)
                .map(|_| Bit::from_bool(rng.next_u64() & 1 == 1))
                .collect()
        })
        .collect()
}

/// Random-simulation equivalence: `num_vectors` cycles of uniformly random
/// defined inputs generated from `seed` via [`random_sequence`]
/// (splitmix64; self-contained so results are reproducible across
/// platforms).
///
/// # Errors
///
/// Same as [`sequence_equiv`].
pub fn random_equiv(
    reference: &Circuit,
    candidate: &Circuit,
    num_vectors: usize,
    seed: u64,
) -> Result<EquivResult, NetlistError> {
    random_equiv_mode(
        reference,
        candidate,
        num_vectors,
        seed,
        EquivMode::Conformance,
    )
}

/// [`random_equiv`] with an explicit comparison [`EquivMode`], running on
/// the [two-bitplane vector simulator](crate::vsim).
///
/// The `num_vectors` budget is spread over [`LANES`] **independent**
/// random sequences simulated simultaneously (64 vectors per word-op).
/// Each lane restarts from the initial state, so initial-state behaviour
/// is probed 64 times instead of once; sequence depth is kept at
/// `max(⌈num_vectors / 64⌉, min(num_vectors, 64))` cycles so deep FF
/// chains still flush. The reported counterexample is a single lane's
/// input prefix — replayable with [`sequence_equiv_mode`] on the scalar
/// simulator.
///
/// # Errors
///
/// Same as [`sequence_equiv`].
pub fn random_equiv_mode(
    reference: &Circuit,
    candidate: &Circuit,
    num_vectors: usize,
    seed: u64,
    mode: EquivMode,
) -> Result<EquivResult, NetlistError> {
    check_interfaces(reference, candidate)?;
    let m = reference.inputs().len();
    let cycles = num_vectors.div_ceil(LANES).max(num_vectors.min(LANES));
    // Per-lane seeds from one splitmix stream: lane l's sequence is
    // `random_sequence(m, cycles, lane_seeds[l])`, so a witness lane can
    // be regenerated and replayed scalar from `(seed, lane)` alone.
    let mut seeder = Rng64::new(seed);
    let lane_seeds: Vec<u64> = (0..LANES).map(|_| seeder.next_u64()).collect();
    let mut lane_rngs: Vec<Rng64> = lane_seeds.iter().map(|&s| Rng64::new(s)).collect();
    let mut ref_sim = VecSimulator::new(reference)?;
    let mut cand_sim = VecSimulator::new(candidate)?;
    let mut inputs = vec![Planes::splat(Bit::X); m];
    let mut history: Vec<Vec<Bit>> = Vec::with_capacity(cycles); // lane-major per cycle
    for cycle in 0..cycles {
        let mut cycle_bits = vec![Bit::Zero; LANES * m];
        for (l, rng) in lane_rngs.iter_mut().enumerate() {
            for i in 0..m {
                cycle_bits[l * m + i] = Bit::from_bool(rng.next_u64() & 1 == 1);
            }
        }
        for (i, planes) in inputs.iter_mut().enumerate() {
            let mut p1 = 0u64;
            for l in 0..LANES {
                if cycle_bits[l * m + i] == Bit::One {
                    p1 |= 1u64 << l;
                }
            }
            *planes = Planes { p0: !p1, p1 };
        }
        history.push(cycle_bits);
        let ref_out = ref_sim.step(&inputs)?;
        let cand_out = cand_sim.step(&inputs)?;
        for (po, (&e, &a)) in ref_out.iter().zip(cand_out.iter()).enumerate() {
            let viol = mode.violations(e, a);
            if viol != 0 {
                let l = viol.trailing_zeros() as usize;
                let inputs: Vec<Vec<Bit>> = history
                    .iter()
                    .map(|bits| bits[l * m..(l + 1) * m].to_vec())
                    .collect();
                return Ok(EquivResult::Different(Box::new(CounterExample {
                    inputs,
                    cycle,
                    output: reference.node(reference.outputs()[po]).name().to_string(),
                    expected: e.get(l),
                    actual: a.get(l),
                })));
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// The pre-vectorization 3008-vector protocol: **one** random sequence of
/// `num_vectors` cycles from [`random_sequence`], simulated bit-at-a-time
/// on the scalar [`Simulator`]. Retained as the differential oracle for
/// the vector engine (and for measuring the vectorization speedup); new
/// callers should prefer [`random_equiv_mode`].
///
/// # Errors
///
/// Same as [`sequence_equiv`].
pub fn random_equiv_scalar_mode(
    reference: &Circuit,
    candidate: &Circuit,
    num_vectors: usize,
    seed: u64,
    mode: EquivMode,
) -> Result<EquivResult, NetlistError> {
    let sequence = random_sequence(reference.inputs().len(), num_vectors, seed);
    sequence_equiv_mode(reference, candidate, &sequence, mode)
}

/// Maximum `log2` sequence count [`exhaustive_equiv`] will enumerate.
pub const EXHAUSTIVE_BITS_BOUND: usize = 22;

/// Exhaustive bounded equivalence: checks **every** defined input sequence
/// of length `depth`, batched 64 sequences at a time through the
/// [two-bitplane vector simulator](crate::vsim).
///
/// The search space is `2^(pis · depth)` sequences; the function refuses
/// when that exceeds `2^22` ([`EXHAUSTIVE_BITS_BOUND`]) to protect callers
/// from accidental blow-up. The counterexample is the numerically smallest
/// differing sequence at its earliest diverging cycle — identical to what
/// a sequence-by-sequence scalar scan would report.
///
/// # Errors
///
/// Same as [`sequence_equiv`], plus [`NetlistError::SearchSpaceTooLarge`]
/// when `pis · depth > 22`.
pub fn exhaustive_equiv(
    reference: &Circuit,
    candidate: &Circuit,
    depth: usize,
) -> Result<EquivResult, NetlistError> {
    check_interfaces(reference, candidate)?;
    let m = reference.inputs().len();
    let total_bits = m * depth;
    if total_bits > EXHAUSTIVE_BITS_BOUND {
        return Err(NetlistError::SearchSpaceTooLarge {
            bits: total_bits,
            bound: EXHAUSTIVE_BITS_BOUND,
        });
    }
    let combo_bit = |combo: u64, cyc: usize, i: usize| (combo >> (cyc * m + i)) & 1 == 1;
    let total = 1u64 << total_bits;
    let mut base = 0u64;
    let mut inputs = vec![Planes::splat(Bit::X); m];
    while base < total {
        let lanes = LANES.min((total - base) as usize);
        let mut ref_sim = VecSimulator::new(reference)?;
        let mut cand_sim = VecSimulator::new(candidate)?;
        // Per-lane first violation, encoded (cycle, po) — lanes are combo
        // order, so the lowest violating lane is the scalar-scan witness.
        let mut first: Vec<Option<(usize, usize)>> = vec![None; lanes];
        let mut pending = lanes;
        'batch: for cyc in 0..depth {
            for (i, planes) in inputs.iter_mut().enumerate() {
                let mut p1 = 0u64;
                for l in 0..lanes {
                    if combo_bit(base + l as u64, cyc, i) {
                        p1 |= 1u64 << l;
                    }
                }
                *planes = Planes { p0: !p1, p1 };
            }
            let ref_out = ref_sim.step(&inputs)?;
            let cand_out = cand_sim.step(&inputs)?;
            for (po, (&e, &a)) in ref_out.iter().zip(cand_out.iter()).enumerate() {
                let mut viol = EquivMode::Conformance.violations(e, a);
                while viol != 0 {
                    let l = viol.trailing_zeros() as usize;
                    viol &= viol - 1;
                    if l < lanes && first[l].is_none() {
                        first[l] = Some((cyc, po));
                        pending -= 1;
                    }
                }
            }
            if pending == 0 {
                break 'batch;
            }
        }
        if let Some((l, &Some((cycle, po)))) = first.iter().enumerate().find(|(_, f)| f.is_some()) {
            let combo = base + l as u64;
            let sequence: Vec<Vec<Bit>> = (0..=cycle)
                .map(|cyc| {
                    (0..m)
                        .map(|i| Bit::from_bool(combo_bit(combo, cyc, i)))
                        .collect()
                })
                .collect();
            // Replay the witness on the scalar simulator to report exact
            // expected/actual bits (and cross-check the vector engine).
            return match sequence_equiv(reference, candidate, &sequence)? {
                EquivResult::Different(ce) => Ok(EquivResult::Different(ce)),
                EquivResult::Equivalent => {
                    debug_assert!(false, "vector/scalar verdict disagreement");
                    Ok(EquivResult::Different(Box::new(CounterExample {
                        inputs: sequence,
                        cycle,
                        output: reference.node(reference.outputs()[po]).name().to_string(),
                        expected: Bit::X,
                        actual: Bit::X,
                    })))
                }
            };
        }
        base += lanes as u64;
    }
    Ok(EquivResult::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    fn inverter_circuit(name: &str, init: Bit) -> Circuit {
        let mut c = Circuit::new(name);
        let a = c.add_input("a").unwrap();
        let g = c.add_gate(format!("{name}_g"), TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![init]).unwrap();
        c
    }

    #[test]
    fn identical_circuits_equivalent() {
        let c1 = inverter_circuit("c1", Bit::Zero);
        let c2 = inverter_circuit("c2", Bit::Zero);
        assert!(random_equiv(&c1, &c2, 64, 7).unwrap().is_equivalent());
        assert!(exhaustive_equiv(&c1, &c2, 4).unwrap().is_equivalent());
    }

    #[test]
    fn different_initial_state_detected() {
        let c1 = inverter_circuit("c1", Bit::Zero);
        let c2 = inverter_circuit("c2", Bit::One);
        match exhaustive_equiv(&c1, &c2, 2).unwrap() {
            EquivResult::Different(ce) => {
                assert_eq!(ce.cycle, 0);
                assert_eq!(ce.output, "o");
            }
            EquivResult::Equivalent => panic!("should differ"),
        }
    }

    #[test]
    fn x_reference_allows_anything() {
        let c1 = inverter_circuit("c1", Bit::X);
        let c2 = inverter_circuit("c2", Bit::One);
        // Reference has X initial output; candidate's 1 conforms.
        assert!(exhaustive_equiv(&c1, &c2, 3).unwrap().is_equivalent());
        // The other direction does not conform at cycle 0.
        assert!(!exhaustive_equiv(&c2, &c1, 3).unwrap().is_equivalent());
    }

    #[test]
    fn interface_mismatch_reported() {
        let c1 = inverter_circuit("c1", Bit::Zero);
        let mut c2 = Circuit::new("c2");
        c2.add_input("b").unwrap();
        let g = c2.add_gate("g", TruthTable::not()).unwrap();
        let o = c2.add_output("o").unwrap();
        c2.connect(c2.find("b").unwrap(), g, vec![]).unwrap();
        c2.connect(g, o, vec![]).unwrap();
        assert!(matches!(
            random_equiv(&c1, &c2, 8, 1),
            Err(NetlistError::InterfaceMismatch(_))
        ));
    }

    #[test]
    fn functional_difference_found_by_random() {
        let mut c1 = Circuit::new("and");
        let a = c1.add_input("a").unwrap();
        let b = c1.add_input("b").unwrap();
        let g = c1.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c1.add_output("o").unwrap();
        c1.connect(a, g, vec![]).unwrap();
        c1.connect(b, g, vec![]).unwrap();
        c1.connect(g, o, vec![]).unwrap();

        let mut c2 = Circuit::new("or");
        let a = c2.add_input("a").unwrap();
        let b = c2.add_input("b").unwrap();
        let g = c2.add_gate("g", TruthTable::or(2)).unwrap();
        let o = c2.add_output("o").unwrap();
        c2.connect(a, g, vec![]).unwrap();
        c2.connect(b, g, vec![]).unwrap();
        c2.connect(g, o, vec![]).unwrap();

        assert!(!random_equiv(&c1, &c2, 64, 3).unwrap().is_equivalent());
    }

    #[test]
    fn random_sequence_is_reproducible_and_defined() {
        let a = random_sequence(3, 16, 42);
        let b = random_sequence(3, 16, 42);
        assert_eq!(a, b);
        assert_ne!(a, random_sequence(3, 16, 43));
        assert!(a.iter().flatten().all(|&bit| bit != Bit::X));
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|v| v.len() == 3));
    }

    #[test]
    fn compatibility_forgives_candidate_x() {
        // Candidate has an X initial FF where the reference is defined:
        // conformance rejects it, compatibility accepts it. This is the
        // exact situation after forward-retiming computes a pessimistic
        // initial state by 3-valued simulation.
        let reference = inverter_circuit("c1", Bit::Zero);
        let candidate = inverter_circuit("c2", Bit::X);
        assert!(!sequence_equiv_mode(
            &reference,
            &candidate,
            &random_sequence(1, 8, 1),
            EquivMode::Conformance,
        )
        .unwrap()
        .is_equivalent());
        assert!(
            random_equiv_mode(&reference, &candidate, 8, 1, EquivMode::Compatibility)
                .unwrap()
                .is_equivalent()
        );
    }

    #[test]
    fn compatibility_still_rejects_conflicting_concretes() {
        // X-vs-concrete is compatible in both directions, but two
        // *conflicting* defined initial values must still miscompare.
        let reference = inverter_circuit("c1", Bit::Zero);
        let candidate = inverter_circuit("c2", Bit::One);
        match random_equiv_mode(&reference, &candidate, 8, 1, EquivMode::Compatibility).unwrap() {
            EquivResult::Different(ce) => {
                assert_eq!(ce.cycle, 0);
                assert_eq!(ce.expected, Bit::Zero);
                assert_eq!(ce.actual, Bit::One);
            }
            EquivResult::Equivalent => panic!("conflicting concretes must miscompare"),
        }
    }

    #[test]
    fn equiv_mode_accepts_table() {
        use Bit::*;
        // Conformance: actual refines expected.
        for (e, a, ok) in [
            (Zero, Zero, true),
            (One, One, true),
            (X, Zero, true),
            (X, One, true),
            (X, X, true),
            (Zero, X, false),
            (One, X, false),
            (Zero, One, false),
        ] {
            assert_eq!(EquivMode::Conformance.accepts(e, a), ok, "conf {e:?} {a:?}");
        }
        // Compatibility: X on either side is fine, conflicts are not.
        for (e, a, ok) in [
            (Zero, X, true),
            (One, X, true),
            (X, One, true),
            (Zero, Zero, true),
            (Zero, One, false),
            (One, Zero, false),
        ] {
            assert_eq!(
                EquivMode::Compatibility.accepts(e, a),
                ok,
                "compat {e:?} {a:?}"
            );
        }
    }

    #[test]
    fn counterexample_replays() {
        let c1 = inverter_circuit("c1", Bit::Zero);
        let c2 = inverter_circuit("c2", Bit::One);
        if let EquivResult::Different(ce) = random_equiv(&c1, &c2, 16, 5).unwrap() {
            // Replaying the witness sequence must reproduce the divergence.
            let r = sequence_equiv(&c1, &c2, &ce.inputs).unwrap();
            assert!(!r.is_equivalent());
        } else {
            panic!("should differ");
        }
    }
}
