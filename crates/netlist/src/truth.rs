//! Truth tables: the logic function attached to every gate and LUT.
//!
//! A [`TruthTable`] over `k ≤ MAX_INPUTS` inputs stores its on-set as a
//! bitmap. Input `i` corresponds to bit `i` of the row index (input 0 is the
//! least significant bit). Besides plain evaluation it supports three-valued
//! evaluation (for simulation with partial initial states) and
//! **justification** — finding an input vector that produces a required
//! output, the primitive behind backward-retiming initial state computation.

use crate::bit::Bit;

/// Maximum supported truth table arity.
///
/// `2^16` rows (1 KiB of bitmap) is plenty: gates are decomposed to ≤ 2
/// inputs before mapping and LUTs have at most `K ≤ 8` inputs.
pub const MAX_INPUTS: usize = 16;

/// A complete Boolean function of `k` inputs, stored as its on-set bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_inputs: u8,
    /// Bit `r` of `words[r / 64]` is 1 iff row `r` is in the on-set.
    words: Vec<u64>,
}

impl TruthTable {
    fn word_count(num_inputs: usize) -> usize {
        let rows = 1usize << num_inputs;
        rows.div_ceil(64)
    }

    /// The constant-zero function of `num_inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > MAX_INPUTS`.
    pub fn const_zero(num_inputs: usize) -> TruthTable {
        assert!(num_inputs <= MAX_INPUTS, "too many truth table inputs");
        TruthTable {
            num_inputs: num_inputs as u8,
            words: vec![0; Self::word_count(num_inputs)],
        }
    }

    /// The constant-one function of `num_inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > MAX_INPUTS`.
    pub fn const_one(num_inputs: usize) -> TruthTable {
        let mut tt = Self::const_zero(num_inputs);
        let rows = 1usize << num_inputs;
        for r in 0..rows {
            tt.set(r, true);
        }
        tt
    }

    /// Builds a table from a row predicate.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > MAX_INPUTS`.
    ///
    /// # Examples
    ///
    /// ```
    /// use netlist::TruthTable;
    /// let maj = TruthTable::from_fn(3, |r| (r.count_ones() >= 2));
    /// assert!(maj.eval_row(0b011));
    /// assert!(!maj.eval_row(0b100));
    /// ```
    pub fn from_fn(num_inputs: usize, mut f: impl FnMut(usize) -> bool) -> TruthTable {
        let mut tt = Self::const_zero(num_inputs);
        for r in 0..(1usize << num_inputs) {
            if f(r) {
                tt.set(r, true);
            }
        }
        tt
    }

    /// The identity function of one input (a buffer).
    pub fn buf() -> TruthTable {
        Self::from_fn(1, |r| r == 1)
    }

    /// NOT of one input.
    pub fn not() -> TruthTable {
        Self::from_fn(1, |r| r == 0)
    }

    /// AND of `k` inputs.
    pub fn and(k: usize) -> TruthTable {
        Self::from_fn(k, |r| r == (1usize << k) - 1)
    }

    /// OR of `k` inputs.
    pub fn or(k: usize) -> TruthTable {
        Self::from_fn(k, |r| r != 0)
    }

    /// NAND of `k` inputs.
    pub fn nand(k: usize) -> TruthTable {
        Self::from_fn(k, |r| r != (1usize << k) - 1)
    }

    /// NOR of `k` inputs.
    pub fn nor(k: usize) -> TruthTable {
        Self::from_fn(k, |r| r == 0)
    }

    /// XOR (odd parity) of `k` inputs.
    pub fn xor(k: usize) -> TruthTable {
        Self::from_fn(k, |r| r.count_ones() % 2 == 1)
    }

    /// 2-to-1 multiplexer: inputs `(sel, a, b)`, output `a` when `sel = 0`,
    /// `b` when `sel = 1`.
    pub fn mux() -> TruthTable {
        Self::from_fn(3, |r| {
            let sel = r & 1 != 0;
            let a = r & 2 != 0;
            let b = r & 4 != 0;
            if sel {
                b
            } else {
                a
            }
        })
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Number of rows (`2^k`).
    pub fn num_rows(&self) -> usize {
        1usize << self.num_inputs
    }

    /// Sets row `r` of the on-set.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn set(&mut self, r: usize, value: bool) {
        assert!(r < self.num_rows(), "row out of range");
        if value {
            self.words[r / 64] |= 1u64 << (r % 64);
        } else {
            self.words[r / 64] &= !(1u64 << (r % 64));
        }
    }

    /// Evaluates row `r` (input `i` = bit `i` of `r`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn eval_row(&self, r: usize) -> bool {
        assert!(r < self.num_rows(), "row out of range");
        (self.words[r / 64] >> (r % 64)) & 1 == 1
    }

    /// Evaluates on a slice of concrete inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs(), "arity mismatch");
        let mut r = 0usize;
        for (i, &b) in inputs.iter().enumerate() {
            if b {
                r |= 1 << i;
            }
        }
        self.eval_row(r)
    }

    /// Three-valued evaluation: returns `0`/`1` if the output is the same
    /// for every completion of the `X` inputs, else `X`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval3(&self, inputs: &[Bit]) -> Bit {
        assert_eq!(inputs.len(), self.num_inputs(), "arity mismatch");
        let mut base = 0usize;
        let mut x_positions: Vec<usize> = Vec::new();
        for (i, &b) in inputs.iter().enumerate() {
            match b {
                Bit::One => base |= 1 << i,
                Bit::Zero => {}
                Bit::X => x_positions.push(i),
            }
        }
        let first = self.eval_row(base);
        // Enumerate all completions of the X inputs.
        let combos = 1usize << x_positions.len();
        for c in 1..combos {
            let mut r = base;
            for (j, &pos) in x_positions.iter().enumerate() {
                if (c >> j) & 1 == 1 {
                    r |= 1 << pos;
                }
            }
            if self.eval_row(r) != first {
                return Bit::X;
            }
        }
        Bit::from_bool(first)
    }

    /// Batched three-valued evaluation over 64 lanes at once.
    ///
    /// Each input is a two-bitplane word `(p0, p1)`: bit `l` of `p0` means
    /// lane `l` *could be 0*, bit `l` of `p1` means it *could be 1* (both
    /// set = `X`). The result uses the same encoding. Semantics match 64
    /// independent [`eval3`](Self::eval3) calls: a lane's output plane bit
    /// is set iff some completion of its `X` inputs reaches a row with
    /// that output value, so the output is defined exactly when every
    /// completion agrees.
    ///
    /// Cost is `O(2^k · k)` word operations — one minterm mask per row.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval3_planes(&self, inputs: &[(u64, u64)]) -> (u64, u64) {
        assert_eq!(inputs.len(), self.num_inputs(), "arity mismatch");
        let mut out0 = 0u64;
        let mut out1 = 0u64;
        for r in 0..self.num_rows() {
            // Lanes whose inputs are consistent with row assignment `r`.
            let mut consistent = !0u64;
            for (i, &(p0, p1)) in inputs.iter().enumerate() {
                consistent &= if (r >> i) & 1 == 1 { p1 } else { p0 };
                if consistent == 0 {
                    break;
                }
            }
            if consistent == 0 {
                continue;
            }
            if (self.words[r / 64] >> (r % 64)) & 1 == 1 {
                out1 |= consistent;
            } else {
                out0 |= consistent;
            }
        }
        (out0, out1)
    }

    /// Finds an input vector `j` with `f(j) = target`, maximising the number
    /// of `X` inputs greedily (an `X` is kept only if the output stays
    /// defined and equal to `target`).
    ///
    /// Returns `None` when `target` is not in the function's range. This is
    /// the core primitive of backward-retiming initial state justification.
    ///
    /// # Panics
    ///
    /// Panics if `target` is `X` (justifying an unknown is trivially all-X
    /// and callers should handle it directly).
    ///
    /// # Examples
    ///
    /// ```
    /// use netlist::{Bit, TruthTable};
    /// let and2 = TruthTable::and(2);
    /// assert_eq!(and2.justify(Bit::One), Some(vec![Bit::One, Bit::One]));
    /// let j0 = and2.justify(Bit::Zero).unwrap();
    /// assert_eq!(and2.eval3(&j0), Bit::Zero);
    /// assert!(j0.contains(&Bit::X)); // one input X'd out
    /// ```
    pub fn justify(&self, target: Bit) -> Option<Vec<Bit>> {
        let want = target
            .to_bool()
            .expect("cannot justify an X target; handle X at the call site");
        let row = (0..self.num_rows()).find(|&r| self.eval_row(r) == want)?;
        let mut assignment: Vec<Bit> = (0..self.num_inputs())
            .map(|i| Bit::from_bool((row >> i) & 1 == 1))
            .collect();
        // Greedily generalise inputs to X where the output stays defined.
        for i in 0..assignment.len() {
            let saved = assignment[i];
            assignment[i] = Bit::X;
            if self.eval3(&assignment) == target {
                continue;
            }
            assignment[i] = saved;
        }
        Some(assignment)
    }

    /// True when the function ignores input `i`.
    pub fn input_is_redundant(&self, i: usize) -> bool {
        assert!(i < self.num_inputs(), "input index out of range");
        let mask = 1usize << i;
        (0..self.num_rows())
            .filter(|r| r & mask == 0)
            .all(|r| self.eval_row(r) == self.eval_row(r | mask))
    }

    /// Returns the cofactor obtained by fixing input `i` to `value` (the
    /// result has one fewer input; remaining inputs keep their order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cofactor(&self, i: usize, value: bool) -> TruthTable {
        assert!(i < self.num_inputs(), "input index out of range");
        let k = self.num_inputs() - 1;
        TruthTable::from_fn(k, |r| {
            let low = r & ((1 << i) - 1);
            let high = (r >> i) << (i + 1);
            let mut full = low | high;
            if value {
                full |= 1 << i;
            }
            self.eval_row(full)
        })
    }

    /// True for the constant-zero or constant-one function.
    pub fn is_constant(&self) -> Option<bool> {
        let ones = self.count_ones();
        if ones == 0 {
            Some(false)
        } else if ones == self.num_rows() {
            Some(true)
        } else {
            None
        }
    }

    /// Number of on-set rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl std::fmt::Display for TruthTable {
    /// Hex on-set, most significant row first, e.g. `and(2)` is `tt2:8`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tt{}:", self.num_inputs)?;
        let rows = self.num_rows();
        let nibbles = rows.div_ceil(4).max(1);
        for n in (0..nibbles).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let r = n * 4 + b;
                if r < rows && self.eval_row(r) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{nib:x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_constructors() {
        assert!(TruthTable::and(3).eval(&[true, true, true]));
        assert!(!TruthTable::and(3).eval(&[true, false, true]));
        assert!(TruthTable::or(2).eval(&[false, true]));
        assert!(TruthTable::nand(2).eval(&[true, false]));
        assert!(TruthTable::nor(2).eval(&[false, false]));
        assert!(TruthTable::xor(2).eval(&[true, false]));
        assert!(!TruthTable::xor(2).eval(&[true, true]));
        assert!(TruthTable::not().eval(&[false]));
        assert!(TruthTable::buf().eval(&[true]));
    }

    #[test]
    fn mux_semantics() {
        let m = TruthTable::mux();
        // (sel, a, b)
        assert!(m.eval(&[false, true, false]));
        assert!(!m.eval(&[false, false, true]));
        assert!(m.eval(&[true, false, true]));
        assert!(!m.eval(&[true, true, false]));
    }

    #[test]
    fn eval3_controlling_input() {
        let and2 = TruthTable::and(2);
        assert_eq!(and2.eval3(&[Bit::Zero, Bit::X]), Bit::Zero);
        assert_eq!(and2.eval3(&[Bit::One, Bit::X]), Bit::X);
        let or2 = TruthTable::or(2);
        assert_eq!(or2.eval3(&[Bit::One, Bit::X]), Bit::One);
    }

    #[test]
    fn eval3_xor_redundancy() {
        // f = a XOR a-like: a function where an X input is actually
        // redundant must still evaluate defined.
        let f = TruthTable::from_fn(2, |r| r & 1 == 1); // ignores input 1
        assert_eq!(f.eval3(&[Bit::One, Bit::X]), Bit::One);
        assert_eq!(f.eval3(&[Bit::Zero, Bit::X]), Bit::Zero);
        assert!(f.input_is_redundant(1));
        assert!(!f.input_is_redundant(0));
    }

    #[test]
    fn justify_respects_target() {
        for tt in [
            TruthTable::and(3),
            TruthTable::or(3),
            TruthTable::xor(3),
            TruthTable::nand(2),
            TruthTable::mux(),
        ] {
            for target in [Bit::Zero, Bit::One] {
                let j = tt.justify(target).expect("non-constant function");
                assert_eq!(tt.eval3(&j), target, "{tt} target {target}");
            }
        }
    }

    #[test]
    fn justify_constant_range() {
        let zero = TruthTable::const_zero(2);
        assert_eq!(zero.justify(Bit::One), None);
        assert!(zero.justify(Bit::Zero).is_some());
        // Constant of arity 0.
        let one0 = TruthTable::const_one(0);
        assert_eq!(one0.justify(Bit::One), Some(vec![]));
        assert_eq!(one0.justify(Bit::Zero), None);
    }

    #[test]
    fn justify_generalises_with_x() {
        let or3 = TruthTable::or(3);
        let j = or3.justify(Bit::One).unwrap();
        // One input 1 is enough; the others should be X.
        assert_eq!(j.iter().filter(|&&b| b == Bit::X).count(), 2);
    }

    #[test]
    fn cofactor_shrinks_and_matches() {
        let m = TruthTable::mux();
        let sel0 = m.cofactor(0, false); // output = a, inputs now (a, b)
        assert!(sel0.eval(&[true, false]));
        assert!(!sel0.eval(&[false, true]));
        let sel1 = m.cofactor(0, true); // output = b
        assert!(sel1.eval(&[false, true]));
        assert!(!sel1.eval(&[true, false]));
    }

    #[test]
    fn constants_detected() {
        assert_eq!(TruthTable::const_zero(3).is_constant(), Some(false));
        assert_eq!(TruthTable::const_one(3).is_constant(), Some(true));
        assert_eq!(TruthTable::and(2).is_constant(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(TruthTable::and(2).to_string(), "tt2:8");
        assert_eq!(TruthTable::or(2).to_string(), "tt2:e");
        assert_eq!(TruthTable::const_one(0).to_string(), "tt0:1");
    }

    #[test]
    fn large_arity_words() {
        let tt = TruthTable::xor(10);
        assert_eq!(tt.num_rows(), 1024);
        assert_eq!(tt.count_ones(), 512);
        assert!(tt.eval_row(0b1));
        assert!(!tt.eval_row(0b11));
    }
}
