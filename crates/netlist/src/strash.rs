//! Structural hashing (logic sweep).
//!
//! Two gates computing the same function of the same fanin signals (node,
//! register count, register values) are behaviourally identical and can be
//! merged. Mapping-generated networks and synthetic benchmarks both
//! contain such duplicates; [`strash`] removes them in topological order
//! so that merges cascade (merging fanins exposes identical fanouts).
//! Primary outputs and names of surviving nodes are preserved.

use crate::bit::Bit;
use crate::circuit::{Circuit, NodeId, NodeKind};
use crate::error::NetlistError;
use std::collections::HashMap;

/// Result of a structural-hashing pass.
#[derive(Debug, Clone)]
pub struct StrashReport {
    /// The swept circuit.
    pub circuit: Circuit,
    /// Number of gates removed by merging.
    pub merged: usize,
}

/// One gate's structural signature: its function plus, per pin, the
/// (canonical driver, register chain) pair.
type Signature = (String, Vec<(u32, Vec<Bit>)>);

/// Merges structurally identical gates.
///
/// Gates whose function and fanin signals (driver after canonicalisation,
/// register count *and* initial values) coincide are collapsed onto one
/// representative; consumers are rewired. The result is sequentially
/// equivalent to the input.
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs) and
/// [`NetlistError::CombinationalCycle`] for unevaluable circuits.
pub fn strash(c: &Circuit) -> Result<StrashReport, NetlistError> {
    let order = c.comb_topo_order()?;
    // canonical[v] = the representative that v merges into (or v itself).
    let mut canonical: Vec<u32> = (0..c.num_nodes() as u32).collect();
    let mut seen: HashMap<Signature, u32> = HashMap::new();
    let mut merged = 0usize;
    for &v in &order {
        let node = c.node(v);
        let tt = match node.function() {
            Some(tt) => tt,
            None => continue,
        };
        let sig: Signature = (
            tt.to_string(),
            node.fanin()
                .iter()
                .map(|&e| {
                    let edge = c.edge(e);
                    (canonical[edge.from().index()], edge.ffs().to_vec())
                })
                .collect(),
        );
        match seen.get(&sig) {
            Some(&rep) => {
                canonical[v.index()] = rep;
                merged += 1;
            }
            None => {
                seen.insert(sig, v.0);
            }
        }
    }
    // Rebuild with only canonical nodes.
    let mut out = Circuit::new(c.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; c.num_nodes()];
    for v in c.node_ids() {
        if canonical[v.index()] != v.0 {
            continue; // merged away
        }
        let node = c.node(v);
        map[v.index()] = Some(match node.kind() {
            NodeKind::Input => out.add_input(node.name().to_string())?,
            NodeKind::Output => out.add_output(node.name().to_string())?,
            NodeKind::Gate(tt) => out.add_gate(node.name().to_string(), tt.clone())?,
        });
    }
    for v in c.node_ids() {
        if canonical[v.index()] != v.0 {
            continue;
        }
        for &e in c.node(v).fanin() {
            let edge = c.edge(e);
            let src_canon = canonical[edge.from().index()] as usize;
            let src = map[src_canon].expect("canonical nodes survive");
            out.connect(src, map[v.index()].expect("survives"), edge.ffs().to_vec())?;
        }
    }
    Ok(StrashReport {
        circuit: out,
        merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::exhaustive_equiv;
    use crate::truth::TruthTable;

    #[test]
    fn merges_identical_gates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(2)).unwrap();
        let x = c.add_gate("x", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(a, g2, vec![]).unwrap();
        c.connect(b, g2, vec![]).unwrap();
        c.connect(g1, x, vec![]).unwrap();
        c.connect(g2, x, vec![]).unwrap();
        c.connect(x, o, vec![]).unwrap();
        let r = strash(&c).unwrap();
        assert_eq!(r.merged, 1);
        assert_eq!(r.circuit.num_gates(), 2);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn merges_cascade() {
        // Two identical 2-gate chains: both levels merge.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        let n1 = c.add_gate("n1", TruthTable::not()).unwrap();
        let n2 = c.add_gate("n2", TruthTable::not()).unwrap();
        let m1 = c.add_gate("m1", TruthTable::not()).unwrap();
        let m2 = c.add_gate("m2", TruthTable::not()).unwrap();
        c.connect(a, n1, vec![]).unwrap();
        c.connect(n1, m1, vec![]).unwrap();
        c.connect(a, n2, vec![]).unwrap();
        c.connect(n2, m2, vec![]).unwrap();
        c.connect(m1, o1, vec![]).unwrap();
        c.connect(m2, o2, vec![]).unwrap();
        let r = strash(&c).unwrap();
        assert_eq!(r.merged, 2);
        assert_eq!(r.circuit.num_gates(), 2);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn register_values_block_merging() {
        // Same structure but different initial values: NOT mergeable.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![Bit::Zero]).unwrap();
        c.connect(a, g2, vec![Bit::One]).unwrap();
        c.connect(g1, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        let r = strash(&c).unwrap();
        assert_eq!(r.merged, 0);
        // Matching values DO merge.
        let mut c2 = Circuit::new("t2");
        let a = c2.add_input("a").unwrap();
        let g1 = c2.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c2.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = c2.add_output("o1").unwrap();
        let o2 = c2.add_output("o2").unwrap();
        c2.connect(a, g1, vec![Bit::Zero]).unwrap();
        c2.connect(a, g2, vec![Bit::Zero]).unwrap();
        c2.connect(g1, o1, vec![]).unwrap();
        c2.connect(g2, o2, vec![]).unwrap();
        let r2 = strash(&c2).unwrap();
        assert_eq!(r2.merged, 1);
        assert!(exhaustive_equiv(&c2, &r2.circuit, 3)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn pin_order_matters_for_asymmetric_functions() {
        // f(a, b) vs f(b, a) with an asymmetric function must not merge.
        let implies = TruthTable::from_fn(2, |r| (r & 1 == 0) || (r & 2 == 2));
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", implies.clone()).unwrap();
        let g2 = c.add_gate("g2", implies).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(b, g2, vec![]).unwrap();
        c.connect(a, g2, vec![]).unwrap();
        c.connect(g1, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        let r = strash(&c).unwrap();
        assert_eq!(r.merged, 0);
    }

    #[test]
    fn sweep_on_generated_mapping() {
        // Mapping generation duplicates logic; strash must keep the
        // result equivalent (and may shrink it).
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![Bit::One]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(b, g2, vec![]).unwrap();
        c.connect(g1, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        let mapped = turbomap_like(&c);
        let r = strash(&mapped).unwrap();
        assert!(crate::equiv::random_equiv(&c, &r.circuit, 256, 1)
            .unwrap()
            .is_equivalent());
    }

    /// Stand-in for a mapper inside netlist's tests: duplicate g1.
    fn turbomap_like(c: &Circuit) -> Circuit {
        let mut out = c.clone();
        let a = out.find("a").unwrap();
        let b = out.find("b").unwrap();
        let dup = out.add_gate("g1_dup", TruthTable::and(2)).unwrap();
        out.connect(a, dup, vec![Bit::One]).unwrap();
        out.connect(b, dup, vec![]).unwrap();
        // Rewire g3's first pin to the duplicate.
        let g3 = out.find("g3").unwrap();
        let e = out.node(g3).fanin()[0];
        out.rewire_from(e, dup).unwrap();
        out
    }
}
