//! Structural Verilog export.
//!
//! Mapped LUT networks are commonly handed to downstream FPGA tooling as
//! structural Verilog; [`to_verilog`] writes one module per circuit with
//!
//! * one `wire` per gate output,
//! * each gate as an `assign` in sum-of-products form derived from its
//!   truth table,
//! * each register chain as an `always @(posedge clk)` shift with an
//!   `initial` block carrying the defined initial values (X positions are
//!   left uninitialised).
//!
//! The export is for interchange and inspection; the BLIF path remains
//! the round-trip format.

use crate::bit::Bit;
use crate::circuit::Circuit;
use std::fmt::Write;

/// Renders the circuit as a structural Verilog module.
///
/// Identifiers are sanitised (`[^A-Za-z0-9_]` → `_`, prefixed when
/// starting with a digit) and uniquified; a `clk` port is added whenever
/// the circuit contains registers.
pub fn to_verilog(c: &Circuit) -> String {
    let mut names = Namer::default();
    let module = names.fresh(c.name());
    // Port and wire names per node.
    let node_name: Vec<String> = c
        .node_ids()
        .map(|v| names.fresh(c.node(v).name()))
        .collect();
    let has_regs = c.ff_count_total() > 0;

    let mut s = String::new();
    let mut ports: Vec<String> = Vec::new();
    if has_regs {
        ports.push("clk".into());
    }
    ports.extend(c.inputs().iter().map(|&v| node_name[v.index()].clone()));
    ports.extend(c.outputs().iter().map(|&v| node_name[v.index()].clone()));
    writeln!(s, "module {module}({});", ports.join(", ")).ok();
    if has_regs {
        writeln!(s, "  input clk;").ok();
    }
    for &v in c.inputs() {
        writeln!(s, "  input {};", node_name[v.index()]).ok();
    }
    for &v in c.outputs() {
        writeln!(s, "  output {};", node_name[v.index()]).ok();
    }

    // Register chains: one reg vector per edge with weight > 0.
    let mut reg_names: Vec<Option<String>> = vec![None; c.num_edges()];
    for e in c.edge_ids() {
        let edge = c.edge(e);
        let w = edge.weight();
        if w == 0 {
            continue;
        }
        let base = names.fresh(&format!(
            "{}_ff{}",
            node_name[edge.from().index()],
            e.index()
        ));
        writeln!(s, "  reg [{}:0] {base};", w - 1).ok();
        reg_names[e.index()] = Some(base);
    }
    for v in c.gate_ids() {
        writeln!(s, "  wire {};", node_name[v.index()]).ok();
    }

    // The signal arriving at a consumer pin.
    let pin_expr = |e: crate::circuit::EdgeId| -> String {
        let edge = c.edge(e);
        match &reg_names[e.index()] {
            Some(base) => format!("{base}[{}]", edge.weight() - 1),
            None => node_name[edge.from().index()].clone(),
        }
    };

    // Gates as sum-of-products assigns.
    for v in c.gate_ids() {
        let node = c.node(v);
        let tt = node.function().expect("gate");
        let pins: Vec<String> = node.fanin().iter().map(|&e| pin_expr(e)).collect();
        let expr = sop_expr(tt, &pins);
        writeln!(s, "  assign {} = {expr};", node_name[v.index()]).ok();
    }
    // Outputs.
    for &po in c.outputs() {
        let e = c.node(po).fanin()[0];
        writeln!(s, "  assign {} = {};", node_name[po.index()], pin_expr(e)).ok();
    }

    // Register behaviour + initial values.
    if has_regs {
        writeln!(s, "  initial begin").ok();
        for e in c.edge_ids() {
            if let Some(base) = &reg_names[e.index()] {
                for (i, &b) in c.edge(e).ffs().iter().enumerate() {
                    match b {
                        Bit::Zero => writeln!(s, "    {base}[{i}] = 1'b0;").ok(),
                        Bit::One => writeln!(s, "    {base}[{i}] = 1'b1;").ok(),
                        Bit::X => None, // left uninitialised
                    };
                }
            }
        }
        writeln!(s, "  end").ok();
        writeln!(s, "  always @(posedge clk) begin").ok();
        for e in c.edge_ids() {
            if let Some(base) = &reg_names[e.index()] {
                let edge = c.edge(e);
                let w = edge.weight();
                if w > 1 {
                    writeln!(
                        s,
                        "    {base} <= {{{base}[{}:0], {}}};",
                        w - 2,
                        node_name[edge.from().index()]
                    )
                    .ok();
                } else {
                    writeln!(s, "    {base}[0] <= {};", node_name[edge.from().index()]).ok();
                }
            }
        }
        writeln!(s, "  end").ok();
    }
    writeln!(s, "endmodule").ok();
    s
}

/// Sum-of-products expression for a truth table over named pins.
fn sop_expr(tt: &crate::truth::TruthTable, pins: &[String]) -> String {
    match tt.is_constant() {
        Some(false) => return "1'b0".into(),
        Some(true) => return "1'b1".into(),
        None => {}
    }
    let k = tt.num_inputs();
    let mut terms = Vec::new();
    for r in 0..tt.num_rows() {
        if !tt.eval_row(r) {
            continue;
        }
        let lits: Vec<String> = (0..k)
            .map(|i| {
                if (r >> i) & 1 == 1 {
                    pins[i].clone()
                } else {
                    format!("~{}", pins[i])
                }
            })
            .collect();
        terms.push(format!("({})", lits.join(" & ")));
    }
    terms.join(" | ")
}

/// Verilog-safe unique identifier allocation.
#[derive(Default)]
struct Namer {
    used: std::collections::HashSet<String>,
}

impl Namer {
    fn fresh(&mut self, raw: &str) -> String {
        let mut base: String = raw
            .chars()
            .map(|ch| {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    ch
                } else {
                    '_'
                }
            })
            .collect();
        if base.is_empty() || base.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            base.insert(0, 'n');
        }
        if KEYWORDS.contains(&base.as_str()) {
            base.push('_');
        }
        let mut name = base.clone();
        let mut i = 0usize;
        while !self.used.insert(name.clone()) {
            i += 1;
            name = format!("{base}_{i}");
        }
        name
    }
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "reg",
    "assign",
    "always",
    "initial",
    "begin",
    "end",
    "posedge",
    "negedge",
    "if",
    "else",
    "case",
    "endcase",
    "for",
    "while",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    fn sample() -> Circuit {
        let mut c = Circuit::new("demo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One, Bit::X]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        c
    }

    #[test]
    fn structure_present() {
        let v = to_verilog(&sample());
        assert!(v.starts_with("module demo(clk, a, b, o);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output o;"));
        assert!(v.contains("reg [1:0] a_ff0;"));
        assert!(v.contains("assign g = (a_ff0[1] & b);"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("a_ff0 <= {a_ff0[0:0], a};"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn initial_values_skip_x() {
        let v = to_verilog(&sample());
        assert!(v.contains("a_ff0[0] = 1'b1;"));
        assert!(!v.contains("a_ff0[1] = 1'b")); // the X stays uninitialised
    }

    #[test]
    fn combinational_has_no_clk() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let v = to_verilog(&c);
        assert!(v.starts_with("module comb(a, o);"));
        assert!(!v.contains("clk"));
        assert!(v.contains("assign g = (~a);"));
    }

    #[test]
    fn name_sanitisation() {
        let mut c = Circuit::new("weird name");
        let a = c.add_input("in[3]").unwrap();
        let g = c.add_gate("1bad", TruthTable::buf()).unwrap();
        let o = c.add_output("module").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("module weird_name("));
        assert!(v.contains("in_3_"));
        assert!(v.contains("n1bad"));
        assert!(v.contains("module_")); // keyword escaped
    }

    #[test]
    fn constants_render() {
        let mut c = Circuit::new("k");
        let one = c.add_gate("one", TruthTable::const_one(0)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(one, o, vec![]).unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("assign one = 1'b1;"));
    }

    #[test]
    fn mapped_circuit_exports() {
        // A mapped LUT network with multi-bit chains exports cleanly.
        let mut c = Circuit::new("m");
        let a = c.add_input("a").unwrap();
        let l1 = c
            .add_gate("l1", TruthTable::from_fn(2, |r| r != 3))
            .unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, l1, vec![Bit::Zero, Bit::One, Bit::Zero])
            .unwrap();
        c.connect(l1, l1, vec![Bit::One]).unwrap();
        c.connect(l1, o, vec![]).unwrap();
        let v = to_verilog(&c);
        assert!(v.contains("reg [2:0]"));
        assert!(v.contains("reg [0:0]"));
        // SOP of NAND(2): three on-rows.
        assert!(v.matches('|').count() >= 2);
    }
}
