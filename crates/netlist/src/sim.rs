//! Three-valued cycle-accurate simulation.
//!
//! [`Simulator`] steps a circuit one clock at a time: combinational
//! evaluation in topological order, then a synchronous shift of every FF
//! chain. Initial FF values come from the circuit itself; `X` values
//! propagate pessimistically through gate functions (a gate output is
//! defined only when every completion of its `X` inputs agrees).
//!
//! Simulation is also the engine of forward-retiming initial state
//! computation: moving a register forward across a gate assigns it the
//! gate's output under the old registers' initial values — exactly one
//! simulation step of that gate (Touati & Brayton 1993).

use crate::bit::Bit;
use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;

/// A cycle-accurate three-valued simulator borrowing a circuit.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    /// Current FF chain contents, per edge (source-to-sink order).
    state: Vec<Vec<Bit>>,
    order: Vec<NodeId>,
    values: Vec<Bit>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator starting from the circuit's initial state.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the circuit cannot
    /// be evaluated.
    pub fn new(circuit: &'a Circuit) -> Result<Simulator<'a>, NetlistError> {
        let order = circuit.comb_topo_order()?;
        let state = circuit
            .edge_ids()
            .map(|e| circuit.edge(e).ffs().to_vec())
            .collect();
        Ok(Simulator {
            circuit,
            state,
            order,
            values: vec![Bit::X; circuit.num_nodes()],
        })
    }

    /// Current FF chain contents (indexed by edge id).
    pub fn state(&self) -> &[Vec<Bit>] {
        &self.state
    }

    /// Advances one clock cycle with the given PI values (in
    /// [`Circuit::inputs`] order) and returns the PO values (in
    /// [`Circuit::outputs`] order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PiVectorLength`] if `inputs.len()` differs
    /// from the number of PIs — reachable from library callers and `serve`
    /// job payloads, so it must not panic.
    pub fn step(&mut self, inputs: &[Bit]) -> Result<Vec<Bit>, NetlistError> {
        let c = self.circuit;
        if inputs.len() != c.inputs().len() {
            return Err(NetlistError::PiVectorLength {
                expected: c.inputs().len(),
                actual: inputs.len(),
            });
        }
        let _span = engine::trace::span1("sim_step", "nodes", self.order.len() as u64);
        let _mem = engine::mem::scope(engine::mem::MemPhase::Sim);
        for (&pi, &v) in c.inputs().iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        let mut pin_values: Vec<Bit> = Vec::new();
        for &v in &self.order {
            let node = c.node(v);
            if node.is_input() {
                continue;
            }
            pin_values.clear();
            for &e in node.fanin() {
                let edge = c.edge(e);
                let w = edge.weight();
                let val = if w == 0 {
                    self.values[edge.from().index()]
                } else {
                    self.state[e.index()][w - 1]
                };
                pin_values.push(val);
            }
            self.values[v.index()] = match node.function() {
                Some(tt) => tt.eval3(&pin_values),
                None => pin_values.first().copied().unwrap_or(Bit::X), // PO
            };
        }
        // Synchronous FF shift: each chain takes the driver's new value at
        // the source end and delivers its sink-end value next cycle.
        for e in c.edge_ids() {
            let w = c.edge(e).weight();
            if w > 0 {
                let from_val = self.values[c.edge(e).from().index()];
                let chain = &mut self.state[e.index()];
                chain.pop();
                chain.insert(0, from_val);
            }
        }
        Ok(c.outputs()
            .iter()
            .map(|&po| self.values[po.index()])
            .collect())
    }

    /// Runs a whole input sequence, returning one PO vector per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PiVectorLength`] if any input vector has the
    /// wrong length.
    pub fn run(&mut self, sequence: &[Vec<Bit>]) -> Result<Vec<Vec<Bit>>, NetlistError> {
        sequence.iter().map(|inp| self.step(inp)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    fn bits(s: &str) -> Vec<Bit> {
        s.chars()
            .map(|ch| match ch {
                '0' => Bit::Zero,
                '1' => Bit::One,
                _ => Bit::X,
            })
            .collect()
    }

    #[test]
    fn combinational_and() {
        let mut c = Circuit::new("and");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("11")).unwrap(), bits("1"));
        assert_eq!(sim.step(&bits("10")).unwrap(), bits("0"));
        assert_eq!(sim.step(&bits("1x")).unwrap(), bits("x"));
        assert_eq!(sim.step(&bits("0x")).unwrap(), bits("0"));
    }

    #[test]
    fn ff_delays_by_one() {
        let mut c = Circuit::new("dff");
        let a = c.add_input("a").unwrap();
        let o = c.add_output("o").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::Zero]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("0")); // initial value
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("1")); // previous input
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("0"));
    }

    #[test]
    fn chain_of_two_ffs() {
        let mut c = Circuit::new("sr2");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One, Bit::Zero]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        // Cycle 1 delivers ffs[1] (nearest sink) = 0, cycle 2 delivers 1.
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("0"));
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("1"));
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("1")); // then the cycle-1 input
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("0"));
    }

    #[test]
    fn toggle_flip_flop() {
        // inv feeds itself through a FF initialised to 0: output alternates.
        let mut c = Circuit::new("toggle");
        c.add_input("unused").unwrap();
        let inv = c.add_gate("inv", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(inv, inv, vec![Bit::Zero]).unwrap();
        c.connect(inv, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        let outs: Vec<Bit> = (0..4).map(|_| sim.step(&bits("0")).unwrap()[0]).collect();
        assert_eq!(outs, bits("1010"));
    }

    #[test]
    fn x_initial_state_washes_out() {
        // XOR(a, ff) with ff initial X: first output X, then defined.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let d = c.add_gate("d", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(d, g, vec![Bit::X]).unwrap();
        c.connect(a, d, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("x"));
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("0")); // 1 xor prev(1)
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("1")); // 0 xor prev(1)
    }

    #[test]
    fn partial_initial_state_x_masked_by_controlling_value() {
        // AND(a, ff) with ff initial X: the X is *masked* whenever a=0 (a
        // controlling input), visible only when a=1. Pessimistic 3-valued
        // eval must distinguish the two — this is the boundary the fuzz
        // oracle's Compatibility mode leans on.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let d = c.add_gate("d", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(d, g, vec![Bit::X]).unwrap();
        c.connect(a, d, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("0")).unwrap(), bits("0")); // X masked
        let mut sim2 = Simulator::new(&c).unwrap();
        assert_eq!(sim2.step(&bits("1")).unwrap(), bits("x")); // X exposed
    }

    #[test]
    fn x_in_mid_chain_flushes_in_order() {
        // Chain [1, X, 0] (source→sink): delivers 0, then X, then 1 —
        // a partially defined chain releases its X exactly once, at the
        // cycle matching its position.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One, Bit::X, Bit::Zero]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("0"));
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("x"));
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("1"));
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("1")); // cycle-1 input arrives
    }

    #[test]
    fn x_input_to_xor_never_defined() {
        // XOR has no controlling value: an X PI forces X out every cycle,
        // while the FF path below keeps shifting defined values intact.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(sim.step(&bits("x")).unwrap(), bits("x"));
        // After an X has been clocked into the FF, even a defined input
        // cannot recover a defined output.
        assert_eq!(sim.step(&bits("1")).unwrap(), bits("x"));
    }

    #[test]
    fn wrong_pi_vector_length_is_a_typed_error() {
        let mut c = Circuit::new("and");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = Simulator::new(&c).unwrap();
        assert_eq!(
            sim.step(&bits("1")),
            Err(NetlistError::PiVectorLength {
                expected: 2,
                actual: 1
            })
        );
        assert!(sim.run(&[bits("11"), bits("111")]).is_err());
        // A failed step must not corrupt the simulator: it is usable after.
        assert_eq!(sim.step(&bits("11")).unwrap(), bits("1"));
    }

    #[test]
    fn run_matches_steps() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let o = c.add_output("o").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let seq = vec![bits("1"), bits("0"), bits("x")];
        let mut s1 = Simulator::new(&c).unwrap();
        let outs = s1.run(&seq).unwrap();
        assert_eq!(outs, vec![bits("0"), bits("1"), bits("x")]);
    }
}
