//! Batched three-valued simulation: 64 vectors per machine word.
//!
//! [`VecSimulator`] is the vectorized counterpart of the scalar
//! [`Simulator`](crate::sim::Simulator). Every signal carries a
//! [`Planes`] word — two 64-bit bitplanes encoding 64 independent
//! three-valued lanes:
//!
//! | lane value | `p0` bit | `p1` bit |
//! |-----------:|:--------:|:--------:|
//! | `0`        | 1        | 0        |
//! | `1`        | 0        | 1        |
//! | `X`        | 1        | 1        |
//!
//! (`p0` = "could be 0", `p1` = "could be 1"; both clear never occurs.)
//! Gates evaluate all 64 lanes with [`TruthTable::eval3_planes`] —
//! bitwise minterm masks over the truth-table rows — which reproduces
//! the pessimistic [`eval3`](TruthTable::eval3) semantics exactly,
//! including controlling-value `X` masking. The equivalence checkers in
//! [`crate::equiv`] run on this engine; the scalar simulator is retained
//! as the differential oracle (see the `scalar_agreement` tests below).
//!
//! Internally the simulator is flat struct-of-arrays: one pin CSR
//! (offsets into a flat pool of pin sources), one flat FF-chain arena,
//! and a dense per-node value array — no per-node `Vec` or map on the
//! step path, so a step is a single linear walk.

use crate::bit::Bit;
use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::truth::TruthTable;

/// Number of simulation lanes packed into one [`Planes`] word.
pub const LANES: usize = 64;

/// A 64-lane three-valued signal value: two bitplanes, bit `l` of `p0`
/// set when lane `l` could be `0`, bit `l` of `p1` set when it could be
/// `1` (both = `X`, never neither).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planes {
    /// "Could be 0" plane.
    pub p0: u64,
    /// "Could be 1" plane.
    pub p1: u64,
}

impl Planes {
    /// All 64 lanes set to `bit`.
    pub fn splat(bit: Bit) -> Planes {
        match bit {
            Bit::Zero => Planes { p0: !0, p1: 0 },
            Bit::One => Planes { p0: 0, p1: !0 },
            Bit::X => Planes { p0: !0, p1: !0 },
        }
    }

    /// The value of lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= LANES`.
    pub fn get(self, l: usize) -> Bit {
        assert!(l < LANES, "lane out of range");
        match ((self.p0 >> l) & 1, (self.p1 >> l) & 1) {
            (1, 0) => Bit::Zero,
            (0, 1) => Bit::One,
            _ => Bit::X,
        }
    }

    /// Sets lane `l` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= LANES`.
    pub fn set(&mut self, l: usize, bit: Bit) {
        assert!(l < LANES, "lane out of range");
        let mask = 1u64 << l;
        let (z, o) = match bit {
            Bit::Zero => (mask, 0),
            Bit::One => (0, mask),
            Bit::X => (mask, mask),
        };
        self.p0 = (self.p0 & !mask) | z;
        self.p1 = (self.p1 & !mask) | o;
    }

    /// Packs up to [`LANES`] scalar bits, one per lane (missing lanes
    /// default to `X`).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() > LANES`.
    pub fn pack(bits: &[Bit]) -> Planes {
        assert!(bits.len() <= LANES, "too many lanes");
        let mut planes = Planes::splat(Bit::X);
        for (l, &b) in bits.iter().enumerate() {
            planes.set(l, b);
        }
        planes
    }

    /// Unpacks the first `n` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n > LANES`.
    pub fn unpack(self, n: usize) -> Vec<Bit> {
        (0..n).map(|l| self.get(l)).collect()
    }
}

/// Sentinel in the pin-slot pool: read the driver's current value
/// (weight-0 edge) instead of an FF chain slot.
const DIRECT: u32 = u32::MAX;

/// A cycle-accurate three-valued simulator evaluating 64 vectors per
/// step. Lanes are fully independent: each starts from the circuit's
/// initial state and sees its own input sequence.
#[derive(Debug, Clone)]
pub struct VecSimulator<'a> {
    /// Non-PI nodes in combinational topological order.
    eval_nodes: Vec<u32>,
    /// Gate function per scheduled node (`None` = primary output).
    funcs: Vec<Option<&'a TruthTable>>,
    /// Pin CSR: pins of `eval_nodes[j]` are `pin_off[j]..pin_off[j+1]`.
    pin_off: Vec<u32>,
    /// Driver node index per pin (used when `pin_slot` is `DIRECT`).
    pin_src: Vec<u32>,
    /// FF-chain arena slot per pin, or `DIRECT` for weight-0 pins.
    pin_slot: Vec<u32>,
    /// Flat FF-chain arena, edge-major, source→sink within a chain.
    chain: Vec<Planes>,
    /// Chain extents per registered edge, paired with the source node:
    /// `(source node index, start, end)` into `chain`.
    shifts: Vec<(u32, u32, u32)>,
    /// Current node values (dense, indexed by node id).
    values: Vec<Planes>,
    /// Primary input node indices, PI order.
    inputs: Vec<u32>,
    /// Primary output node indices, PO order.
    outputs: Vec<u32>,
    /// Scratch pin-plane buffer reused across gates.
    pins: Vec<(u64, u64)>,
}

impl<'a> VecSimulator<'a> {
    /// Creates a simulator starting every lane from the circuit's
    /// initial state.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the circuit
    /// cannot be evaluated.
    pub fn new(circuit: &'a Circuit) -> Result<VecSimulator<'a>, NetlistError> {
        let order = circuit.comb_topo_order()?;
        let mut eval_nodes = Vec::with_capacity(order.len());
        let mut funcs = Vec::with_capacity(order.len());
        let mut pin_off = vec![0u32];
        let mut pin_src = Vec::new();
        let mut pin_slot = Vec::new();
        let mut chain = Vec::new();
        let mut shifts = Vec::new();

        // Flatten every FF chain into one arena first, so pins can point
        // straight at their chain slot.
        let mut chain_start = vec![0u32; circuit.num_edges()];
        for e in circuit.edge_ids() {
            let edge = circuit.edge(e);
            chain_start[e.index()] = chain.len() as u32;
            if edge.weight() > 0 {
                let start = chain.len() as u32;
                chain.extend(edge.ffs().iter().map(|&b| Planes::splat(b)));
                shifts.push((edge.from().index() as u32, start, chain.len() as u32));
            }
        }
        for &v in &order {
            let node = circuit.node(v);
            if node.is_input() {
                continue;
            }
            eval_nodes.push(v.index() as u32);
            funcs.push(node.function());
            for &e in node.fanin() {
                let edge = circuit.edge(e);
                let w = edge.weight();
                pin_src.push(edge.from().index() as u32);
                pin_slot.push(if w == 0 {
                    DIRECT
                } else {
                    chain_start[e.index()] + (w - 1) as u32
                });
            }
            pin_off.push(pin_src.len() as u32);
        }
        Ok(VecSimulator {
            eval_nodes,
            funcs,
            pin_off,
            pin_src,
            pin_slot,
            chain,
            shifts,
            values: vec![Planes::splat(Bit::X); circuit.num_nodes()],
            inputs: circuit.inputs().iter().map(|v| v.index() as u32).collect(),
            outputs: circuit.outputs().iter().map(|v| v.index() as u32).collect(),
            pins: Vec::new(),
        })
    }

    /// Advances one clock cycle on all 64 lanes and returns the PO
    /// values (PO order, one [`Planes`] word per output).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PiVectorLength`] if `inputs.len()` differs
    /// from the number of PIs.
    pub fn step(&mut self, inputs: &[Planes]) -> Result<Vec<Planes>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::PiVectorLength {
                expected: self.inputs.len(),
                actual: inputs.len(),
            });
        }
        let _span = engine::trace::span1("sim_step", "nodes", self.eval_nodes.len() as u64);
        let _mem = engine::mem::scope(engine::mem::MemPhase::Sim);
        for (&pi, &v) in self.inputs.iter().zip(inputs) {
            self.values[pi as usize] = v;
        }
        for (j, &v) in self.eval_nodes.iter().enumerate() {
            let (lo, hi) = (self.pin_off[j] as usize, self.pin_off[j + 1] as usize);
            self.pins.clear();
            for p in lo..hi {
                let slot = self.pin_slot[p];
                let planes = if slot == DIRECT {
                    self.values[self.pin_src[p] as usize]
                } else {
                    self.chain[slot as usize]
                };
                self.pins.push((planes.p0, planes.p1));
            }
            self.values[v as usize] = match self.funcs[j] {
                Some(tt) => {
                    let (p0, p1) = tt.eval3_planes(&self.pins);
                    Planes { p0, p1 }
                }
                // PO: pass the single fanin through (X when unconnected).
                None => match self.pins.first() {
                    Some(&(p0, p1)) => Planes { p0, p1 },
                    None => Planes::splat(Bit::X),
                },
            };
        }
        // Synchronous FF shift, one rotation per registered edge: the
        // sink-end slot falls off, the driver's new value enters at the
        // source end.
        for &(src, start, end) in &self.shifts {
            let chain = &mut self.chain[start as usize..end as usize];
            for i in (1..chain.len()).rev() {
                chain[i] = chain[i - 1];
            }
            chain[0] = self.values[src as usize];
        }
        Ok(self
            .outputs
            .iter()
            .map(|&po| self.values[po as usize])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::random_sequence;
    use crate::sim::Simulator;
    use engine::rng::Rng64;

    fn bits(s: &str) -> Vec<Bit> {
        s.chars()
            .map(|ch| match ch {
                '0' => Bit::Zero,
                '1' => Bit::One,
                _ => Bit::X,
            })
            .collect()
    }

    #[test]
    fn planes_roundtrip_and_splat() {
        let mut p = Planes::splat(Bit::X);
        assert_eq!(p.get(0), Bit::X);
        assert_eq!(p.get(63), Bit::X);
        p.set(3, Bit::One);
        p.set(4, Bit::Zero);
        assert_eq!(p.get(3), Bit::One);
        assert_eq!(p.get(4), Bit::Zero);
        assert_eq!(p.get(5), Bit::X);
        let v = bits("01x10");
        assert_eq!(Planes::pack(&v).unpack(5), v);
        assert_eq!(Planes::splat(Bit::One).get(17), Bit::One);
        assert_eq!(Planes::splat(Bit::Zero).get(62), Bit::Zero);
    }

    #[test]
    fn eval3_planes_matches_eval3_exhaustively() {
        // Every truth table of arity ≤ 2, every 3-valued input combo,
        // packed into lanes — the bitplane path must agree with eval3.
        let all = [Bit::Zero, Bit::One, Bit::X];
        for k in 0..=2usize {
            for code in 0..(1u32 << (1 << k)) {
                let tt = TruthTable::from_fn(k, |r| (code >> r) & 1 == 1);
                let combos: Vec<Vec<Bit>> = (0..3usize.pow(k as u32))
                    .map(|mut c| {
                        (0..k)
                            .map(|_| {
                                let b = all[c % 3];
                                c /= 3;
                                b
                            })
                            .collect()
                    })
                    .collect();
                // Pack one combo per lane.
                let inputs: Vec<(u64, u64)> = (0..k)
                    .map(|i| {
                        let p = Planes::pack(&combos.iter().map(|c| c[i]).collect::<Vec<_>>());
                        (p.p0, p.p1)
                    })
                    .collect();
                let (p0, p1) = tt.eval3_planes(&inputs);
                let out = Planes { p0, p1 };
                for (l, combo) in combos.iter().enumerate() {
                    assert_eq!(out.get(l), tt.eval3(combo), "tt {tt} combo {combo:?}");
                }
            }
        }
    }

    /// A random sequential circuit: `pis` inputs, `gates` gates of
    /// arity 1–3 with random functions, random FF weights 0–2 with
    /// random (possibly `X`) initial values, and `pos` outputs.
    fn random_circuit(seed: u64, pis: usize, gates: usize, pos: usize) -> Circuit {
        let mut rng = Rng64::new(seed);
        let mut c = Circuit::new(format!("rand{seed}"));
        let mut drivers = Vec::new();
        for i in 0..pis {
            drivers.push(c.add_input(format!("i{i}")).unwrap());
        }
        for g in 0..gates {
            let k = 1 + (rng.next_u64() % 3) as usize;
            let code = rng.next_u64();
            let tt = TruthTable::from_fn(k, |r| (code >> r) & 1 == 1);
            let v = c.add_gate(format!("g{g}"), tt).unwrap();
            for _ in 0..k {
                let from = drivers[(rng.next_u64() as usize) % drivers.len()];
                let w = (rng.next_u64() % 3) as usize;
                let ffs: Vec<Bit> = (0..w)
                    .map(|_| match rng.next_u64() % 3 {
                        0 => Bit::Zero,
                        1 => Bit::One,
                        _ => Bit::X,
                    })
                    .collect();
                c.connect(from, v, ffs).unwrap();
            }
            drivers.push(v);
        }
        for p in 0..pos {
            let o = c.add_output(format!("o{p}")).unwrap();
            let from = drivers[(rng.next_u64() as usize) % drivers.len()];
            c.connect(from, o, vec![]).unwrap();
        }
        c
    }

    /// The satellite differential property: for random circuits with
    /// partial-`X` initial states driven by random (occasionally `X`)
    /// inputs, all 64 vector lanes must match 64 scalar simulations
    /// bit-for-bit, cycle by cycle.
    #[test]
    fn vector_matches_scalar_bit_for_bit() {
        for seed in 0..6u64 {
            let c = random_circuit(1000 + seed, 3, 12, 3);
            let cycles = 8;
            let mut rng = Rng64::new(77 ^ seed);
            // Lane-major input sequences, with a 1-in-8 chance of X to
            // exercise X-propagation from the PIs too.
            let seqs: Vec<Vec<Vec<Bit>>> = (0..LANES)
                .map(|_| {
                    (0..cycles)
                        .map(|_| {
                            (0..3)
                                .map(|_| {
                                    if rng.next_u64().is_multiple_of(8) {
                                        Bit::X
                                    } else {
                                        Bit::from_bool(rng.next_u64() & 1 == 1)
                                    }
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let mut vsim = VecSimulator::new(&c).unwrap();
            let mut scalars: Vec<Simulator> =
                (0..LANES).map(|_| Simulator::new(&c).unwrap()).collect();
            for t in 0..cycles {
                let inputs: Vec<Planes> = (0..3)
                    .map(|i| Planes::pack(&seqs.iter().map(|s| s[t][i]).collect::<Vec<_>>()))
                    .collect();
                let vec_out = vsim.step(&inputs).unwrap();
                for (l, scalar) in scalars.iter_mut().enumerate() {
                    let scalar_out = scalar.step(&seqs[l][t]).unwrap();
                    for (po, &word) in vec_out.iter().enumerate() {
                        assert_eq!(
                            word.get(l),
                            scalar_out[po],
                            "seed {seed} cycle {t} lane {l} po {po}"
                        );
                    }
                }
            }
        }
    }

    /// X-propagation boundary from the scalar suite, replayed on one
    /// lane while the other lanes carry different vectors: AND(a, ff=X)
    /// masks the X exactly when a=0.
    #[test]
    fn partial_x_initial_state_masked_per_lane() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let d = c.add_gate("d", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(d, g, vec![Bit::X]).unwrap();
        c.connect(a, d, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut sim = VecSimulator::new(&c).unwrap();
        // Lane 0 drives a=0 (X masked), lane 1 drives a=1 (X exposed).
        let out = sim.step(&[Planes::pack(&bits("01"))]).unwrap();
        assert_eq!(out[0].get(0), Bit::Zero);
        assert_eq!(out[0].get(1), Bit::X);
    }

    #[test]
    fn ff_chains_shift_independently_per_lane() {
        // Chain [1, X, 0] source→sink delivers 0, X, 1, then inputs.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One, Bit::X, Bit::Zero]).unwrap();
        let mut sim = VecSimulator::new(&c).unwrap();
        let drive = [Planes::pack(&bits("10"))];
        let expect = [bits("00"), bits("xx"), bits("11"), bits("10")];
        for want in expect {
            let out = sim.step(&drive).unwrap();
            assert_eq!(out[0].unpack(2), want);
        }
    }

    #[test]
    fn wrong_pi_count_is_a_typed_error() {
        let c = random_circuit(5, 2, 4, 1);
        let mut sim = VecSimulator::new(&c).unwrap();
        assert_eq!(
            sim.step(&[Planes::splat(Bit::Zero)]),
            Err(NetlistError::PiVectorLength {
                expected: 2,
                actual: 1
            })
        );
    }

    /// Driving all lanes with the same `random_sequence` must reproduce
    /// the scalar simulator's trajectory on every lane.
    #[test]
    fn splat_sequence_matches_scalar_run() {
        let c = random_circuit(9, 4, 20, 4);
        let seq = random_sequence(4, 12, 3);
        let mut scalar = Simulator::new(&c).unwrap();
        let scalar_out = scalar.run(&seq).unwrap();
        let mut vsim = VecSimulator::new(&c).unwrap();
        for (t, inp) in seq.iter().enumerate() {
            let planes: Vec<Planes> = inp.iter().map(|&b| Planes::splat(b)).collect();
            let out = vsim.step(&planes).unwrap();
            for (po, &word) in out.iter().enumerate() {
                assert_eq!(word.get(0), scalar_out[t][po]);
                assert_eq!(word.get(63), scalar_out[t][po]);
            }
        }
    }
}
