//! Sequential netlist substrate for the TurboMap-frt reproduction.
//!
//! This crate implements the circuit model of Cong & Wu (DAC'98): sequential
//! circuits as **retiming graphs** `G(V, E, W)` where nodes are PIs, POs and
//! gates, and each edge carries a chain of flip-flops with three-valued
//! initial values. On top of the representation it provides the services
//! the mapping/retiming stack and the evaluation need:
//!
//! * [`Circuit`] — the retiming graph with FF initial states ([`circuit`]),
//! * [`TruthTable`] / [`Bit`] — gate functions and 3-valued logic,
//! * [`blif`] — BLIF reading/writing (the SIS interchange format),
//! * [`sim`] — cycle-accurate 3-valued simulation,
//! * [`vsim`] — batched two-bitplane simulation, 64 vectors per word,
//! * [`equiv`] — sequential equivalence checking (random-vector and
//!   bounded-exhaustive; our stand-in for SIS `verify_fsm`), running on
//!   the vector engine with the scalar simulator as differential oracle,
//! * [`decompose`] — fanin-bounding tech decomposition before mapping,
//! * [`strash`] — structural hashing (duplicate-logic sweep),
//! * [`dot`] — Graphviz export for the paper's figure-style diagrams,
//! * [`verilog`] — structural Verilog export of mapped networks,
//! * [`validate`] — structural validation of the papers' preconditions,
//! * [`stats`] — size/timing summaries.
//!
//! # Examples
//!
//! ```
//! use netlist::{Bit, Circuit, Simulator, TruthTable};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! // q' = en XOR q : a toggle register.
//! let mut c = Circuit::new("toggle");
//! let en = c.add_input("en")?;
//! let x = c.add_gate("x", TruthTable::xor(2))?;
//! let q = c.add_output("q")?;
//! c.connect(en, x, vec![])?;
//! c.connect(x, x, vec![Bit::Zero])?; // feedback through one FF, init 0
//! c.connect(x, q, vec![])?;
//!
//! let mut sim = Simulator::new(&c)?;
//! assert_eq!(sim.step(&[Bit::One])?, vec![Bit::One]);
//! assert_eq!(sim.step(&[Bit::One])?, vec![Bit::Zero]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bit;
pub mod blif;
pub mod circuit;
pub mod decompose;
pub mod dot;
pub mod equiv;
pub mod error;
pub mod prune;
pub mod sim;
pub mod stats;
pub mod strash;
pub mod truth;
pub mod validate;
pub mod verilog;
pub mod vsim;

pub use bit::Bit;
pub use blif::{parse_blif, write_blif};
pub use circuit::{Circuit, Edge, EdgeId, Node, NodeId, NodeKind};
pub use decompose::decompose_to_k;
pub use dot::to_dot;
pub use equiv::{
    exhaustive_equiv, random_equiv, random_equiv_mode, random_equiv_scalar_mode, random_sequence,
    sequence_equiv, sequence_equiv_mode, CounterExample, EquivMode, EquivResult,
    EXHAUSTIVE_BITS_BOUND,
};
pub use error::NetlistError;
pub use prune::prune_dead;
pub use sim::Simulator;
pub use stats::{CircuitStats, ModelCounts};
pub use strash::{strash, StrashReport};
pub use truth::{TruthTable, MAX_INPUTS};
pub use validate::{check_k_bounded, validate};
pub use verilog::to_verilog;
pub use vsim::{Planes, VecSimulator, LANES};
