//! Three-valued logic values.
//!
//! Initial states may be partially assigned (the paper explicitly supports
//! circuits "with partial initial state assignment"), so flip-flop values and
//! simulation values are three-valued: `0`, `1`, or `X` (unknown).

/// A three-valued logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Bit {
    /// Converts a `bool` to a defined bit.
    pub fn from_bool(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Returns `Some(bool)` for defined values, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            Bit::X => None,
        }
    }

    /// True when the value is `0` or `1`.
    pub fn is_defined(self) -> bool {
        self != Bit::X
    }

    /// Three-valued NOT.
    #[allow(clippy::should_implement_trait)] // three-valued, deliberately not `ops::Not`
    pub fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X => Bit::X,
        }
    }

    /// Three-valued AND (`0` dominates `X`).
    pub fn and(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        }
    }

    /// Three-valued OR (`1` dominates `X`).
    pub fn or(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        }
    }

    /// Three-valued XOR (`X` poisons).
    pub fn xor(self, other: Bit) -> Bit {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Bit::from_bool(a ^ b),
            _ => Bit::X,
        }
    }

    /// True when `self` and `other` can denote the same concrete value
    /// (equal, or at least one is `X`).
    pub fn compatible(self, other: Bit) -> bool {
        self == Bit::X || other == Bit::X || self == other
    }

    /// Merges two compatible values, preferring the defined one.
    ///
    /// Returns `None` when the values conflict (`0` vs `1`).
    pub fn merge(self, other: Bit) -> Option<Bit> {
        match (self, other) {
            (Bit::X, b) => Some(b),
            (a, Bit::X) => Some(a),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }

    /// True when `self` refines `other`: every behaviour of `self` is
    /// permitted by `other` (i.e. `other` is `X` or they are equal).
    pub fn refines(self, other: Bit) -> bool {
        other == Bit::X || self == other
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        Bit::from_bool(b)
    }
}

impl std::fmt::Display for Bit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bit::Zero => write!(f, "0"),
            Bit::One => write!(f, "1"),
            Bit::X => write!(f, "x"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(Bit::Zero.and(Bit::X), Bit::Zero);
        assert_eq!(Bit::X.and(Bit::Zero), Bit::Zero);
        assert_eq!(Bit::One.or(Bit::X), Bit::One);
        assert_eq!(Bit::X.or(Bit::One), Bit::One);
    }

    #[test]
    fn x_propagates_otherwise() {
        assert_eq!(Bit::One.and(Bit::X), Bit::X);
        assert_eq!(Bit::Zero.or(Bit::X), Bit::X);
        assert_eq!(Bit::X.xor(Bit::One), Bit::X);
        assert_eq!(Bit::X.not(), Bit::X);
    }

    #[test]
    fn defined_ops_match_bool() {
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(
                    Bit::from_bool(a).and(Bit::from_bool(b)),
                    Bit::from_bool(a && b)
                );
                assert_eq!(
                    Bit::from_bool(a).or(Bit::from_bool(b)),
                    Bit::from_bool(a || b)
                );
                assert_eq!(
                    Bit::from_bool(a).xor(Bit::from_bool(b)),
                    Bit::from_bool(a ^ b)
                );
            }
        }
    }

    #[test]
    fn merge_and_compatible() {
        assert_eq!(Bit::X.merge(Bit::One), Some(Bit::One));
        assert_eq!(Bit::Zero.merge(Bit::X), Some(Bit::Zero));
        assert_eq!(Bit::Zero.merge(Bit::One), None);
        assert!(Bit::X.compatible(Bit::One));
        assert!(!Bit::Zero.compatible(Bit::One));
    }

    #[test]
    fn refinement_is_one_directional() {
        assert!(Bit::One.refines(Bit::X));
        assert!(!Bit::X.refines(Bit::One));
        assert!(Bit::One.refines(Bit::One));
    }
}
