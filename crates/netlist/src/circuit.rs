//! The sequential circuit / retiming graph representation.
//!
//! A [`Circuit`] is the retiming graph `G(V, E, W)` of the paper: nodes are
//! primary inputs, primary outputs and gates (each gate carrying a
//! [`TruthTable`]); each directed edge carries an ordered chain of flip-flops
//! with three-valued initial values (`w(e)` = chain length). Under the unit
//! delay model every gate has delay 1 and PIs/POs delay 0.
//!
//! The FF chain on an edge is ordered **from source to sink**: `ffs[0]` is
//! the register closest to the driving node, `ffs[w-1]` feeds the consumer.

use crate::bit::Bit;
use crate::error::NetlistError;
use crate::truth::TruthTable;
use std::collections::HashMap;

/// Identifier of a node within one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge within one [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input (no fanin, delay 0).
    Input,
    /// Primary output (exactly one fanin, identity function, delay 0).
    Output,
    /// Logic gate or LUT computing the given function of its ordered fanins.
    Gate(TruthTable),
}

/// A node of the retiming graph.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    kind: NodeKind,
    fanin: Vec<EdgeId>,
    fanout: Vec<EdgeId>,
}

impl Node {
    /// The node's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Ordered fanin edges (gate pin `i` = `fanin()[i]`).
    pub fn fanin(&self) -> &[EdgeId] {
        &self.fanin
    }

    /// Fanout edges (unordered).
    pub fn fanout(&self) -> &[EdgeId] {
        &self.fanout
    }

    /// The gate function, if this node is a gate.
    pub fn function(&self) -> Option<&TruthTable> {
        match &self.kind {
            NodeKind::Gate(tt) => Some(tt),
            _ => None,
        }
    }

    /// True for primary inputs.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, NodeKind::Input)
    }

    /// True for primary outputs.
    pub fn is_output(&self) -> bool {
        matches!(self.kind, NodeKind::Output)
    }

    /// True for gates.
    pub fn is_gate(&self) -> bool {
        matches!(self.kind, NodeKind::Gate(_))
    }

    /// Unit-model delay: 1 for gates, 0 for PIs/POs.
    pub fn delay(&self) -> u64 {
        if self.is_gate() {
            1
        } else {
            0
        }
    }
}

/// An edge of the retiming graph with its flip-flop chain.
#[derive(Debug, Clone)]
pub struct Edge {
    from: NodeId,
    to: NodeId,
    ffs: Vec<Bit>,
}

impl Edge {
    /// Driving node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// Consuming node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// Edge weight `w(e)` — the number of flip-flops on the connection.
    pub fn weight(&self) -> usize {
        self.ffs.len()
    }

    /// Initial values of the FF chain, ordered from source to sink.
    pub fn ffs(&self) -> &[Bit] {
        &self.ffs
    }
}

/// A sequential circuit represented as a retiming graph.
///
/// # Examples
///
/// ```
/// use netlist::{Bit, Circuit, TruthTable};
///
/// // A 1-bit toggle: ff_out = NOT(ff_out), one FF initialised to 0.
/// let mut c = Circuit::new("toggle");
/// let inv = c.add_gate("inv", TruthTable::not()).unwrap();
/// let po = c.add_output("out").unwrap();
/// c.connect(inv, inv, vec![Bit::Zero]).unwrap();
/// c.connect(inv, po, vec![]).unwrap();
/// assert_eq!(c.num_gates(), 1);
/// assert_eq!(c.ff_count_shared(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    names: HashMap<String, NodeId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Circuit {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            names: HashMap::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> Result<NodeId, NetlistError> {
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.names.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            fanin: Vec::new(),
            fanout: Vec::new(),
        });
        Ok(id)
    }

    /// Adds a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.add_node(name.into(), NodeKind::Input)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a primary output (connect its single fanin with [`Circuit::connect`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_output(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.add_node(name.into(), NodeKind::Output)?;
        self.outputs.push(id);
        Ok(id)
    }

    /// Adds a gate computing `function` of its future fanins (in connect
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        function: TruthTable,
    ) -> Result<NodeId, NetlistError> {
        self.add_node(name.into(), NodeKind::Gate(function))
    }

    /// Connects `from -> to` with the given FF chain (`ffs[0]` nearest
    /// `from`). The new edge becomes the next fanin pin of `to`.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::InputHasFanin`] when `to` is a primary input.
    /// * [`NetlistError::OutputHasFanout`] when `from` is a primary output.
    /// * [`NetlistError::ArityMismatch`] when `to` already has as many
    ///   fanins as its function allows (or an output already has one).
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        ffs: Vec<Bit>,
    ) -> Result<EdgeId, NetlistError> {
        if self.node(to).is_input() {
            return Err(NetlistError::InputHasFanin(self.node(to).name.clone()));
        }
        if self.node(from).is_output() {
            return Err(NetlistError::OutputHasFanout(self.node(from).name.clone()));
        }
        let max_pins = match &self.node(to).kind {
            NodeKind::Output => 1,
            NodeKind::Gate(tt) => tt.num_inputs(),
            NodeKind::Input => unreachable!(),
        };
        if self.node(to).fanin.len() >= max_pins {
            return Err(NetlistError::ArityMismatch {
                node: self.node(to).name.clone(),
                expected: max_pins,
                actual: self.node(to).fanin.len() + 1,
            });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, ffs });
        self.nodes[to.index()].fanin.push(id);
        self.nodes[from.index()].fanout.push(id);
        Ok(id)
    }

    /// Convenience: connect with `w` flip-flops all initialised to `init`.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::connect`].
    pub fn connect_w(
        &mut self,
        from: NodeId,
        to: NodeId,
        w: usize,
        init: Bit,
    ) -> Result<EdgeId, NetlistError> {
        self.connect(from, to, vec![init; w])
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Mutable FF chain of an edge (for retiming moves).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ffs_mut(&mut self, id: EdgeId) -> &mut Vec<Bit> {
        &mut self.edges[id.index()].ffs
    }

    /// Redirects the *source* of an existing edge to `new_from`, keeping
    /// its sink, pin position and FF chain (used by netlist growth and
    /// rewiring passes).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::OutputHasFanout`] when `new_from` is a
    /// primary output.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `new_from` is out of range.
    pub fn rewire_from(&mut self, id: EdgeId, new_from: NodeId) -> Result<(), NetlistError> {
        if self.node(new_from).is_output() {
            return Err(NetlistError::OutputHasFanout(
                self.node(new_from).name.clone(),
            ));
        }
        let old_from = self.edges[id.index()].from;
        if old_from == new_from {
            return Ok(());
        }
        let fanout = &mut self.nodes[old_from.index()].fanout;
        let pos = fanout
            .iter()
            .position(|&e| e == id)
            .expect("edge listed in its source's fanout");
        fanout.remove(pos);
        self.edges[id.index()].from = new_from;
        self.nodes[new_from.index()].fanout.push(id);
        Ok(())
    }

    /// Replaces a gate's function (used by logic restructuring passes).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a gate or the arity changes.
    pub fn set_function(&mut self, id: NodeId, function: TruthTable) {
        let node = &mut self.nodes[id.index()];
        match &node.kind {
            NodeKind::Gate(old) => {
                assert_eq!(
                    old.num_inputs(),
                    function.num_inputs(),
                    "set_function must preserve arity"
                );
                node.kind = NodeKind::Gate(function);
            }
            _ => panic!("set_function on a non-gate node"),
        }
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Ids of gate nodes.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&v| self.node(v).is_gate())
    }

    /// Number of nodes (PIs + POs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// Total FF count without register sharing (sum of edge weights).
    pub fn ff_count_total(&self) -> usize {
        self.edges.iter().map(|e| e.weight()).sum()
    }

    /// FF count **with register sharing**: each node contributes the maximum
    /// weight over its fanout edges (a shared shift register that consumers
    /// tap at their own depth). This is the FF metric reported by the
    /// retiming literature and by Table 1 of the paper.
    pub fn ff_count_shared(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.fanout
                    .iter()
                    .map(|&e| self.edge(e).weight())
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// True when, for every node, the FF chains of its fanout edges agree on
    /// their shared prefix (so the sharing count of
    /// [`Circuit::ff_count_shared`] is physically realisable with these
    /// initial values).
    pub fn sharing_consistent(&self) -> bool {
        self.nodes.iter().all(|n| {
            let chains: Vec<&[Bit]> = n.fanout.iter().map(|&e| self.edge(e).ffs()).collect();
            let maxw = chains.iter().map(|c| c.len()).max().unwrap_or(0);
            (0..maxw).all(|i| {
                let mut merged = Bit::X;
                for c in &chains {
                    if let Some(&b) = c.get(i) {
                        match merged.merge(b) {
                            Some(m) => merged = m,
                            None => return false,
                        }
                    }
                }
                true
            })
        })
    }

    /// Adjacency over **combinational** (zero-weight) edges, as plain index
    /// lists for the graph algorithms.
    pub fn comb_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            if e.weight() == 0 {
                adj[e.from.index()].push(e.to.index());
            }
        }
        adj
    }

    /// Adjacency over all edges with FF counts as weights.
    pub fn weighted_adjacency(&self) -> Vec<Vec<(usize, u64)>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.from.index()].push((e.to.index(), e.weight() as u64));
        }
        adj
    }

    /// [`Circuit::comb_adjacency`] in flat CSR form: one stable counting
    /// pass over the edge list, no per-node heap rows. Rows list targets
    /// in edge-id order, exactly like the nested form.
    pub fn comb_csr(&self) -> graphalgo::Csr {
        let n = self.nodes.len();
        let edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter(|e| e.weight() == 0)
            .map(|e| (e.from.index(), e.to.index()))
            .collect();
        graphalgo::Csr::from_edges(n, &edges)
    }

    /// [`Circuit::weighted_adjacency`] in flat CSR form (all edges, FF
    /// counts as weights).
    pub fn weighted_csr(&self) -> graphalgo::WeightedCsr {
        let n = self.nodes.len();
        let edges: Vec<(usize, usize, u64)> = self
            .edges
            .iter()
            .map(|e| (e.from.index(), e.to.index(), e.weight() as u64))
            .collect();
        graphalgo::WeightedCsr::from_edges(n, &edges)
    }

    /// A topological order of the zero-weight subgraph (evaluation order for
    /// one clock cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the circuit has a
    /// zero-weight cycle.
    pub fn comb_topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        graphalgo::topo_order_csr(&self.comb_csr())
            .map(|o| o.into_iter().map(|i| NodeId(i as u32)).collect())
            .map_err(|e| NetlistError::CombinationalCycle {
                nodes: e
                    .cyclic_nodes
                    .iter()
                    .map(|&i| self.nodes[i].name.clone())
                    .collect(),
            })
    }

    /// The clock period under the unit delay model: the maximum number of
    /// gates on any register-free path (between PIs, POs and FFs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on zero-weight cycles.
    pub fn clock_period(&self) -> Result<u64, NetlistError> {
        let order = self.comb_topo_order()?;
        let mut arrival = vec![0u64; self.nodes.len()];
        let mut period = 0u64;
        for v in order {
            let node = self.node(v);
            let mut best = 0u64;
            for &e in &node.fanin {
                let edge = self.edge(e);
                if edge.weight() == 0 {
                    best = best.max(arrival[edge.from.index()]);
                }
            }
            arrival[v.index()] = best + node.delay();
            period = period.max(arrival[v.index()]);
        }
        Ok(period)
    }

    /// Maximum gate fanin.
    pub fn max_fanin(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.is_gate())
            .map(|n| n.fanin.len())
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Display for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} gates, {} FFs (shared)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.num_gates(),
            self.ff_count_shared()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Circuit, NodeId, NodeId, NodeId, NodeId) {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![Bit::One]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        (c, a, b, g, o)
    }

    #[test]
    fn build_and_query() {
        let (c, a, _b, g, o) = tiny();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.ff_count_total(), 1);
        assert_eq!(c.ff_count_shared(), 1);
        assert_eq!(c.find("g"), Some(g));
        assert_eq!(c.node(a).fanout().len(), 1);
        assert_eq!(c.node(o).fanin().len(), 1);
        assert_eq!(c.node(g).delay(), 1);
        assert_eq!(c.node(a).delay(), 0);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap();
        assert!(matches!(
            c.add_gate("a", TruthTable::not()),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn arity_enforced() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        c.connect(a, g, vec![]).unwrap();
        assert!(matches!(
            c.connect(a, g, vec![]),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn input_cannot_have_fanin() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        assert!(matches!(
            c.connect(a, b, vec![]),
            Err(NetlistError::InputHasFanin(_))
        ));
    }

    #[test]
    fn output_cannot_drive() {
        let mut c = Circuit::new("t");
        let o = c.add_output("o").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        assert!(matches!(
            c.connect(o, g, vec![]),
            Err(NetlistError::OutputHasFanout(_))
        ));
    }

    #[test]
    fn clock_period_counts_gates_between_ffs() {
        // a -> g1 -> g2 -FF-> g3 -> o : longest comb path has 2 gates.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![Bit::Zero]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        assert_eq!(c.clock_period().unwrap(), 2);
    }

    #[test]
    fn comb_cycle_detected() {
        let mut c = Circuit::new("t");
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g1, vec![]).unwrap();
        assert!(matches!(
            c.clock_period(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn ff_cycle_is_fine() {
        let mut c = Circuit::new("t");
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g1, vec![Bit::Zero]).unwrap();
        assert_eq!(c.clock_period().unwrap(), 2);
    }

    #[test]
    fn shared_ff_count_uses_max_fanout_weight() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![Bit::Zero, Bit::One]).unwrap();
        c.connect(a, g2, vec![Bit::Zero]).unwrap();
        c.connect(g1, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        assert_eq!(c.ff_count_total(), 3);
        assert_eq!(c.ff_count_shared(), 2);
        assert!(c.sharing_consistent());
    }

    #[test]
    fn sharing_conflict_detected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![Bit::Zero]).unwrap();
        c.connect(a, g2, vec![Bit::One]).unwrap();
        c.connect(g1, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        assert!(!c.sharing_consistent());
    }
}
