//! Structural validation of circuits.
//!
//! The mapping and retiming algorithms assume well-formed retiming graphs:
//! every gate fully connected with the arity of its function, every PO
//! driven, no register-free cycles, and — as in the original papers — every
//! node reachable from some primary input. [`validate`] checks all of this
//! at once; [`check_k_bounded`] additionally enforces the fanin bound
//! required before LUT mapping.

use crate::circuit::Circuit;
use crate::error::NetlistError;

/// Validates circuit structure.
///
/// # Errors
///
/// The first violated property is reported:
/// * [`NetlistError::UnconnectedGate`] / [`NetlistError::UnconnectedOutput`]
///   for missing fanins,
/// * [`NetlistError::CombinationalCycle`] for register-free cycles,
/// * [`NetlistError::UnreachableFromInputs`] for nodes with no path from a
///   PI (constant generators and autonomous register loops; the label
///   computations of the paper require PI-reachability — see DESIGN.md).
///
/// Circuits without PIs (fully autonomous) are rejected unless they have no
/// nodes at all.
pub fn validate(c: &Circuit) -> Result<(), NetlistError> {
    // Fanin completeness.
    for v in c.node_ids() {
        let node = c.node(v);
        match node.function() {
            Some(tt) if node.fanin().len() != tt.num_inputs() => {
                return Err(NetlistError::UnconnectedGate(node.name().to_string()));
            }
            None if node.is_output() && node.fanin().len() != 1 => {
                return Err(NetlistError::UnconnectedOutput(node.name().to_string()));
            }
            _ => {}
        }
    }
    // Combinational cycles.
    c.comb_topo_order()?;
    // PI reachability.
    let unreachable = unreachable_from_inputs(c);
    if !unreachable.is_empty() {
        return Err(NetlistError::UnreachableFromInputs {
            nodes: unreachable
                .iter()
                .map(|&v| c.node(v).name().to_string())
                .collect(),
        });
    }
    Ok(())
}

/// Nodes with no directed path from any primary input (ignoring weights).
///
/// Zero-fanin gates (constants) count as unreachable unless the circuit has
/// no PIs at all, in which case everything is vacuously "reachable" — but
/// [`validate`] treats a PI-less circuit with gates as unreachable anyway,
/// matching the papers' model where PIs always exist.
pub fn unreachable_from_inputs(c: &Circuit) -> Vec<crate::circuit::NodeId> {
    let n = c.num_nodes();
    let mut reach = vec![false; n];
    let mut stack: Vec<usize> = c.inputs().iter().map(|v| v.index()).collect();
    for &s in &stack {
        reach[s] = true;
    }
    // Zero-arity gates (constants) are self-justifying sources too.
    for v in c.node_ids() {
        let node = c.node(v);
        if node.is_gate()
            && node.fanin().is_empty()
            && node.function().is_some_and(|tt| tt.num_inputs() == 0)
            && !reach[v.index()]
        {
            reach[v.index()] = true;
            stack.push(v.index());
        }
    }
    while let Some(u) = stack.pop() {
        for &e in c.node(crate::circuit::NodeId(u as u32)).fanout() {
            let t = c.edge(e).to().index();
            if !reach[t] {
                reach[t] = true;
                stack.push(t);
            }
        }
    }
    c.node_ids().filter(|v| !reach[v.index()]).collect()
}

/// Checks that every gate has fanin at most `k`.
///
/// # Errors
///
/// Returns [`NetlistError::FaninTooLarge`] naming the first offender.
pub fn check_k_bounded(c: &Circuit, k: usize) -> Result<(), NetlistError> {
    for v in c.gate_ids() {
        let node = c.node(v);
        if node.fanin().len() > k {
            return Err(NetlistError::FaninTooLarge {
                node: node.name().to_string(),
                fanin: node.fanin().len(),
                bound: k,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::truth::TruthTable;

    fn valid_circuit() -> Circuit {
        let mut c = Circuit::new("ok");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::Zero]).unwrap();
        c
    }

    #[test]
    fn accepts_valid() {
        assert!(validate(&valid_circuit()).is_ok());
    }

    #[test]
    fn rejects_unconnected_gate() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap();
        c.add_gate("g", TruthTable::and(2)).unwrap();
        assert!(matches!(
            validate(&c),
            Err(NetlistError::UnconnectedGate(_))
        ));
    }

    #[test]
    fn rejects_unconnected_output() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap();
        c.add_output("o").unwrap();
        assert!(matches!(
            validate(&c),
            Err(NetlistError::UnconnectedOutput(_))
        ));
    }

    #[test]
    fn rejects_autonomous_loop() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap(); // a PI exists, but the loop ignores it
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(g1, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, o, vec![]).unwrap();
        assert!(matches!(
            validate(&c),
            Err(NetlistError::UnreachableFromInputs { .. })
        ));
    }

    #[test]
    fn constant_gate_counts_as_source() {
        let mut c = Circuit::new("t");
        let k = c.add_gate("const1", TruthTable::const_one(0)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(k, o, vec![]).unwrap();
        assert!(validate(&c).is_ok());
    }

    #[test]
    fn k_bound_check() {
        let c = valid_circuit();
        assert!(check_k_bounded(&c, 1).is_ok());
        let mut c2 = Circuit::new("t");
        let a = c2.add_input("a").unwrap();
        let b = c2.add_input("b").unwrap();
        let g = c2.add_gate("g", TruthTable::and(2)).unwrap();
        c2.connect(a, g, vec![]).unwrap();
        c2.connect(b, g, vec![]).unwrap();
        assert!(matches!(
            check_k_bounded(&c2, 1),
            Err(NetlistError::FaninTooLarge { .. })
        ));
        assert!(check_k_bounded(&c2, 2).is_ok());
    }
}
