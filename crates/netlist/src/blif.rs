//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! The paper's tool was embedded in SIS, whose native interchange format is
//! BLIF. This module parses the structural subset relevant to sequential
//! mapping — `.model`, `.inputs`, `.outputs`, `.names` (SOP planes),
//! `.latch`, `.end` — and writes circuits back out.
//!
//! BLIF is signal-based with explicit latch *nodes*; our representation is a
//! retiming graph with FFs on *edges*. The reader folds each latch into one
//! FF on every consumer edge of the latch output (recording its initial
//! value); the writer re-materialises shared latch chains per driver.
//! Latch init values map as `0 → 0`, `1 → 1`, `2`/`3`/absent → `X`.

use crate::bit::Bit;
use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::truth::{TruthTable, MAX_INPUTS};
use std::collections::HashMap;

#[derive(Debug)]
struct NamesBlock {
    inputs: Vec<String>,
    output: String,
    cubes: Vec<(String, char)>,
    line: usize,
}

#[derive(Debug)]
struct LatchDecl {
    input: String,
    output: String,
    init: Bit,
    line: usize,
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses a BLIF model into a [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input,
/// [`NetlistError::UndefinedSignal`] when a referenced signal has no driver,
/// and construction errors for inconsistent structure.
///
/// # Examples
///
/// ```
/// let src = "\
/// .model counter
/// .inputs en
/// .outputs q
/// .names en state q
/// 01 1
/// 10 1
/// .latch q state 0
/// .end
/// ";
/// let c = netlist::blif::parse_blif(src).unwrap();
/// assert_eq!(c.name(), "counter");
/// assert_eq!(c.ff_count_shared(), 1);
/// ```
pub fn parse_blif(text: &str) -> Result<Circuit, NetlistError> {
    let mut model_name = String::from("unnamed");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut names_blocks: Vec<NamesBlock> = Vec::new();
    let mut latches: Vec<LatchDecl> = Vec::new();

    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        let (continues, content) = match trimmed.strip_suffix('\\') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continues {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line_no, content.to_string()));
                } else if !content.trim().is_empty() {
                    logical.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut current_names: Option<NamesBlock> = None;
    let mut ended = false;
    for (line_no, line) in logical {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if ended {
            return Err(parse_err(line_no, "content after .end"));
        }
        if tokens[0].starts_with('.') {
            if let Some(block) = current_names.take() {
                names_blocks.push(block);
            }
            match tokens[0] {
                ".model" => {
                    if let Some(&name) = tokens.get(1) {
                        model_name = name.to_string();
                    }
                }
                ".inputs" => inputs.extend(tokens[1..].iter().map(|s| s.to_string())),
                ".outputs" => {
                    outputs.extend(tokens[1..].iter().map(|s| (s.to_string(), line_no)));
                }
                ".names" => {
                    if tokens.len() < 2 {
                        return Err(parse_err(line_no, ".names needs an output signal"));
                    }
                    let output = tokens[tokens.len() - 1].to_string();
                    let ins: Vec<String> = tokens[1..tokens.len() - 1]
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    if ins.len() > MAX_INPUTS {
                        return Err(parse_err(
                            line_no,
                            format!(
                                ".names with {} inputs exceeds limit {MAX_INPUTS}",
                                ins.len()
                            ),
                        ));
                    }
                    current_names = Some(NamesBlock {
                        inputs: ins,
                        output,
                        cubes: Vec::new(),
                        line: line_no,
                    });
                }
                ".latch" => {
                    // .latch input output [type control] [init]
                    let args = &tokens[1..];
                    if args.len() < 2 {
                        return Err(parse_err(line_no, ".latch needs input and output"));
                    }
                    let init_tok = match args.len() {
                        2 => None,
                        3 => Some(args[2]),
                        4 => None, // type + control, no init
                        5 => Some(args[4]),
                        _ => return Err(parse_err(line_no, "malformed .latch")),
                    };
                    let init = match init_tok {
                        Some("0") => Bit::Zero,
                        Some("1") => Bit::One,
                        Some("2") | Some("3") | None => Bit::X,
                        Some(other) => {
                            return Err(parse_err(line_no, format!("bad latch init `{other}`")))
                        }
                    };
                    latches.push(LatchDecl {
                        input: args[0].to_string(),
                        output: args[1].to_string(),
                        init,
                        line: line_no,
                    });
                }
                ".end" => ended = true,
                ".exdc" | ".subckt" | ".search" | ".gate" | ".mlatch" => {
                    return Err(parse_err(
                        line_no,
                        format!("unsupported BLIF construct `{}`", tokens[0]),
                    ));
                }
                other => {
                    // Ignore unknown dot-directives (e.g. .default_input_arrival).
                    let _ = other;
                }
            }
        } else {
            // A cube line inside a .names block.
            match current_names.as_mut() {
                Some(block) => {
                    let (pattern, value) = if block.inputs.is_empty() {
                        if tokens.len() != 1 || tokens[0].len() != 1 {
                            return Err(parse_err(line_no, "constant .names expects `0` or `1`"));
                        }
                        (String::new(), tokens[0].chars().next().expect("len 1"))
                    } else {
                        if tokens.len() != 2 {
                            return Err(parse_err(line_no, "cube must be `pattern value`"));
                        }
                        if tokens[0].len() != block.inputs.len() {
                            return Err(parse_err(line_no, "cube width mismatch"));
                        }
                        let v = tokens[1];
                        if v.len() != 1 {
                            return Err(parse_err(line_no, "cube output must be 0 or 1"));
                        }
                        (tokens[0].to_string(), v.chars().next().expect("len 1"))
                    };
                    if value != '0' && value != '1' {
                        return Err(parse_err(line_no, "cube output must be 0 or 1"));
                    }
                    if pattern.chars().any(|ch| !matches!(ch, '0' | '1' | '-')) {
                        return Err(parse_err(line_no, "cube pattern must use 0/1/-"));
                    }
                    block.cubes.push((pattern, value));
                }
                None => return Err(parse_err(line_no, "cube outside of .names")),
            }
        }
    }
    if let Some(block) = current_names.take() {
        names_blocks.push(block);
    }

    build_circuit(model_name, inputs, outputs, names_blocks, latches)
}

fn cube_tt(block: &NamesBlock) -> Result<TruthTable, NetlistError> {
    let n = block.inputs.len();
    if block.cubes.is_empty() {
        return Ok(TruthTable::const_zero(n));
    }
    let value = block.cubes[0].1;
    if block.cubes.iter().any(|(_, v)| *v != value) {
        return Err(parse_err(block.line, "mixed on-set/off-set cubes"));
    }
    let covered = |r: usize| {
        block.cubes.iter().any(|(pattern, _)| {
            pattern.chars().enumerate().all(|(i, ch)| match ch {
                '0' => r & (1 << i) == 0,
                '1' => r & (1 << i) != 0,
                _ => true,
            })
        })
    };
    Ok(TruthTable::from_fn(n, |r| {
        if value == '1' {
            covered(r)
        } else {
            !covered(r)
        }
    }))
}

fn build_circuit(
    model_name: String,
    inputs: Vec<String>,
    outputs: Vec<(String, usize)>,
    names_blocks: Vec<NamesBlock>,
    latches: Vec<LatchDecl>,
) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(model_name);
    let output_set: std::collections::HashSet<&str> =
        outputs.iter().map(|(name, _)| name.as_str()).collect();

    // Drivers: signal -> PI node / gate node / latch.
    let mut pi_nodes: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        let node_name = if output_set.contains(name.as_str()) {
            format!("{name}$g")
        } else {
            name.clone()
        };
        pi_nodes.insert(name.clone(), c.add_input(node_name)?);
    }
    let mut gate_nodes: HashMap<String, (NodeId, usize)> = HashMap::new();
    for (bi, block) in names_blocks.iter().enumerate() {
        if pi_nodes.contains_key(&block.output) {
            return Err(parse_err(
                block.line,
                format!(
                    "signal `{}` driven by both .inputs and .names",
                    block.output
                ),
            ));
        }
        if gate_nodes.contains_key(&block.output) {
            return Err(parse_err(
                block.line,
                format!("signal `{}` has multiple drivers", block.output),
            ));
        }
        let mut node_name = if output_set.contains(block.output.as_str()) {
            format!("{}$g", block.output)
        } else {
            block.output.clone()
        };
        while c.find(&node_name).is_some() {
            node_name.push_str("$g");
        }
        let tt = cube_tt(block)?;
        let id = c.add_gate(node_name, tt)?;
        gate_nodes.insert(block.output.clone(), (id, bi));
    }
    let mut latch_by_output: HashMap<&str, &LatchDecl> = HashMap::new();
    for latch in &latches {
        let out = latch.output.as_str();
        if pi_nodes.contains_key(out) || gate_nodes.contains_key(out) {
            return Err(parse_err(
                latch.line,
                format!("latch output `{out}` shadows an existing driver"),
            ));
        }
        if latch_by_output.insert(out, latch).is_some() {
            return Err(parse_err(
                latch.line,
                format!("latch output `{out}` has multiple drivers"),
            ));
        }
    }

    // Resolve a signal to (driving node, FF chain source→sink). `line` is
    // the use site, reported when the signal has no driver. Iterative —
    // a latch chain is bounded by the latch count, and a self-loop latch
    // (`.latch n n 0`) must yield a typed error, not unbounded recursion.
    fn resolve(
        signal: &str,
        line: usize,
        pi_nodes: &HashMap<String, NodeId>,
        gate_nodes: &HashMap<String, (NodeId, usize)>,
        latch_by_output: &HashMap<&str, &LatchDecl>,
    ) -> Result<(NodeId, Vec<Bit>), NetlistError> {
        let mut cur = signal;
        let mut use_line = line;
        // Collected sink-first while walking toward the driver; reversed
        // to the source→sink order the FF chains store.
        let mut chain = Vec::new();
        loop {
            if let Some(&id) = pi_nodes.get(cur) {
                chain.reverse();
                return Ok((id, chain));
            }
            if let Some(&(id, _)) = gate_nodes.get(cur) {
                chain.reverse();
                return Ok((id, chain));
            }
            if let Some(latch) = latch_by_output.get(cur) {
                if chain.len() >= latch_by_output.len() {
                    return Err(parse_err(
                        latch.line,
                        format!("latch cycle through `{signal}` with no logic"),
                    ));
                }
                chain.push(latch.init);
                use_line = latch.line;
                cur = &latch.input;
                continue;
            }
            return Err(NetlistError::UndefinedSignal {
                signal: cur.to_string(),
                line: use_line,
            });
        }
    }

    // Wire gates.
    for block in &names_blocks {
        let (gate_id, _) = gate_nodes[&block.output];
        for sig in &block.inputs {
            let (src, chain) = resolve(sig, block.line, &pi_nodes, &gate_nodes, &latch_by_output)?;
            c.connect(src, gate_id, chain)?;
        }
    }
    // Wire primary outputs.
    for (name, line) in &outputs {
        let po = c.add_output(name.clone())?;
        let (src, chain) = resolve(name, *line, &pi_nodes, &gate_nodes, &latch_by_output)?;
        c.connect(src, po, chain)?;
    }
    Ok(c)
}

/// Serialises a circuit to BLIF text.
///
/// FF chains are re-materialised as latches. When the fanout chains of a
/// driver agree on their shared prefix (see
/// [`Circuit::sharing_consistent`]) one shared latch chain `sig@1, sig@2,
/// …` is emitted per driver; otherwise that driver's chains are emitted
/// per-edge (`sig@e<edge>@<i>`), preserving simulation semantics exactly.
pub fn write_blif(c: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", sanitize(c.name())));
    let pi_names: Vec<String> = c
        .inputs()
        .iter()
        .map(|&v| sanitize(c.node(v).name()))
        .collect();
    let po_names: Vec<String> = c
        .outputs()
        .iter()
        .map(|&v| sanitize(c.node(v).name()))
        .collect();
    out.push_str(&format!(".inputs {}\n", pi_names.join(" ")));
    out.push_str(&format!(".outputs {}\n", po_names.join(" ")));

    // Decide sharing per driver.
    let mut latch_lines = String::new();
    let mut edge_signal: Vec<String> = vec![String::new(); c.num_edges()];
    for v in c.node_ids() {
        let node = c.node(v);
        if node.is_output() {
            continue;
        }
        let base = sanitize(node.name());
        let fanout = node.fanout();
        let chains: Vec<&[Bit]> = fanout.iter().map(|&e| c.edge(e).ffs()).collect();
        let maxw = chains.iter().map(|ch| ch.len()).max().unwrap_or(0);
        let mut shared_ok = true;
        let mut merged: Vec<Bit> = vec![Bit::X; maxw];
        for ch in &chains {
            for (i, &b) in ch.iter().enumerate() {
                match merged[i].merge(b) {
                    Some(m) => merged[i] = m,
                    None => {
                        shared_ok = false;
                    }
                }
            }
        }
        if shared_ok {
            for (i, &init) in merged.iter().enumerate() {
                let prev = if i == 0 {
                    base.clone()
                } else {
                    format!("{base}@{i}")
                };
                latch_lines.push_str(&format!(
                    ".latch {prev} {base}@{} {}\n",
                    i + 1,
                    init_char(init)
                ));
            }
            for &e in fanout {
                let w = c.edge(e).weight();
                edge_signal[e.index()] = if w == 0 {
                    base.clone()
                } else {
                    format!("{base}@{w}")
                };
            }
        } else {
            for &e in fanout {
                let ffs = c.edge(e).ffs();
                let mut prev = base.clone();
                for (i, &init) in ffs.iter().enumerate() {
                    let next = format!("{base}@e{}@{}", e.index(), i + 1);
                    latch_lines.push_str(&format!(".latch {prev} {next} {}\n", init_char(init)));
                    prev = next;
                }
                edge_signal[e.index()] = prev;
            }
        }
    }
    out.push_str(&latch_lines);

    // Gates.
    for v in c.gate_ids() {
        let node = c.node(v);
        let tt = node.function().expect("gate");
        let in_sigs: Vec<String> = node
            .fanin()
            .iter()
            .map(|&e| edge_signal[e.index()].clone())
            .collect();
        out.push_str(&format!(
            ".names {} {}\n",
            in_sigs.join(" "),
            sanitize(node.name())
        ));
        // Emit the on-set (or a single constant line).
        if tt.num_inputs() == 0 {
            if tt.eval_row(0) {
                out.push_str("1\n");
            }
        } else {
            for r in 0..tt.num_rows() {
                if tt.eval_row(r) {
                    let pattern: String = (0..tt.num_inputs())
                        .map(|i| if r & (1 << i) != 0 { '1' } else { '0' })
                        .collect();
                    out.push_str(&pattern);
                    out.push_str(" 1\n");
                }
            }
        }
    }
    // PO buffers where needed.
    for &po in c.outputs() {
        let node = c.node(po);
        let e = node.fanin()[0];
        let sig = &edge_signal[e.index()];
        let name = sanitize(node.name());
        if *sig != name {
            out.push_str(&format!(".names {sig} {name}\n1 1\n"));
        }
    }
    out.push_str(".end\n");
    out
}

fn init_char(b: Bit) -> char {
    match b {
        Bit::Zero => '0',
        Bit::One => '1',
        Bit::X => '3',
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|ch| if ch.is_whitespace() { '_' } else { ch })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{exhaustive_equiv, random_equiv};

    const COUNTER: &str = "\
.model counter
.inputs en
.outputs q
.names en state q
01 1
10 1
.latch q state 0
.end
";

    #[test]
    fn parse_counter() {
        let c = parse_blif(COUNTER).unwrap();
        assert_eq!(c.name(), "counter");
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.ff_count_shared(), 1);
        crate::validate::validate(&c).unwrap();
    }

    #[test]
    fn counter_counts() {
        let c = parse_blif(COUNTER).unwrap();
        let mut sim = crate::sim::Simulator::new(&c).unwrap();
        let one = vec![Bit::One];
        // XOR counter starting at 0: q toggles every enabled cycle.
        assert_eq!(sim.step(&one).unwrap(), vec![Bit::One]);
        assert_eq!(sim.step(&one).unwrap(), vec![Bit::Zero]);
        assert_eq!(sim.step(&[Bit::Zero]).unwrap(), vec![Bit::Zero]);
        assert_eq!(sim.step(&one).unwrap(), vec![Bit::One]);
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let c = parse_blif(COUNTER).unwrap();
        let text = write_blif(&c);
        let c2 = parse_blif(&text).unwrap();
        assert!(exhaustive_equiv(&c, &c2, 5).unwrap().is_equivalent());
        assert!(exhaustive_equiv(&c2, &c, 5).unwrap().is_equivalent());
    }

    #[test]
    fn latch_chain_accumulates() {
        let src = "\
.model chain
.inputs a
.outputs z
.names b z
1 1
.latch a m 0
.latch m b 1
.end
";
        let c = parse_blif(src).unwrap();
        assert_eq!(c.ff_count_shared(), 2);
        // Chain from source: first latch init 0 then 1, feeding gate `z`.
        let gate = c.find("z$g").or_else(|| c.find("z")).unwrap();
        let e = c.node(gate).fanin()[0];
        assert_eq!(c.edge(e).ffs(), &[Bit::Zero, Bit::One]);
    }

    #[test]
    fn off_set_cubes() {
        let src = "\
.model offset
.inputs a b
.outputs z
.names a b z
11 0
.end
";
        let c = parse_blif(src).unwrap();
        let g = c.find("z$g").or_else(|| c.find("z")).unwrap();
        let tt = c.node(g).function().unwrap();
        assert_eq!(*tt, TruthTable::nand(2));
    }

    #[test]
    fn dont_care_cube() {
        let src = "\
.model dc
.inputs a b c
.outputs z
.names a b c z
1-1 1
.end
";
        let c = parse_blif(src).unwrap();
        let g = c.find("z$g").or_else(|| c.find("z")).unwrap();
        let tt = c.node(g).function().unwrap();
        assert!(tt.eval(&[true, false, true]));
        assert!(tt.eval(&[true, true, true]));
        assert!(!tt.eval(&[true, true, false]));
    }

    #[test]
    fn constant_names() {
        let src = "\
.model k
.inputs a
.outputs z y
.names z
1
.names y
.end
";
        let c = parse_blif(src).unwrap();
        let z = c.find("z$g").unwrap();
        let y = c.find("y$g").unwrap();
        assert_eq!(c.node(z).function().unwrap().is_constant(), Some(true));
        assert_eq!(c.node(y).function().unwrap().is_constant(), Some(false));
    }

    #[test]
    fn undefined_signal_error() {
        let src = ".model u\n.inputs a\n.outputs z\n.names ghost z\n1 1\n.end\n";
        match parse_blif(src) {
            Err(NetlistError::UndefinedSignal { signal, line }) => {
                assert_eq!(signal, "ghost");
                assert_eq!(line, 4); // the .names line referencing it
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn undefined_latch_input_names_latch_line() {
        let src = ".model u\n.inputs a\n.outputs z\n.names q z\n1 1\n.latch ghost q 0\n.end\n";
        match parse_blif(src) {
            Err(NetlistError::UndefinedSignal { signal, line }) => {
                assert_eq!(signal, "ghost");
                assert_eq!(line, 6); // the .latch line
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn undefined_output_names_outputs_line() {
        let src = ".model u\n.inputs a\n.outputs z\n.end\n";
        match parse_blif(src) {
            Err(NetlistError::UndefinedSignal { signal, line }) => {
                assert_eq!(signal, "z");
                assert_eq!(line, 3); // the .outputs line
            }
            other => panic!("expected UndefinedSignal, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_latch_output_error() {
        let src = "\
.model m
.inputs a b
.outputs z
.names q z
1 1
.latch a q 0
.latch b q 1
.end
";
        match parse_blif(src) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 7);
                assert!(message.contains("multiple drivers"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_latch_is_a_typed_error() {
        // `.latch n n 0` is a register loop with no driving logic: the
        // edge-FF representation has no node to hang the chain on. This
        // used to recurse until the stack overflowed; it must be a
        // typed parse error. (`crates/fuzz/corpus/self_loop_latch.blif`
        // keeps the full-pipeline repro.)
        let src = "\
.model m
.inputs a
.outputs o
.latch n n 0
.names n a o
11 1
.end
";
        match parse_blif(src) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("latch cycle"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // A longer driverless loop is caught too, at any chain length.
        let src2 = "\
.model m
.inputs a
.outputs o
.latch p q 0
.latch q p 0
.names q a o
11 1
.end
";
        match parse_blif(src2) {
            Err(NetlistError::Parse { message, .. }) => {
                assert!(message.contains("latch cycle"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // Registered feedback *through a gate* stays accepted.
        let src3 = "\
.model m
.inputs a
.outputs o
.names a q n
01 1
10 1
.latch n q 0
.names n o
1 1
.end
";
        let c = parse_blif(src3).unwrap();
        assert_eq!(c.ff_count_shared(), 1);
    }

    #[test]
    fn latch_shadowing_gate_error() {
        let src = "\
.model m
.inputs a
.outputs z
.names a z
1 1
.latch a z 0
.end
";
        match parse_blif(src) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("shadows"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn gate_driving_an_input_error() {
        let src = "\
.model m
.inputs a b
.outputs z
.names b a
1 1
.names a z
1 1
.end
";
        match parse_blif(src) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains(".inputs"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn multiple_drivers_error() {
        let src = "\
.model m
.inputs a
.outputs z
.names a z
1 1
.names a z
0 1
.end
";
        assert!(matches!(parse_blif(src), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn latch_init_variants() {
        let src = "\
.model l
.inputs a
.outputs z
.names q z
1 1
.latch a q re clk 1
.end
";
        let c = parse_blif(src).unwrap();
        let g = c.find("z$g").or_else(|| c.find("z")).unwrap();
        let e = c.node(g).fanin()[0];
        assert_eq!(c.edge(e).ffs(), &[Bit::One]);
    }

    #[test]
    fn latch_all_arities() {
        // .latch input output [type control] [init] — each legal arity.
        let build = |latch: &str| {
            let src = format!(".model l\n.inputs a\n.outputs z\n.names q z\n1 1\n{latch}\n.end\n");
            parse_blif(&src).map(|c| {
                let g = c.find("z$g").or_else(|| c.find("z")).unwrap();
                let e = c.node(g).fanin()[0];
                c.edge(e).ffs().to_vec()
            })
        };
        // 2 tokens: no init → X.
        assert_eq!(build(".latch a q").unwrap(), vec![Bit::X]);
        // 3 tokens: explicit init.
        assert_eq!(build(".latch a q 0").unwrap(), vec![Bit::Zero]);
        assert_eq!(build(".latch a q 1").unwrap(), vec![Bit::One]);
        assert_eq!(build(".latch a q 2").unwrap(), vec![Bit::X]);
        assert_eq!(build(".latch a q 3").unwrap(), vec![Bit::X]);
        // 4 tokens: type + control, no init → X.
        assert_eq!(build(".latch a q re clk").unwrap(), vec![Bit::X]);
        // 5 tokens: type + control + init.
        assert_eq!(build(".latch a q fe clk 1").unwrap(), vec![Bit::One]);
        assert_eq!(build(".latch a q as NIL 0").unwrap(), vec![Bit::Zero]);
        // Errors: bad init digit, too few/many arguments.
        assert!(matches!(
            build(".latch a q 7"),
            Err(NetlistError::Parse { line: 6, .. })
        ));
        assert!(matches!(
            build(".latch a"),
            Err(NetlistError::Parse { line: 6, .. })
        ));
        assert!(matches!(
            build(".latch a q re clk 1 extra"),
            Err(NetlistError::Parse { line: 6, .. })
        ));
    }

    #[test]
    fn continuation_lines() {
        let src = ".model c\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n";
        let c = parse_blif(src).unwrap();
        assert_eq!(c.inputs().len(), 2);
    }

    #[test]
    fn comments_stripped() {
        let src = "# header\n.model c # name\n.inputs a\n.outputs z\n.names a z # buf\n1 1\n.end\n";
        let c = parse_blif(src).unwrap();
        assert_eq!(c.name(), "c");
    }

    #[test]
    fn write_then_parse_sequential_roundtrip() {
        // Build a circuit with a 2-deep shared chain and distinct taps.
        let mut c = Circuit::new("taps");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::Zero, Bit::One]).unwrap();
        c.connect(a, g2, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let text = write_blif(&c);
        let c2 = parse_blif(&text).unwrap();
        assert!(random_equiv(&c, &c2, 64, 17).unwrap().is_equivalent());
        assert!(random_equiv(&c2, &c, 64, 18).unwrap().is_equivalent());
        assert_eq!(c2.ff_count_shared(), 2);
    }

    #[test]
    fn inconsistent_sharing_roundtrip() {
        // Same driver, conflicting initial values on two branches.
        let mut c = Circuit::new("conflict");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![Bit::Zero]).unwrap();
        c.connect(a, g2, vec![Bit::One]).unwrap();
        c.connect(g1, o1, vec![]).unwrap();
        c.connect(g2, o2, vec![]).unwrap();
        let text = write_blif(&c);
        let c2 = parse_blif(&text).unwrap();
        assert!(random_equiv(&c, &c2, 64, 19).unwrap().is_equivalent());
    }

    #[test]
    fn po_directly_from_latched_pi() {
        let src = ".model d\n.inputs a\n.outputs z\n.latch a z 0\n.end\n";
        let c = parse_blif(src).unwrap();
        assert_eq!(c.ff_count_shared(), 1);
        let text = write_blif(&c);
        let c2 = parse_blif(&text).unwrap();
        assert!(exhaustive_equiv(&c, &c2, 4).unwrap().is_equivalent());
    }
}
