//! Error types for the netlist substrate.

/// Errors produced while building, validating or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node name was used twice.
    DuplicateName(String),
    /// A node was connected with the wrong number of fanins.
    ArityMismatch {
        /// Name of the offending node.
        node: String,
        /// Expected fanin count.
        expected: usize,
        /// Actual fanin count.
        actual: usize,
    },
    /// A primary input was given a fanin.
    InputHasFanin(String),
    /// A primary output was used as a driver.
    OutputHasFanout(String),
    /// The circuit has a register-free cycle.
    CombinationalCycle {
        /// Names of the nodes on or downstream of the cycle.
        nodes: Vec<String>,
    },
    /// Nodes not reachable from any primary input (a precondition of the
    /// label computations; see DESIGN.md).
    UnreachableFromInputs {
        /// Names of the unreachable nodes.
        nodes: Vec<String>,
    },
    /// A gate exceeds the fanin bound required by the mapper.
    FaninTooLarge {
        /// Name of the gate.
        node: String,
        /// Its fanin count.
        fanin: usize,
        /// The bound.
        bound: usize,
    },
    /// A primary output is missing its fanin.
    UnconnectedOutput(String),
    /// A gate has fewer fanins than its function's arity.
    UnconnectedGate(String),
    /// BLIF syntax error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A referenced signal was never defined.
    UndefinedSignal {
        /// The signal name.
        signal: String,
        /// 1-based line of the reference (0 when unknown).
        line: usize,
    },
    /// The two circuits given to an equivalence check have different
    /// interfaces.
    InterfaceMismatch(String),
    /// A simulation step was driven with the wrong number of PI values.
    PiVectorLength {
        /// Number of primary inputs the circuit has.
        expected: usize,
        /// Length of the vector supplied by the caller.
        actual: usize,
    },
    /// A bounded-exhaustive search was asked to enumerate more sequences
    /// than the checker's blow-up guard allows.
    SearchSpaceTooLarge {
        /// `log2` of the requested sequence count (`pis · depth`).
        bits: usize,
        /// Maximum supported `log2` sequence count.
        bound: usize,
    },
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetlistError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(f, "node `{node}` expects {expected} fanins, got {actual}"),
            NetlistError::InputHasFanin(n) => write!(f, "primary input `{n}` given a fanin"),
            NetlistError::OutputHasFanout(n) => write!(f, "primary output `{n}` used as driver"),
            NetlistError::CombinationalCycle { nodes } => {
                write!(f, "combinational cycle through {} node(s)", nodes.len())
            }
            NetlistError::UnreachableFromInputs { nodes } => write!(
                f,
                "{} node(s) unreachable from any primary input (e.g. `{}`)",
                nodes.len(),
                nodes.first().map(String::as_str).unwrap_or("?")
            ),
            NetlistError::FaninTooLarge { node, fanin, bound } => {
                write!(f, "gate `{node}` has fanin {fanin} > bound {bound}")
            }
            NetlistError::UnconnectedOutput(n) => write!(f, "primary output `{n}` unconnected"),
            NetlistError::UnconnectedGate(n) => write!(f, "gate `{n}` has unconnected fanins"),
            NetlistError::Parse { line, message } => write!(f, "BLIF line {line}: {message}"),
            NetlistError::UndefinedSignal { signal, line } => {
                if *line > 0 {
                    write!(f, "BLIF line {line}: undefined signal `{signal}`")
                } else {
                    write!(f, "undefined signal `{signal}`")
                }
            }
            NetlistError::InterfaceMismatch(m) => write!(f, "interface mismatch: {m}"),
            NetlistError::PiVectorLength { expected, actual } => {
                write!(
                    f,
                    "PI vector length mismatch: expected {expected}, got {actual}"
                )
            }
            NetlistError::SearchSpaceTooLarge { bits, bound } => {
                write!(
                    f,
                    "2^{bits} sequences exceed the exhaustive bound of 2^{bound}"
                )
            }
        }
    }
}

impl std::error::Error for NetlistError {}
