//! Circuit statistics used by the benchmark harness and reports.

use crate::circuit::Circuit;
use crate::error::NetlistError;

/// A summary of a circuit's size and timing, in the unit-delay model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates (the `N` column of Table 1 counts gates).
    pub gates: usize,
    /// Number of edges.
    pub edges: usize,
    /// FF count with register sharing (the `F`/`FF` columns of Table 1).
    pub ffs_shared: usize,
    /// FF count without sharing (sum of edge weights).
    pub ffs_total: usize,
    /// Maximum gate fanin.
    pub max_fanin: usize,
    /// Clock period (longest register-free gate path).
    pub clock_period: u64,
}

impl CircuitStats {
    /// Gathers statistics for a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the clock period is
    /// undefined.
    pub fn of(c: &Circuit) -> Result<CircuitStats, NetlistError> {
        Ok(CircuitStats {
            name: c.name().to_string(),
            inputs: c.inputs().len(),
            outputs: c.outputs().len(),
            gates: c.num_gates(),
            edges: c.num_edges(),
            ffs_shared: c.ff_count_shared(),
            ffs_total: c.ff_count_total(),
            max_fanin: c.max_fanin(),
            clock_period: c.clock_period()?,
        })
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: N={} F={} Φ={} (PI={} PO={} maxfanin={})",
            self.name,
            self.gates,
            self.ffs_shared,
            self.clock_period,
            self.inputs,
            self.outputs,
            self.max_fanin
        )
    }
}

/// Pre-flatten counts for one `.model` of a (possibly hierarchical)
/// BLIF file, as reported by `tmfrt stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCounts {
    /// Model name.
    pub name: String,
    /// Declared `.inputs`.
    pub inputs: usize,
    /// Declared `.outputs`.
    pub outputs: usize,
    /// Logic blocks (`.names`, `.gate`, `.conn` buffers).
    pub gates: usize,
    /// Latches (`.latch`, `.mlatch`).
    pub latches: usize,
    /// Child instantiations (`.subckt`).
    pub subckts: usize,
    /// Embedded KISS FSM blocks.
    pub kiss_blocks: usize,
    /// Declared `.blackbox`.
    pub blackbox: bool,
}

/// Renders a per-model counts table (aligned, deterministic), one line
/// per model.
pub fn render_model_table(models: &[ModelCounts]) -> String {
    let name_w = models
        .iter()
        .map(|m| m.name.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = format!(
        "{:name_w$}  {:>6} {:>6} {:>8} {:>8} {:>7} {:>5}\n",
        "model", "PI", "PO", "gates", "latches", "subckts", "kiss"
    );
    for m in models {
        out.push_str(&format!(
            "{:name_w$}  {:>6} {:>6} {:>8} {:>8} {:>7} {:>5}{}\n",
            m.name,
            m.inputs,
            m.outputs,
            m.gates,
            m.latches,
            m.subckts,
            m.kiss_blocks,
            if m.blackbox { "  [blackbox]" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::truth::TruthTable;

    #[test]
    fn stats_of_small_circuit() {
        let mut c = Circuit::new("s");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let s = CircuitStats::of(&c).unwrap();
        assert_eq!(s.gates, 1);
        assert_eq!(s.ffs_shared, 1);
        assert_eq!(s.clock_period, 1);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.outputs, 1);
        assert!(s.to_string().contains("N=1"));
    }

    #[test]
    fn model_table_renders_rows() {
        let rows = vec![
            ModelCounts {
                name: "top".into(),
                inputs: 2,
                outputs: 1,
                gates: 3,
                latches: 1,
                subckts: 2,
                kiss_blocks: 0,
                blackbox: false,
            },
            ModelCounts {
                name: "ram".into(),
                inputs: 8,
                outputs: 8,
                gates: 0,
                latches: 0,
                subckts: 0,
                kiss_blocks: 0,
                blackbox: true,
            },
        ];
        let t = render_model_table(&rows);
        assert!(t.contains("top"), "{t}");
        assert!(t.contains("[blackbox]"), "{t}");
        assert_eq!(t.lines().count(), 3);
    }
}
