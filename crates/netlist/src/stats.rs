//! Circuit statistics used by the benchmark harness and reports.

use crate::circuit::Circuit;
use crate::error::NetlistError;

/// A summary of a circuit's size and timing, in the unit-delay model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates (the `N` column of Table 1 counts gates).
    pub gates: usize,
    /// Number of edges.
    pub edges: usize,
    /// FF count with register sharing (the `F`/`FF` columns of Table 1).
    pub ffs_shared: usize,
    /// FF count without sharing (sum of edge weights).
    pub ffs_total: usize,
    /// Maximum gate fanin.
    pub max_fanin: usize,
    /// Clock period (longest register-free gate path).
    pub clock_period: u64,
}

impl CircuitStats {
    /// Gathers statistics for a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the clock period is
    /// undefined.
    pub fn of(c: &Circuit) -> Result<CircuitStats, NetlistError> {
        Ok(CircuitStats {
            name: c.name().to_string(),
            inputs: c.inputs().len(),
            outputs: c.outputs().len(),
            gates: c.num_gates(),
            edges: c.num_edges(),
            ffs_shared: c.ff_count_shared(),
            ffs_total: c.ff_count_total(),
            max_fanin: c.max_fanin(),
            clock_period: c.clock_period()?,
        })
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: N={} F={} Φ={} (PI={} PO={} maxfanin={})",
            self.name,
            self.gates,
            self.ffs_shared,
            self.clock_period,
            self.inputs,
            self.outputs,
            self.max_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::truth::TruthTable;

    #[test]
    fn stats_of_small_circuit() {
        let mut c = Circuit::new("s");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let s = CircuitStats::of(&c).unwrap();
        assert_eq!(s.gates, 1);
        assert_eq!(s.ffs_shared, 1);
        assert_eq!(s.clock_period, 1);
        assert_eq!(s.inputs, 1);
        assert_eq!(s.outputs, 1);
        assert!(s.to_string().contains("N=1"));
    }
}
