//! Randomized tests for the netlist substrate: truth tables, three-valued
//! logic consistency and the bit lattice. Deterministic (fixed seeds via
//! `engine::Rng64`) so failures reproduce exactly.

use engine::Rng64;
use netlist::{Bit, TruthTable};

fn random_tt(rng: &mut Rng64, max_inputs: usize) -> TruthTable {
    let k = rng.range_usize(1, max_inputs + 1);
    let bits: Vec<bool> = (0..1usize << k).map(|_| rng.chance(0.5)).collect();
    TruthTable::from_fn(k, |r| bits[r])
}

fn random_bit(rng: &mut Rng64) -> Bit {
    match rng.below(3) {
        0 => Bit::Zero,
        1 => Bit::One,
        _ => Bit::X,
    }
}

/// eval3 returns a defined value exactly when every completion of the
/// X inputs agrees — checked against brute-force enumeration.
#[test]
fn eval3_is_supremum_of_completions() {
    let mut rng = Rng64::new(0x3E1);
    for case in 0..256 {
        let tt = random_tt(&mut rng, 5);
        let k = tt.num_inputs();
        let inputs: Vec<Bit> = (0..k).map(|_| random_bit(&mut rng)).collect();
        let x_pos: Vec<usize> = (0..k).filter(|&i| inputs[i] == Bit::X).collect();
        let mut seen0 = false;
        let mut seen1 = false;
        for c in 0..(1usize << x_pos.len()) {
            let mut concrete: Vec<bool> = inputs
                .iter()
                .map(|b| b.to_bool().unwrap_or(false))
                .collect();
            for (j, &p) in x_pos.iter().enumerate() {
                concrete[p] = (c >> j) & 1 == 1;
            }
            if tt.eval(&concrete) {
                seen1 = true
            } else {
                seen0 = true
            }
        }
        let expected = match (seen0, seen1) {
            (true, false) => Bit::Zero,
            (false, true) => Bit::One,
            _ => Bit::X,
        };
        assert_eq!(tt.eval3(&inputs), expected, "case {case}");
    }
}

/// justify() always returns an assignment evaluating to the target.
#[test]
fn justify_sound() {
    let mut rng = Rng64::new(0x3E2);
    for case in 0..256 {
        let tt = random_tt(&mut rng, 5);
        for target in [Bit::Zero, Bit::One] {
            if let Some(j) = tt.justify(target) {
                assert_eq!(tt.eval3(&j), target, "case {case}");
            } else {
                // Target absent from range: the function is constant.
                assert_eq!(tt.is_constant(), Some(target == Bit::Zero), "case {case}");
            }
        }
    }
}

/// Cofactors recombine into the original (Shannon expansion).
#[test]
fn shannon_expansion() {
    let mut rng = Rng64::new(0x3E3);
    for case in 0..256 {
        let tt = random_tt(&mut rng, 4);
        let k = tt.num_inputs();
        let i = rng.below(k);
        let f0 = tt.cofactor(i, false);
        let f1 = tt.cofactor(i, true);
        for r in 0..(1usize << k) {
            let reduced = (r & ((1 << i) - 1)) | ((r >> (i + 1)) << i);
            let expected = if (r >> i) & 1 == 1 {
                f1.eval_row(reduced)
            } else {
                f0.eval_row(reduced)
            };
            assert_eq!(tt.eval_row(r), expected, "case {case}");
        }
    }
}

/// merge is commutative, refines is antisymmetric w.r.t. compatible.
#[test]
fn bit_lattice_laws() {
    let mut rng = Rng64::new(0x3E4);
    for case in 0..256 {
        let a = random_bit(&mut rng);
        let b = random_bit(&mut rng);
        assert_eq!(a.merge(b), b.merge(a), "case {case}");
        assert_eq!(a.compatible(b), a.merge(b).is_some(), "case {case}");
        if a.refines(b) && b.refines(a) {
            assert_eq!(a, b, "case {case}");
        }
        // X is the top of the refinement order.
        assert!(a.refines(Bit::X), "case {case}");
    }
}

/// Displaying twice yields the same string (pure function).
#[test]
fn tt_display_stable_under_roundtrip() {
    let mut rng = Rng64::new(0x3E5);
    for case in 0..256 {
        let tt = random_tt(&mut rng, 4);
        assert_eq!(tt.to_string(), tt.clone().to_string(), "case {case}");
    }
}
