//! Property tests for the netlist substrate: truth tables, three-valued
//! logic consistency, BLIF round-trips and decomposition.

use netlist::{Bit, TruthTable};
use proptest::prelude::*;

fn tt_strategy(max_inputs: usize) -> impl Strategy<Value = TruthTable> {
    (1..=max_inputs).prop_flat_map(|k| {
        prop::collection::vec(prop::bool::ANY, 1 << k)
            .prop_map(move |bits| TruthTable::from_fn(k, |r| bits[r]))
    })
}

fn bits_strategy(k: usize) -> impl Strategy<Value = Vec<Bit>> {
    prop::collection::vec(
        prop_oneof![Just(Bit::Zero), Just(Bit::One), Just(Bit::X)],
        k..=k,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// eval3 returns a defined value exactly when every completion of the
    /// X inputs agrees — checked against brute-force enumeration.
    #[test]
    fn eval3_is_supremum_of_completions(tt in tt_strategy(5), seed in 0u64..1000) {
        let k = tt.num_inputs();
        let mut state = seed.wrapping_mul(0x9E37_79B9).max(1);
        let mut next = || { state ^= state << 13; state ^= state >> 7; state };
        let inputs: Vec<Bit> = (0..k)
            .map(|_| match next() % 3 {
                0 => Bit::Zero,
                1 => Bit::One,
                _ => Bit::X,
            })
            .collect();
        let x_pos: Vec<usize> = (0..k).filter(|&i| inputs[i] == Bit::X).collect();
        let mut seen0 = false;
        let mut seen1 = false;
        for c in 0..(1usize << x_pos.len()) {
            let mut concrete: Vec<bool> = inputs
                .iter()
                .map(|b| b.to_bool().unwrap_or(false))
                .collect();
            for (j, &p) in x_pos.iter().enumerate() {
                concrete[p] = (c >> j) & 1 == 1;
            }
            if tt.eval(&concrete) { seen1 = true } else { seen0 = true }
        }
        let expected = match (seen0, seen1) {
            (true, false) => Bit::Zero,
            (false, true) => Bit::One,
            _ => Bit::X,
        };
        prop_assert_eq!(tt.eval3(&inputs), expected);
    }

    /// justify() always returns an assignment evaluating to the target.
    #[test]
    fn justify_sound(tt in tt_strategy(5)) {
        for target in [Bit::Zero, Bit::One] {
            if let Some(j) = tt.justify(target) {
                prop_assert_eq!(tt.eval3(&j), target);
            } else {
                // Target absent from range: the function is constant.
                prop_assert_eq!(tt.is_constant(), Some(target == Bit::Zero));
            }
        }
    }

    /// Cofactors recombine into the original (Shannon expansion).
    #[test]
    fn shannon_expansion(tt in tt_strategy(4), i in 0usize..4) {
        let k = tt.num_inputs();
        let i = i % k;
        let f0 = tt.cofactor(i, false);
        let f1 = tt.cofactor(i, true);
        for r in 0..(1usize << k) {
            let reduced = (r & ((1 << i) - 1)) | ((r >> (i + 1)) << i);
            let expected = if (r >> i) & 1 == 1 {
                f1.eval_row(reduced)
            } else {
                f0.eval_row(reduced)
            };
            prop_assert_eq!(tt.eval_row(r), expected);
        }
    }

    /// merge is commutative, refines is antisymmetric w.r.t. compatible.
    #[test]
    fn bit_lattice_laws(a in bits_strategy(1), b in bits_strategy(1)) {
        let (a, b) = (a[0], b[0]);
        prop_assert_eq!(a.merge(b), b.merge(a));
        prop_assert_eq!(a.compatible(b), a.merge(b).is_some());
        if a.refines(b) && b.refines(a) {
            prop_assert_eq!(a, b);
        }
        // X is the top of the refinement order.
        prop_assert!(a.refines(Bit::X));
    }

    /// NOT(NOT(x)) = x at the truth-table level.
    #[test]
    fn tt_display_stable_under_roundtrip(tt in tt_strategy(4)) {
        // Displaying twice yields the same string (pure function), and
        // equal tables display equally.
        prop_assert_eq!(tt.to_string(), tt.clone().to_string());
    }
}
