//! End-to-end `partition_map` checks: sequential equivalence against the
//! monolithic TurboMap-frt result and worker-count determinism.
//!
//! The in-profile tests follow the repo's debug-build convention and run
//! on a gate-capped subset of the table1 suite; the full 18-circuit
//! equivalence sweep is `#[ignore]`d here and executed in release mode
//! by the CI partition-smoke job (`cargo test -p partition --release --
//! --ignored`).

use netlist::{random_equiv_mode, write_blif, Circuit, EquivMode};
use partition::{partition_map, preview, PartitionOptions};
use workloads::{table1_suite, table1_suite_small};

const K: usize = 5;
/// Vectors for the equivalence protocol (the paper uses 3008; the
/// debug-profile subset uses fewer to keep `cargo test -q` fast).
const SMALL_VECTORS: usize = 512;
const FULL_VECTORS: usize = 3008;

/// Maps `c` both ways and asserts the stitched result is sequentially
/// equivalent to the monolithic one, with the expected Φ relation.
fn check_one(name: &str, c: &Circuit, partitions: usize, jobs: usize, vectors: usize) {
    let mono = turbomap::turbomap_frt(c, turbomap::Options::with_k(K))
        .unwrap_or_else(|e| panic!("{name}: monolithic map failed: {e}"));
    let mut opts = PartitionOptions::new(K, partitions);
    opts.jobs = jobs;
    let part =
        partition_map(c, &opts).unwrap_or_else(|e| panic!("{name}: partition_map failed: {e}"));

    // Both results are forward-retimed mappings of `c`, each possibly
    // pessimistic (`X`) in different registers — Compatibility is the
    // right relation between them.
    let r = random_equiv_mode(
        &mono.circuit,
        &part.circuit,
        vectors,
        0xC0FFEE ^ name.len() as u64,
        EquivMode::Compatibility,
    )
    .unwrap_or_else(|e| panic!("{name}: equivalence check failed to run: {e}"));
    assert!(
        r.is_equivalent(),
        "{name}: stitched circuit differs from monolithic mapping: {r:?}"
    );
    // Both must also conform to the source (stronger than pairwise
    // compatibility: defined source bits may not be contradicted).
    let rs = random_equiv_mode(
        c,
        &part.circuit,
        vectors,
        0xBEEF ^ name.len() as u64,
        EquivMode::Compatibility,
    )
    .unwrap();
    assert!(
        rs.is_equivalent(),
        "{name}: stitched circuit differs from the source"
    );

    // Frozen seams can only lose retiming freedom: the monolithic Φ is
    // optimal, so the stitched Φ may never beat it.
    assert!(
        part.report.phi >= mono.period,
        "{name}: partitioned Φ {} < monolithic Φ {}",
        part.report.phi,
        mono.period
    );
    assert_eq!(
        part.report.phi,
        part.circuit.clock_period().unwrap(),
        "{name}: report Φ disagrees with the stitched circuit"
    );
}

#[test]
fn stitched_equivalent_on_debug_subset() {
    // Debug-build-sized subset (same convention as bench's determinism
    // tests); the release-mode `--ignored` run covers all 18.
    let suite = table1_suite_small(60);
    assert!(!suite.is_empty());
    for (p, c) in &suite {
        check_one(p.name, c, 2, 2, SMALL_VECTORS);
    }
}

#[test]
#[ignore = "release-profile sweep over all 18 table1 circuits (CI partition-smoke)"]
fn stitched_equivalent_on_all_table1() {
    let suite = table1_suite();
    assert_eq!(suite.len(), 18);
    for (p, c) in &suite {
        check_one(p.name, c, 4, 4, FULL_VECTORS);
    }
}

#[test]
fn output_is_identical_across_worker_counts() {
    for (p, c) in &table1_suite_small(60) {
        let mut serial = PartitionOptions::new(K, 4);
        serial.jobs = 1;
        let mut wide = PartitionOptions::new(K, 4);
        wide.jobs = 4;
        let a = partition_map(c, &serial).unwrap();
        let b = partition_map(c, &wide).unwrap();
        assert_eq!(
            write_blif(&a.circuit),
            write_blif(&b.circuit),
            "{}: --jobs 1 vs --jobs 4 BLIF mismatch",
            p.name
        );
        assert_eq!(a.report.phi, b.report.phi);
        assert_eq!(a.report.luts, b.report.luts);
        assert_eq!(a.report.cut_ffs, b.report.cut_ffs);
    }
}

#[test]
fn preview_is_consistent_with_mapping() {
    let (p, c) = &table1_suite_small(60)[0];
    let pv = preview(c, 2, K);
    assert!(pv.blocks >= 1 && pv.blocks <= pv.requested_blocks);
    assert_eq!(pv.block_gates.iter().sum::<u64>(), c.num_gates() as u64);
    let part = partition_map(c, &PartitionOptions::new(K, 2)).unwrap();
    assert_eq!(part.report.blocks, pv.blocks, "{}", p.name);
    assert_eq!(part.report.cut_edges, pv.cut_edges);
    assert_eq!(part.report.cut_ffs, pv.cut_ffs);
    assert_eq!(part.report.clusters, pv.clusters);
}

#[test]
fn single_block_matches_monolithic_mapper() {
    let (p, c) = &table1_suite_small(60)[0];
    let mono = turbomap::turbomap_frt(c, turbomap::Options::with_k(K)).unwrap();
    let part = partition_map(c, &PartitionOptions::new(K, 1)).unwrap();
    assert_eq!(part.report.blocks, 1, "{}", p.name);
    assert_eq!(part.report.cut_edges, 0);
    assert_eq!(part.report.phi, mono.period);
    assert_eq!(part.report.luts, mono.luts);
    let r = random_equiv_mode(
        &mono.circuit,
        &part.circuit,
        SMALL_VECTORS,
        7,
        EquivMode::Conformance,
    )
    .unwrap();
    assert!(r.is_equivalent());
}
