//! Greedy/FM-style K-way assignment of FF-boundary clusters to blocks.
//!
//! The objective is the classic min-cut bipartitioning trade-off: place
//! comb-connected clusters so that as few seam registers as possible are
//! frozen (cut FFs), while no block exceeds a balance cap of
//! `ceil(total_gates / K) * balance`. The construction is a
//! deterministic two-stage heuristic:
//!
//! 1. **Greedy growth** — clusters in descending gate-weight order
//!    (ties by ascending cluster id) join the block they share the most
//!    seam FFs with, provided the cap allows; otherwise the lightest
//!    block takes them.
//! 2. **FM-style refinement** — bounded first-improvement passes move a
//!    cluster to another block whenever that strictly reduces the total
//!    cut FF count without breaching the cap.
//!
//! Every step iterates clusters and blocks in fixed index order, so the
//! assignment — and everything downstream of it — is byte-deterministic
//! for a given circuit and K.

use crate::cluster::Clusters;
use netlist::{Circuit, EdgeId};
use std::collections::HashMap;

/// Bounded number of FM refinement passes.
const MAX_FM_PASSES: usize = 8;

/// A K-way block assignment of a circuit's clusters.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Cluster index → block index.
    pub block_of_cluster: Vec<u32>,
    /// Node index → block index.
    pub block_of: Vec<u32>,
    /// Number of non-empty blocks (after first-appearance renumbering).
    pub num_blocks: usize,
    /// Gate count per block.
    pub block_gates: Vec<u64>,
    /// Cross-block edges in ascending edge-id order (each carries ≥ 1 FF).
    pub cut_edges: Vec<EdgeId>,
    /// Total FFs on cut edges.
    pub cut_ffs: u64,
}

impl Assignment {
    /// Block imbalance: heaviest block over the ideal `total / blocks`
    /// share (1.0 = perfectly balanced; 0.0 for gate-less designs).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.block_gates.iter().sum();
        if total == 0 || self.num_blocks == 0 {
            return 0.0;
        }
        let ideal = total as f64 / self.num_blocks as f64;
        let max = self.block_gates.iter().copied().max().unwrap_or(0);
        max as f64 / ideal
    }
}

/// Cluster adjacency: per cluster, `(neighbour, ff_weight)` sorted by
/// neighbour id. Only FF-carrying (cross-cluster) edges contribute.
fn cluster_adjacency(c: &Circuit, cl: &Clusters) -> Vec<Vec<(u32, u64)>> {
    let mut pair_w: HashMap<(u32, u32), u64> = HashMap::new();
    for id in c.edge_ids() {
        let e = c.edge(id);
        let a = cl.cluster_of[e.from().index()];
        let b = cl.cluster_of[e.to().index()];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        *pair_w.entry(key).or_insert(0) += e.weight() as u64;
    }
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); cl.num_clusters];
    for (&(a, b), &w) in &pair_w {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    for row in &mut adj {
        row.sort_unstable_by_key(|&(n, _)| n);
    }
    adj
}

/// Assigns `cl`'s clusters to at most `blocks` blocks under the balance
/// cap `ceil(total / blocks) * balance` (`balance` ≥ 1.0; values below
/// are clamped). `blocks` ≤ 1 or a single cluster yields one block.
pub fn assign(c: &Circuit, cl: &Clusters, blocks: usize, balance: f64) -> Assignment {
    let k = blocks.max(1).min(cl.num_clusters.max(1));
    let balance = if balance < 1.0 { 1.0 } else { balance };
    let total: u64 = cl.gates.iter().sum();
    let heaviest = cl.gates.iter().copied().max().unwrap_or(0);
    let cap = ((total.div_ceil(k as u64) as f64) * balance).ceil() as u64;
    let cap = cap.max(heaviest);

    let adj = cluster_adjacency(c, cl);
    let mut order: Vec<u32> = (0..cl.num_clusters as u32).collect();
    order.sort_by_key(|&x| (std::cmp::Reverse(cl.gates[x as usize]), x));

    let mut block_of_cluster: Vec<u32> = vec![u32::MAX; cl.num_clusters];
    let mut load = vec![0u64; k];
    for &x in &order {
        let w = cl.gates[x as usize];
        // Seam FFs shared with each block's already-placed clusters.
        let mut gain = vec![0u64; k];
        for &(nb, ffw) in &adj[x as usize] {
            let b = block_of_cluster[nb as usize];
            if b != u32::MAX {
                gain[b as usize] += ffw;
            }
        }
        let mut best: Option<usize> = None;
        for b in 0..k {
            if load[b] + w > cap {
                continue;
            }
            let better = match best {
                None => true,
                Some(cur) => {
                    (gain[b], std::cmp::Reverse(load[b]))
                        > (gain[cur], std::cmp::Reverse(load[cur]))
                }
            };
            if better {
                best = Some(b);
            }
        }
        let b = best.unwrap_or_else(|| {
            // Everything at cap (possible when one cluster dominates):
            // fall back to the lightest block.
            (0..k).min_by_key(|&b| (load[b], b)).unwrap_or(0)
        });
        block_of_cluster[x as usize] = b as u32;
        load[b] += w;
    }

    // FM-style refinement: first-improvement moves in cluster order.
    for _ in 0..MAX_FM_PASSES {
        let mut moved = false;
        for x in 0..cl.num_clusters {
            let s = block_of_cluster[x] as usize;
            let w = cl.gates[x];
            let mut ext = vec![0u64; k];
            for &(nb, ffw) in &adj[x] {
                ext[block_of_cluster[nb as usize] as usize] += ffw;
            }
            let mut best_t = s;
            let mut best_gain = 0i64;
            for t in 0..k {
                if t == s || load[t] + w > cap {
                    continue;
                }
                let gain = ext[t] as i64 - ext[s] as i64;
                if gain > best_gain {
                    best_gain = gain;
                    best_t = t;
                }
            }
            if best_t != s {
                block_of_cluster[x] = best_t as u32;
                load[s] -= w;
                load[best_t] += w;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Renumber blocks by first appearance over ascending cluster id so
    // empty blocks vanish and ids are stable.
    let mut remap: Vec<u32> = vec![u32::MAX; k];
    let mut num_blocks = 0usize;
    for b in block_of_cluster.iter_mut().take(cl.num_clusters) {
        let old = *b as usize;
        if remap[old] == u32::MAX {
            remap[old] = num_blocks as u32;
            num_blocks += 1;
        }
        *b = remap[old];
    }

    let block_of: Vec<u32> = cl
        .cluster_of
        .iter()
        .map(|&cx| block_of_cluster[cx as usize])
        .collect();
    let mut block_gates = vec![0u64; num_blocks];
    for x in 0..cl.num_clusters {
        block_gates[block_of_cluster[x] as usize] += cl.gates[x];
    }
    let mut cut_edges = Vec::new();
    let mut cut_ffs = 0u64;
    for id in c.edge_ids() {
        let e = c.edge(id);
        if block_of[e.from().index()] != block_of[e.to().index()] {
            debug_assert!(e.weight() > 0, "cut edge without FFs");
            cut_edges.push(id);
            cut_ffs += e.weight() as u64;
        }
    }
    Assignment {
        block_of_cluster,
        block_of,
        num_blocks,
        block_gates,
        cut_edges,
        cut_ffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster;
    use netlist::{Bit, TruthTable};

    /// A 4-stage FF-separated pipeline of single gates.
    fn pipeline(stages: usize) -> Circuit {
        let mut c = Circuit::new("pipe");
        let mut prev = c.add_input("in").unwrap();
        for s in 0..stages {
            let g = c.add_gate(format!("g{s}"), TruthTable::and(1)).unwrap();
            let ffs = if s == 0 { vec![] } else { vec![Bit::Zero] };
            c.connect(prev, g, ffs).unwrap();
            prev = g;
        }
        let o = c.add_output("out").unwrap();
        c.connect(prev, o, vec![]).unwrap();
        c
    }

    #[test]
    fn pipeline_splits_into_balanced_blocks() {
        let c = pipeline(4);
        let cl = cluster(&c);
        assert_eq!(cl.num_clusters, 4);
        let asg = assign(&c, &cl, 2, 1.1);
        assert_eq!(asg.num_blocks, 2);
        assert_eq!(asg.block_gates.iter().sum::<u64>(), 4);
        assert!(asg.block_gates.iter().all(|&g| g > 0));
        // Every cut edge carries a register.
        for &id in &asg.cut_edges {
            assert!(c.edge(id).weight() > 0);
        }
    }

    #[test]
    fn one_block_keeps_everything_together() {
        let c = pipeline(4);
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 1, 1.1);
        assert_eq!(asg.num_blocks, 1);
        assert!(asg.cut_edges.is_empty());
        assert_eq!(asg.cut_ffs, 0);
    }

    #[test]
    fn more_blocks_than_clusters_clamps() {
        let c = pipeline(2);
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 8, 1.1);
        assert!(asg.num_blocks <= cl.num_clusters);
    }

    #[test]
    fn assignment_is_deterministic() {
        let c = pipeline(6);
        let cl = cluster(&c);
        let a = assign(&c, &cl, 3, 1.1);
        let b = assign(&c, &cl, 3, 1.1);
        assert_eq!(a.block_of, b.block_of);
        assert_eq!(a.cut_ffs, b.cut_ffs);
    }
}
