//! Per-block circuit extraction with seam pseudo-PIs/POs.
//!
//! Each block becomes a standalone [`Circuit`] the mapper can run on:
//!
//! * member PIs/gates/POs are copied verbatim (pin order preserved);
//! * every cut edge `u → v` becomes a **seam**: the consumer block gains
//!   a pseudo-PI `__seam<i>` wired to `v`'s pin with a zero-FF edge, and
//!   (when `u` is a gate) the producer block gains a pseudo-PO
//!   `__seam<i>` fed by `u` with a zero-FF edge. The cut register chain
//!   itself stays *outside* both blocks — it is re-attached by
//!   [`crate::stitch`].
//!
//! The zero-FF seam edges are what freezes the boundary: a pseudo-PI/PO
//! has lag 0 under forward retiming, and a zero-weight edge to a lag-0
//! endpoint pins the adjacent node's lag to 0 too. No register can cross
//! a seam, so each block's retiming and initial-state computation is
//! locally complete.
//!
//! Node addition and edge creation follow fixed source-index order, so
//! extraction is deterministic.

use crate::assign::Assignment;
use crate::PartitionError;
use netlist::{Circuit, EdgeId, NodeId};

/// One cut edge turned into a pseudo-PI/PO pair.
#[derive(Debug, Clone, Copy)]
pub struct Seam {
    /// The cut edge in the source circuit.
    pub edge: EdgeId,
    /// Seam number (ascending cut-edge order); names the pseudo nodes.
    pub index: usize,
    /// Block of the producer node.
    pub producer_block: u32,
    /// Block of the consumer node.
    pub consumer_block: u32,
    /// True when the producer is a gate (and so owns a pseudo-PO); a
    /// primary-input producer is re-wired directly at stitch time.
    pub producer_is_gate: bool,
}

/// The extracted block circuits plus seam bookkeeping.
#[derive(Debug)]
pub struct ExtractedBlocks {
    /// One circuit per block, in block order.
    pub blocks: Vec<Circuit>,
    /// One seam per cut edge, ascending cut-edge order.
    pub seams: Vec<Seam>,
    /// Gate count per block.
    pub block_gates: Vec<u64>,
    /// Seam FFs charged to each block (the registers its pseudo-PIs
    /// consume).
    pub block_cut_ffs: Vec<u64>,
}

/// The pseudo-PI/PO name of seam `index`.
pub fn seam_name(index: usize) -> String {
    format!("__seam{index}")
}

/// Extracts one circuit per block of `asg` from `c`.
///
/// # Errors
///
/// [`PartitionError::NameClash`] when the source circuit already uses a
/// `__seam<i>` name this partition needs; [`PartitionError::Netlist`]
/// when reconstruction fails (indicates an internal invariant break).
pub fn extract(c: &Circuit, asg: &Assignment) -> Result<ExtractedBlocks, PartitionError> {
    let nb = asg.num_blocks;
    let mut blocks: Vec<Circuit> = (0..nb)
        .map(|b| Circuit::new(format!("{}__block{b}", c.name())))
        .collect();

    let mut seams: Vec<Seam> = Vec::with_capacity(asg.cut_edges.len());
    // Source edge id -> seam index, for consumer-side pin substitution.
    let mut seam_of_edge: Vec<Option<u32>> = vec![None; c.num_edges()];
    let mut block_cut_ffs = vec![0u64; nb];
    for (index, &id) in asg.cut_edges.iter().enumerate() {
        let e = c.edge(id);
        let name = seam_name(index);
        if c.find(&name).is_some() {
            return Err(PartitionError::NameClash(name));
        }
        let seam = Seam {
            edge: id,
            index,
            producer_block: asg.block_of[e.from().index()],
            consumer_block: asg.block_of[e.to().index()],
            producer_is_gate: c.node(e.from()).is_gate(),
        };
        block_cut_ffs[seam.consumer_block as usize] += e.weight() as u64;
        seam_of_edge[id.index()] = Some(index as u32);
        seams.push(seam);
    }

    // Pass 1: add nodes. Per block: member PIs (source input order), seam
    // PIs (seam order), gates (node order), member POs (source output
    // order), seam POs (seam order).
    let n = c.num_nodes();
    let mut local: Vec<Option<NodeId>> = vec![None; n];
    let mut seam_pi: Vec<Option<NodeId>> = vec![None; seams.len()];
    let mut seam_po: Vec<Option<NodeId>> = vec![None; seams.len()];
    for &pi in c.inputs() {
        let b = asg.block_of[pi.index()] as usize;
        local[pi.index()] = Some(blocks[b].add_input(c.node(pi).name().to_string())?);
    }
    for s in &seams {
        let b = s.consumer_block as usize;
        seam_pi[s.index] = Some(blocks[b].add_input(seam_name(s.index))?);
    }
    for g in c.gate_ids() {
        let b = asg.block_of[g.index()] as usize;
        let f = c
            .node(g)
            .function()
            .expect("gate nodes carry a function")
            .clone();
        local[g.index()] = Some(blocks[b].add_gate(c.node(g).name().to_string(), f)?);
    }
    for &po in c.outputs() {
        let b = asg.block_of[po.index()] as usize;
        local[po.index()] = Some(blocks[b].add_output(c.node(po).name().to_string())?);
    }
    for s in &seams {
        if s.producer_is_gate {
            let b = s.producer_block as usize;
            seam_po[s.index] = Some(blocks[b].add_output(seam_name(s.index))?);
        }
    }

    // Pass 2: connect every member sink's fanin pins in source pin order,
    // substituting seam PIs on cut edges; then feed the seam POs.
    for v in c.node_ids() {
        if c.node(v).is_input() {
            continue;
        }
        let b = asg.block_of[v.index()] as usize;
        let v_local = local[v.index()].expect("sink copied");
        for &eid in c.node(v).fanin() {
            let e = c.edge(eid);
            match seam_of_edge[eid.index()] {
                Some(s) => {
                    let pi = seam_pi[s as usize].expect("seam PI created");
                    blocks[b].connect(pi, v_local, Vec::new())?;
                }
                None => {
                    let u_local = local[e.from().index()].expect("source copied");
                    blocks[b].connect(u_local, v_local, e.ffs().to_vec())?;
                }
            }
        }
    }
    for s in &seams {
        if let Some(po) = seam_po[s.index] {
            let b = s.producer_block as usize;
            let u = c.edge(s.edge).from();
            let u_local = local[u.index()].expect("producer copied");
            blocks[b].connect(u_local, po, Vec::new())?;
        }
    }

    Ok(ExtractedBlocks {
        blocks,
        seams,
        block_gates: asg.block_gates.clone(),
        block_cut_ffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign;
    use crate::cluster::cluster;
    use netlist::{Bit, TruthTable};

    fn pipeline() -> Circuit {
        // Two register-separated stages of two gates each; the balance
        // cap (ceil(4/2)·1.1 = 3) forces a two-block split.
        let mut c = Circuit::new("pipe");
        let i = c.add_input("in").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(1)).unwrap();
        let g1b = c.add_gate("g1b", TruthTable::and(1)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(1)).unwrap();
        let g2b = c.add_gate("g2b", TruthTable::and(1)).unwrap();
        let o = c.add_output("out").unwrap();
        c.connect(i, g1, vec![]).unwrap();
        c.connect(g1, g1b, vec![]).unwrap();
        c.connect(g1b, g2, vec![Bit::Zero, Bit::One]).unwrap();
        c.connect(g2, g2b, vec![]).unwrap();
        c.connect(g2b, o, vec![]).unwrap();
        c
    }

    #[test]
    fn seams_replace_cut_registers() {
        let c = pipeline();
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 2, 1.1);
        assert_eq!(asg.num_blocks, 2);
        let ex = extract(&c, &asg).unwrap();
        assert_eq!(ex.blocks.len(), 2);
        assert_eq!(ex.seams.len(), 1);
        let s = ex.seams[0];
        assert!(s.producer_is_gate);
        // The cut chain stays outside both blocks.
        for b in &ex.blocks {
            assert_eq!(b.ff_count_total(), 0);
        }
        // Producer block exposes the seam PO; consumer block the seam PI.
        let prod = &ex.blocks[s.producer_block as usize];
        let cons = &ex.blocks[s.consumer_block as usize];
        assert!(prod.find("__seam0").is_some());
        assert!(cons.find("__seam0").is_some());
        assert_eq!(ex.block_cut_ffs[s.consumer_block as usize], 2);
        // Both blocks are well-formed two-gate circuits.
        assert_eq!(prod.num_gates() + cons.num_gates(), 4);
    }

    #[test]
    fn pin_order_is_preserved() {
        // g takes (x, y) in that order; the seam replaces pin 0 only.
        let mut c = Circuit::new("pins");
        let x = c.add_input("x").unwrap();
        let y = c.add_input("y").unwrap();
        let a = c.add_gate("a", TruthTable::and(1)).unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(x, a, vec![]).unwrap();
        c.connect(a, g, vec![Bit::Zero]).unwrap();
        c.connect(y, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 2, 1.5);
        if asg.num_blocks < 2 {
            return;
        }
        let ex = extract(&c, &asg).unwrap();
        let cons = &ex.blocks[ex.seams[0].consumer_block as usize];
        let gl = cons.find("g").unwrap();
        let pins = cons.node(gl).fanin();
        assert_eq!(pins.len(), 2);
        // Pin 0 must now come from the seam PI, pin 1 from y.
        assert_eq!(cons.node(cons.edge(pins[0]).from()).name(), "__seam0");
        assert_eq!(cons.node(cons.edge(pins[1]).from()).name(), "y");
    }
}
