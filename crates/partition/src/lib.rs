//! Partition-and-conquer mapping for million-gate designs.
//!
//! The paper's Φ binary search is monolithic — one design, one search —
//! so its ceiling is one machine's memory and the algorithm's
//! superlinear terms. This crate decomposes a retiming graph at
//! flip-flop boundaries, maps each block independently with
//! TurboMap-frt, and stitches the mapped blocks back together:
//!
//! 1. [`cluster`] — SCC condensation (reusing `graphalgo::scc`) plus a
//!    comb-merge pass, so every cross-cluster edge carries ≥ 1 FF.
//! 2. [`assign`] — greedy/FM-style min-cut assignment of clusters to K
//!    blocks under a balance constraint.
//! 3. [`contract`] — boundary-register timing contracts: each cut
//!    register gets an arrival/required budget derived from a
//!    whole-design Φ estimate, allocated by a slack-budgeting pass over
//!    the condensation DAG.
//! 4. [`extract`] — per-block circuits with frozen seam pseudo-PIs/POs.
//! 5. Per-block TurboMap-frt runs fanned out on the `engine` batch pool
//!    — deterministic block ordering, byte-identical at any worker
//!    count.
//! 6. [`stitch`] — merge mapped blocks, re-attach seam register chains
//!    (initial states preserved verbatim — seams are never retimed, and
//!    in-block states come from the forward-retiming computation), and
//!    legalize the result.
//!
//! Because every seam is frozen, the stitched circuit is sequentially
//! equivalent to the monolithic mapping of the same source; the price is
//! lost retiming freedom at the boundary, surfaced as the **Φ gap**
//! (`partitioned Φ ≥ monolithic Φ`) that `benchdiff --phi-gap` bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod cluster;
pub mod contract;
pub mod extract;
pub mod stitch;

pub use assign::{assign as assign_blocks, Assignment};
pub use cluster::{cluster as cluster_circuit, Clusters, Condensation};
pub use contract::{Contract, ContractSet};
pub use extract::{extract as extract_blocks, ExtractedBlocks, Seam};
pub use stitch::{stitch as stitch_blocks, StitchStats};

use engine::batch::{run_batch, BatchOptions, JobSpec};
use engine::hist::Metric;
use engine::mem::{self, MemPhase};
use engine::{telemetry, trace};
use netlist::{Circuit, NetlistError};
use std::time::Duration;

/// Errors from the partition pipeline.
#[derive(Debug)]
pub enum PartitionError {
    /// Netlist reconstruction failed (internal invariant break).
    Netlist(NetlistError),
    /// A seam pseudo-node name is already taken in the source circuit.
    NameClash(String),
    /// A block's mapper run failed.
    Block {
        /// Block circuit name.
        block: String,
        /// The mapper's error (or panic message / deadline report).
        error: String,
    },
    /// Seam drivers form a wire-only cycle (no node to host the loop).
    SeamCycle,
    /// The merged circuit's FF fanout sharing is inconsistent.
    SharingConflict,
    /// Invariant violation inside stitch-and-legalize.
    Internal(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Netlist(e) => write!(f, "partition netlist error: {e}"),
            PartitionError::NameClash(n) => {
                write!(f, "seam name `{n}` already exists in the source circuit")
            }
            PartitionError::Block { block, error } => {
                write!(f, "block `{block}` failed to map: {error}")
            }
            PartitionError::SeamCycle => write!(f, "seam drivers form a wire-only cycle"),
            PartitionError::SharingConflict => {
                write!(f, "stitched circuit has inconsistent FF fanout sharing")
            }
            PartitionError::Internal(m) => write!(f, "partition internal error: {m}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<NetlistError> for PartitionError {
    fn from(e: NetlistError) -> PartitionError {
        PartitionError::Netlist(e)
    }
}

/// Options for [`partition_map`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// LUT input bound K (as in `turbomap::Options`).
    pub k: usize,
    /// Requested number of blocks (≥ 1; clamped to the cluster count).
    pub partitions: usize,
    /// Block-level worker threads (0 → one worker). Any value yields
    /// byte-identical results.
    pub jobs: usize,
    /// Per-block FRTcheck sweep workers (0 → auto), forwarded to the
    /// block mapper.
    pub sweep_workers: usize,
    /// Balance cap multiplier over the ideal `gates / partitions` share.
    pub balance: f64,
    /// Soft per-block mapping deadline.
    pub timeout: Option<Duration>,
}

impl PartitionOptions {
    /// Options mapping into `partitions` blocks with LUT bound `k` and
    /// the default balance cap (1.1), serial fan-out, auto sweeps.
    pub fn new(k: usize, partitions: usize) -> PartitionOptions {
        PartitionOptions {
            k,
            partitions,
            jobs: 0,
            sweep_workers: 1,
            balance: 1.1,
            timeout: None,
        }
    }
}

/// Picks a block count from the flattened gate count: one block per
/// ~100k gates, capped at 16 — the `--partitions auto` policy.
pub fn auto_blocks(gates: usize) -> usize {
    (gates / 100_000).clamp(1, 16)
}

/// What happened to one block.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Block circuit name (`<design>__block<i>`).
    pub name: String,
    /// Gates handed to the block mapper.
    pub gates: u64,
    /// Seam FFs consumed by the block's pseudo-PIs.
    pub cut_ffs: u64,
    /// The block's mapped Φ (0 for gate-less passthrough blocks).
    pub phi: u64,
    /// LUTs in the mapped block.
    pub luts: usize,
    /// Wall-clock the block spent on its worker.
    pub wall: Duration,
    /// True when the block had no gates and skipped the mapper.
    pub passthrough: bool,
}

/// Statistics of one partitioned mapping run.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Blocks requested (after `auto` resolution).
    pub requested_blocks: usize,
    /// Non-empty blocks actually mapped.
    pub blocks: usize,
    /// SCC components of the retiming graph.
    pub components: usize,
    /// FF-boundary clusters (atomic assignment units).
    pub clusters: usize,
    /// Cut edges between blocks.
    pub cut_edges: usize,
    /// Registers frozen on seams.
    pub cut_ffs: u64,
    /// Whole-design Φ estimate behind the boundary contracts.
    pub phi_estimate: u64,
    /// Minimum contract slack over all seams.
    pub min_slack: u64,
    /// Boundary contracts issued.
    pub contracts: usize,
    /// Contracts whose adjacent blocks mapped above the required budget.
    pub contract_violations: usize,
    /// Block imbalance (heaviest / ideal share).
    pub imbalance: f64,
    /// Per-block outcomes, block order.
    pub block_outcomes: Vec<BlockOutcome>,
    /// Φ of the stitched circuit.
    pub phi: u64,
    /// LUTs in the stitched circuit.
    pub luts: usize,
    /// Registers in the stitched circuit (shared-chain count).
    pub ffs: usize,
    /// Seam registers restored by stitching.
    pub stitch: StitchStats,
}

/// A partitioned mapping: the stitched circuit plus its report.
#[derive(Debug)]
pub struct PartitionedMapping {
    /// The stitched, legalized LUT network.
    pub circuit: Circuit,
    /// Per-block and whole-run statistics.
    pub report: PartitionReport,
}

/// A mapping-free partition preview (`tmfrt stats --partition-preview`).
#[derive(Debug, Clone)]
pub struct PartitionPreview {
    /// Blocks requested.
    pub requested_blocks: usize,
    /// Non-empty blocks.
    pub blocks: usize,
    /// SCC components.
    pub components: usize,
    /// FF-boundary clusters.
    pub clusters: usize,
    /// Gate count per block.
    pub block_gates: Vec<u64>,
    /// Cut edges between blocks.
    pub cut_edges: usize,
    /// Registers on cut edges.
    pub cut_ffs: u64,
    /// Block imbalance (heaviest / ideal share).
    pub imbalance: f64,
    /// Whole-design Φ estimate.
    pub phi_estimate: u64,
    /// Minimum contract slack.
    pub min_slack: u64,
    /// Contracts that would be issued.
    pub contracts: usize,
}

/// Plans a partition without mapping it.
pub fn preview(source: &Circuit, partitions: usize, k: usize) -> PartitionPreview {
    let cl = cluster::cluster(source);
    let asg = assign::assign(source, &cl, partitions.max(1), 1.1);
    let con = contract::budget(source, &cl, &asg, k);
    PartitionPreview {
        requested_blocks: partitions.max(1),
        blocks: asg.num_blocks,
        components: cl.condensation.len(),
        clusters: cl.num_clusters,
        imbalance: asg.imbalance(),
        block_gates: asg.block_gates.clone(),
        cut_edges: asg.cut_edges.len(),
        cut_ffs: asg.cut_ffs,
        phi_estimate: con.phi_estimate,
        min_slack: con.min_slack,
        contracts: con.contracts.len(),
    }
}

/// One block's mapper result, as returned by the fan-out jobs.
struct BlockMapped {
    circuit: Circuit,
    phi: u64,
    luts: usize,
    passthrough: bool,
}

/// Maps `source` by partitioning into `opts.partitions` blocks, mapping
/// each with TurboMap-frt on the engine pool, and stitching the results.
///
/// Deterministic for a fixed `(source, opts.k, opts.partitions,
/// opts.sweep_workers)` regardless of `opts.jobs`.
///
/// # Errors
///
/// [`PartitionError`] on any planning, mapping, or stitching failure —
/// including a block exceeding `opts.timeout`.
pub fn partition_map(
    source: &Circuit,
    opts: &PartitionOptions,
) -> Result<PartitionedMapping, PartitionError> {
    let _span = trace::span1("partition_map", "blocks", opts.partitions as u64);
    let (cl_stats, asg_meta, con, mut ex) = {
        let _mem = mem::scope(MemPhase::Partition);
        let _plan = trace::span("partition_plan");
        let cl = cluster::cluster(source);
        let asg = assign::assign(source, &cl, opts.partitions.max(1), opts.balance);
        let con = contract::budget(source, &cl, &asg, opts.k);
        let ex = extract::extract(source, &asg)?;
        (
            (cl.condensation.len(), cl.num_clusters),
            (
                asg.num_blocks,
                asg.cut_edges.len(),
                asg.cut_ffs,
                asg.imbalance(),
            ),
            con,
            ex,
        )
    };
    let (components, clusters) = cl_stats;
    let (num_blocks, cut_edges, cut_ffs, imbalance) = asg_meta;

    let block_circuits = std::mem::take(&mut ex.blocks);
    let mut specs: Vec<JobSpec<BlockMapped>> = Vec::with_capacity(block_circuits.len());
    for (b, circuit) in block_circuits.into_iter().enumerate() {
        let gates = ex.block_gates[b];
        let block_cut = ex.block_cut_ffs[b];
        let name = circuit.name().to_string();
        let mut mopts = turbomap::Options::with_k(opts.k);
        mopts.sweep_workers = opts.sweep_workers;
        specs.push(JobSpec::new(name, move || {
            let _s = trace::span1("partition_block", "block", b as u64);
            telemetry::record(Metric::PartitionBlockGates, gates);
            telemetry::record(Metric::PartitionCutFfs, block_cut);
            if gates == 0 {
                return Ok(BlockMapped {
                    circuit,
                    phi: 0,
                    luts: 0,
                    passthrough: true,
                });
            }
            let r = turbomap::turbomap_frt(&circuit, mopts).map_err(|e| e.to_string())?;
            Ok(BlockMapped {
                circuit: r.circuit,
                phi: r.period,
                luts: r.luts,
                passthrough: false,
            })
        }));
    }
    let batch = BatchOptions {
        jobs: opts.jobs,
        timeout: opts.timeout,
    };
    let reports = run_batch(specs, &batch);

    let mut mapped: Vec<Circuit> = Vec::with_capacity(reports.len());
    let mut block_outcomes: Vec<BlockOutcome> = Vec::with_capacity(reports.len());
    for (b, r) in reports.into_iter().enumerate() {
        // Fold each block's counters, histograms, and mem phases into
        // the calling thread so job-level telemetry sees the whole run.
        telemetry::merge_local(&r.telemetry);
        trace::event_with(
            "partition_block_done",
            [
                Some(("block", b as u64)),
                Some(("wall_nanos", r.wall.as_nanos() as u64)),
            ],
        );
        let outcome = match r.outcome {
            engine::batch::JobOutcome::Completed(m) => m,
            engine::batch::JobOutcome::Failed(e) => {
                return Err(PartitionError::Block {
                    block: r.name,
                    error: e,
                })
            }
            engine::batch::JobOutcome::Panicked(e) => {
                return Err(PartitionError::Block {
                    block: r.name,
                    error: format!("panicked: {e}"),
                })
            }
            engine::batch::JobOutcome::DeadlineExceeded { limit } => {
                return Err(PartitionError::Block {
                    block: r.name,
                    error: format!("deadline exceeded ({limit:?})"),
                })
            }
        };
        block_outcomes.push(BlockOutcome {
            name: r.name,
            gates: ex.block_gates[b],
            cut_ffs: ex.block_cut_ffs[b],
            phi: outcome.phi,
            luts: outcome.luts,
            wall: r.wall,
            passthrough: outcome.passthrough,
        });
        mapped.push(outcome.circuit);
    }

    let (stitched, stitch_stats) = {
        let _mem = mem::scope(MemPhase::Partition);
        let _s = trace::span("partition_stitch");
        stitch::stitch(source, &ex, &mapped)?
    };

    // A contract is violated when either adjacent block mapped above the
    // required budget — the estimate was too optimistic for that seam.
    let mut contract_violations = 0usize;
    for ct in &con.contracts {
        let s = ex
            .seams
            .iter()
            .find(|s| s.edge == ct.edge)
            .expect("contract matches a seam");
        let pb = &block_outcomes[s.producer_block as usize];
        let cb = &block_outcomes[s.consumer_block as usize];
        if pb.phi > ct.required || cb.phi > ct.required {
            contract_violations += 1;
        }
    }

    let phi = stitched
        .clock_period()
        .map_err(|e| PartitionError::Internal(format!("stitched period: {e}")))?;
    let luts = stitched.num_gates();
    let ffs = stitched.ff_count_shared();
    let report = PartitionReport {
        requested_blocks: opts.partitions.max(1),
        blocks: num_blocks,
        components,
        clusters,
        cut_edges,
        cut_ffs,
        phi_estimate: con.phi_estimate,
        min_slack: con.min_slack,
        contracts: con.contracts.len(),
        contract_violations,
        imbalance,
        block_outcomes,
        phi,
        luts,
        ffs,
        stitch: stitch_stats,
    };
    Ok(PartitionedMapping {
        circuit: stitched,
        report,
    })
}
