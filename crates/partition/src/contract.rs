//! Boundary-register timing contracts via slack budgeting on the
//! condensation DAG.
//!
//! Each cut register chain gets an **arrival / required budget** derived
//! from a whole-design Φ estimate, in the spirit of network-flow slack
//! budgeting for simultaneous retiming (Yu et al.): registers bound
//! every combinational path, so a register-to-register path must fit in
//! one period. The estimate works in gate levels on the SCC condensation
//! (components arrive in reverse topological order, so both passes are
//! single linear sweeps):
//!
//! * `din(comp)` — longest gate-level chain from any register output or
//!   PI down to the *outputs* of `comp`, following zero-FF edges only
//!   (FF-carrying edges restart timing at 0).
//! * `dout(comp)` — the mirror image: longest chain from the *inputs*
//!   of `comp` to any register input or PO.
//!
//! Gate levels convert to LUT levels by dividing by `floor(log2 K)`
//! (the depth a K-LUT absorbs for 2-input logic), giving the design
//! estimate `Φ_est = max lut(din)`. A cut register on edge `u → v` is
//! then budgeted `arrival = lut(din(comp(u)))` (producer must deliver by
//! then), `required = Φ_est` (the consumer has a full period from the
//! register output), and
//! `slack = min(Φ_est − arrival, Φ_est − lut(dout(comp(v))))`.
//!
//! The budgets are estimates, not guarantees — the per-block mapper
//! reports a **contract violation** when a block's mapped Φ exceeds the
//! required budget of a seam it touches.

use crate::assign::Assignment;
use crate::cluster::Clusters;
use netlist::{Circuit, EdgeId};

/// The timing budget of one cut register chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contract {
    /// The cut edge in the source circuit.
    pub edge: EdgeId,
    /// Registers on the chain.
    pub ffs: usize,
    /// Producer-side arrival budget (LUT levels into the period).
    pub arrival: u64,
    /// Required time: the whole-design Φ estimate.
    pub required: u64,
    /// `min(required − arrival, required − consumer_need)`; 0 marks a
    /// seam on the estimated critical path.
    pub slack: u64,
}

/// All boundary contracts of a partition, plus the design estimate.
#[derive(Debug, Clone)]
pub struct ContractSet {
    /// Whole-design Φ estimate in LUT levels (≥ 1 for any circuit with
    /// gates).
    pub phi_estimate: u64,
    /// Minimum slack over all contracts (`phi_estimate` when no seams).
    pub min_slack: u64,
    /// One contract per cut edge, ascending edge-id order (matching
    /// [`Assignment::cut_edges`]).
    pub contracts: Vec<Contract>,
}

/// Gate levels a K-input LUT absorbs per level of 2-input logic.
fn lut_levels(gate_levels: u64, k: usize) -> u64 {
    let lg = usize::max(
        1,
        usize::BITS as usize - 1 - (k.max(2)).leading_zeros() as usize,
    );
    gate_levels.div_ceil(lg as u64)
}

/// Budgets every cut edge of `asg`, deriving the whole-design Φ estimate
/// from two linear slack-budgeting sweeps over the condensation DAG.
pub fn budget(c: &Circuit, cl: &Clusters, asg: &Assignment, k: usize) -> ContractSet {
    let cond = &cl.condensation;
    let nc = cond.len();
    // Per-component gate cost. Multi-node components (sequential loops)
    // are costed at their full gate count — a conservative bound on the
    // comb depth inside the loop.
    let mut cost = vec![0u64; nc];
    for g in c.gate_ids() {
        cost[cond.comp_of[g.index()] as usize] += 1;
    }
    // Zero-FF cross-component adjacency.
    let mut comb_out: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for id in c.edge_ids() {
        let e = c.edge(id);
        if e.weight() != 0 {
            continue;
        }
        let a = cond.comp_of[e.from().index()];
        let b = cond.comp_of[e.to().index()];
        if a != b {
            comb_out[a as usize].push(b);
        }
    }
    // Components are in reverse topological order: every edge goes from
    // a higher index to a lower one. Descending = predecessors first.
    let mut din = cost.clone();
    for u in (0..nc).rev() {
        for &v in &comb_out[u] {
            let cand = din[u] + cost[v as usize];
            if cand > din[v as usize] {
                din[v as usize] = cand;
            }
        }
    }
    // Ascending = successors first.
    let mut dout = cost.clone();
    for u in 0..nc {
        for &v in &comb_out[u] {
            let cand = cost[u] + dout[v as usize];
            if cand > dout[u] {
                dout[u] = cand;
            }
        }
    }
    let max_depth = din.iter().copied().max().unwrap_or(0);
    let phi_estimate = lut_levels(max_depth, k).max(1);
    let mut contracts = Vec::with_capacity(asg.cut_edges.len());
    let mut min_slack = phi_estimate;
    for &id in &asg.cut_edges {
        let e = c.edge(id);
        let arrival = lut_levels(din[cond.comp_of[e.from().index()] as usize], k);
        let need = lut_levels(dout[cond.comp_of[e.to().index()] as usize], k);
        let slack = (phi_estimate - arrival).min(phi_estimate - need);
        min_slack = min_slack.min(slack);
        contracts.push(Contract {
            edge: id,
            ffs: e.weight(),
            arrival,
            required: phi_estimate,
            slack,
        });
    }
    ContractSet {
        phi_estimate,
        min_slack,
        contracts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::assign;
    use crate::cluster::cluster;
    use netlist::{Bit, TruthTable};

    /// `in -> a -> b -FF-> c -> out` — two comb stages of depth 2 and 1.
    fn staged() -> Circuit {
        let mut c = Circuit::new("staged");
        let i = c.add_input("in").unwrap();
        let a = c.add_gate("a", TruthTable::and(1)).unwrap();
        let b = c.add_gate("b", TruthTable::and(1)).unwrap();
        let g = c.add_gate("c", TruthTable::and(1)).unwrap();
        let o = c.add_output("out").unwrap();
        c.connect(i, a, vec![]).unwrap();
        c.connect(a, b, vec![]).unwrap();
        c.connect(b, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        c
    }

    #[test]
    fn estimate_covers_deepest_stage() {
        let c = staged();
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 2, 1.5);
        let cs = budget(&c, &cl, &asg, 4);
        // Deepest comb chain is a->b: 2 gate levels -> 1 LUT level at K=4.
        assert_eq!(cs.phi_estimate, 1);
        assert!(cs.min_slack <= cs.phi_estimate);
        if asg.num_blocks == 2 {
            assert_eq!(cs.contracts.len(), 1);
            let ct = cs.contracts[0];
            assert_eq!(ct.ffs, 1);
            assert_eq!(ct.required, cs.phi_estimate);
            assert!(ct.arrival <= ct.required);
        }
    }

    #[test]
    fn lut_levels_divides_by_log_k() {
        assert_eq!(lut_levels(0, 4), 0);
        assert_eq!(lut_levels(4, 4), 2);
        assert_eq!(lut_levels(5, 4), 3);
        assert_eq!(lut_levels(5, 2), 5);
        assert_eq!(lut_levels(8, 8), 3);
    }

    #[test]
    fn no_cut_edges_means_full_slack() {
        let c = staged();
        let cl = cluster(&c);
        let asg = assign(&c, &cl, 1, 1.1);
        let cs = budget(&c, &cl, &asg, 4);
        assert!(cs.contracts.is_empty());
        assert_eq!(cs.min_slack, cs.phi_estimate);
    }
}
