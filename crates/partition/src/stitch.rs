//! Stitch-and-legalize: merge mapped blocks back into one circuit.
//!
//! Stitching re-attaches every seam's register chain between the
//! producer block's mapped driver and the consumer block's pins, with
//! the original initial states. The invariants that make this sound:
//!
//! * **Seams are frozen** ([`crate::extract`]): no block retiming moved
//!   a register across a seam, so the cut chains — bits included — carry
//!   over verbatim, and every block-internal initial state was already
//!   computed by the per-block forward-retiming mapper.
//! * **Pin order** is preserved: each mapped sink's fanins are replayed
//!   in pin order, substituting the stitched driver wherever a block pin
//!   was a seam pseudo-PI.
//! * **Chain concatenation** is source→sink: producer-side residue (the
//!   mapped `u → __seam` edge, empty unless the mapper legally parked
//!   registers there), then the cut chain, then consumer-side residue.
//!
//! Legalization then re-validates the merged netlist: FF fanout sharing
//! must be consistent and the merged graph must have a well-defined
//! clock period (no zero-weight cycle across blocks).
//!
//! Gate names colliding across blocks (mapping can mint helper names
//! independently per block) are deterministically renamed with a
//! `__b<block>` suffix; PI/PO names are global and never renamed.

use crate::extract::{seam_name, ExtractedBlocks};
use crate::PartitionError;
use netlist::{Bit, Circuit, NodeId};

/// Summary of one stitch pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Seams re-attached.
    pub seams: usize,
    /// Registers restored on seam chains.
    pub seam_ffs: usize,
    /// Gates renamed to resolve cross-block name collisions.
    pub renamed: usize,
}

/// Resolved driver of a seam: the merged node plus any producer-side
/// residue chain that must precede the cut chain.
#[derive(Debug, Clone)]
struct SeamDriver {
    node: NodeId,
    residue: Vec<Bit>,
}

/// Merges `mapped` (one mapped circuit per block of `ex`, block order)
/// into a single circuit over `source`'s interface.
///
/// # Errors
///
/// [`PartitionError::SeamCycle`] when seam drivers form a wire-only
/// cycle (impossible for mapper output, guarded anyway);
/// [`PartitionError::SharingConflict`] when the merged FF fanout sharing
/// is inconsistent; [`PartitionError::Netlist`] on reconstruction
/// failures.
pub fn stitch(
    source: &Circuit,
    ex: &ExtractedBlocks,
    mapped: &[Circuit],
) -> Result<(Circuit, StitchStats), PartitionError> {
    let mut out = Circuit::new(source.name().to_string());
    let mut stats = StitchStats::default();

    // Interface first: every source PI, in source order.
    for &pi in source.inputs() {
        out.add_input(source.node(pi).name().to_string())?;
    }

    // Copy every block's gates (block order, node order), renaming on
    // collision.
    let mut local: Vec<Vec<Option<NodeId>>> =
        mapped.iter().map(|m| vec![None; m.num_nodes()]).collect();
    for (b, m) in mapped.iter().enumerate() {
        for g in m.gate_ids() {
            let f = m
                .node(g)
                .function()
                .expect("gate nodes carry a function")
                .clone();
            let base = m.node(g).name();
            let id = if out.find(base).is_none() {
                out.add_gate(base.to_string(), f)?
            } else {
                stats.renamed += 1;
                let mut name = format!("{base}__b{b}");
                let mut salt = 0usize;
                while out.find(&name).is_some() {
                    salt += 1;
                    name = format!("{base}__b{b}_{salt}");
                }
                out.add_gate(name, f)?
            };
            local[b][g.index()] = Some(id);
        }
    }
    // Then every source PO, in source order.
    for &po in source.outputs() {
        out.add_output(source.node(po).name().to_string())?;
    }

    // Which block-local PIs/POs are seam pseudo-nodes, per block.
    let mut seam_of_pi: Vec<Vec<Option<u32>>> =
        mapped.iter().map(|m| vec![None; m.num_nodes()]).collect();
    let mut seam_po_node: Vec<Option<(usize, NodeId)>> = vec![None; ex.seams.len()];
    for s in &ex.seams {
        let cons = &mapped[s.consumer_block as usize];
        let pi = cons
            .find(&seam_name(s.index))
            .ok_or_else(|| PartitionError::Internal("mapped block lost a seam PI".into()))?;
        seam_of_pi[s.consumer_block as usize][pi.index()] = Some(s.index as u32);
        if s.producer_is_gate {
            let prod = &mapped[s.producer_block as usize];
            let po = prod
                .find(&seam_name(s.index))
                .ok_or_else(|| PartitionError::Internal("mapped block lost a seam PO".into()))?;
            seam_po_node[s.index] = Some((s.producer_block as usize, po));
        }
    }

    // Resolve each seam's merged driver: the node feeding the seam plus
    // the FF residue that must precede the consumer pin — producer-side
    // residue, then the cut chain. A mapped seam PO is normally fed by a
    // LUT; if a block degenerated it to a wire from one of its own
    // inputs the resolution recurses through that input (a wire-only
    // seam cycle is rejected — it would have no node to host the loop).
    struct Resolver<'a> {
        source: &'a Circuit,
        mapped: &'a [Circuit],
        ex: &'a ExtractedBlocks,
        out_names: &'a Circuit,
        local: &'a [Vec<Option<NodeId>>],
        seam_of_pi: &'a [Vec<Option<u32>>],
        seam_po_node: &'a [Option<(usize, NodeId)>],
        memo: Vec<Option<SeamDriver>>,
        visiting: Vec<bool>,
    }
    impl Resolver<'_> {
        fn resolve(&mut self, s: usize) -> Result<SeamDriver, PartitionError> {
            if let Some(d) = &self.memo[s] {
                return Ok(d.clone());
            }
            if self.visiting[s] {
                return Err(PartitionError::SeamCycle);
            }
            self.visiting[s] = true;
            let seam = &self.ex.seams[s];
            let cut_chain = self.source.edge(seam.edge).ffs();
            let d = match self.seam_po_node[s] {
                None => {
                    // Producer is a source PI: its name is global.
                    let u = self.source.edge(seam.edge).from();
                    let node =
                        self.out_names
                            .find(self.source.node(u).name())
                            .ok_or_else(|| {
                                PartitionError::Internal("seam producer PI missing".into())
                            })?;
                    SeamDriver {
                        node,
                        residue: cut_chain.to_vec(),
                    }
                }
                Some((b, po)) => {
                    let m = &self.mapped[b];
                    let fan = m.node(po).fanin();
                    if fan.len() != 1 {
                        return Err(PartitionError::Internal("seam PO fanin arity".into()));
                    }
                    let e = m.edge(fan[0]);
                    let f = e.from();
                    let (node, mut residue) = if m.node(f).is_gate() {
                        (self.local[b][f.index()].expect("gate copied"), Vec::new())
                    } else {
                        match self.seam_of_pi[b][f.index()] {
                            Some(t) => {
                                let inner = self.resolve(t as usize)?;
                                (inner.node, inner.residue)
                            }
                            None => {
                                let pi =
                                    self.out_names.find(m.node(f).name()).ok_or_else(|| {
                                        PartitionError::Internal("seam wire PI missing".into())
                                    })?;
                                (pi, Vec::new())
                            }
                        }
                    };
                    residue.extend(e.ffs().iter().copied());
                    residue.extend(cut_chain.iter().copied());
                    SeamDriver { node, residue }
                }
            };
            self.visiting[s] = false;
            self.memo[s] = Some(d.clone());
            Ok(d)
        }
    }
    let mut resolver = Resolver {
        source,
        mapped,
        ex,
        out_names: &out,
        local: &local,
        seam_of_pi: &seam_of_pi,
        seam_po_node: &seam_po_node,
        memo: vec![None; ex.seams.len()],
        visiting: vec![false; ex.seams.len()],
    };
    for s in 0..ex.seams.len() {
        resolver.resolve(s)?;
    }
    let drivers: Vec<Option<SeamDriver>> = resolver.memo;

    // Replay every sink's pins in order, substituting seam drivers.
    for (b, m) in mapped.iter().enumerate() {
        for v in m.node_ids() {
            let node = m.node(v);
            if node.is_input() {
                continue;
            }
            // Seam POs were consumed by driver resolution.
            if node.is_output() && source.find(node.name()).is_none() {
                continue;
            }
            let to = if node.is_output() {
                out.find(node.name())
                    .ok_or_else(|| PartitionError::Internal("merged PO missing".into()))?
            } else {
                local[b][v.index()].expect("gate copied")
            };
            for &eid in node.fanin() {
                let e = m.edge(eid);
                let f = e.from();
                let (from, chain) = if m.node(f).is_gate() {
                    (local[b][f.index()].expect("gate copied"), e.ffs().to_vec())
                } else {
                    match seam_of_pi[b][f.index()] {
                        Some(s) => {
                            let d = drivers[s as usize].as_ref().expect("all seams resolved");
                            let mut chain = d.residue.clone();
                            chain.extend(e.ffs().iter().copied());
                            (d.node, chain)
                        }
                        None => {
                            let pi = out.find(m.node(f).name()).ok_or_else(|| {
                                PartitionError::Internal("merged PI missing".into())
                            })?;
                            (pi, e.ffs().to_vec())
                        }
                    }
                };
                out.connect(from, to, chain)?;
            }
        }
    }

    stats.seams = ex.seams.len();
    stats.seam_ffs = ex.seams.iter().map(|s| source.edge(s.edge).weight()).sum();

    // Legalize: sharing must be consistent and the merged graph must
    // have a well-defined period (no comb cycle across seams).
    if !out.sharing_consistent() {
        return Err(PartitionError::SharingConflict);
    }
    out.clock_period()
        .map_err(|e| PartitionError::Internal(format!("stitched circuit has no period: {e}")))?;
    Ok((out, stats))
}
