//! SCC condensation and FF-boundary clustering of the retiming graph.
//!
//! Partitioning may only cut edges that carry at least one flip-flop:
//! a cut register's output is a stable per-cycle value, so the consumer
//! block can treat it as a pseudo primary input without seeing any of
//! the producer block's combinational timing. Two reductions enforce
//! that invariant:
//!
//! 1. **Condensation** — Tarjan SCCs over the full retiming graph
//!    (every edge, FF-carrying or not). Components come back in reverse
//!    topological order of the condensation DAG, which the
//!    slack-budgeting pass in [`crate::contract`] consumes directly.
//! 2. **Comb-merge** — components joined by any zero-FF edge are fused
//!    into one *cluster* (union-find over the condensation). After this
//!    pass every cross-cluster edge carries ≥ 1 FF, so clusters are the
//!    atomic units the block assignment is allowed to move.

use graphalgo::{strongly_connected_components_csr, Csr};
use netlist::Circuit;

/// The SCC condensation of a circuit's full retiming graph.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Node index → component index.
    pub comp_of: Vec<u32>,
    /// Components as node-index lists, in **reverse topological order**
    /// of the condensation DAG (every edge goes from a higher component
    /// index to a lower one).
    pub components: Vec<Vec<usize>>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the circuit had no nodes.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Computes the SCC condensation of `c`'s full retiming graph.
pub fn condense(c: &Circuit) -> Condensation {
    let n = c.num_nodes();
    let edges: Vec<(usize, usize)> = c
        .edge_ids()
        .map(|id| {
            let e = c.edge(id);
            (e.from().index(), e.to().index())
        })
        .collect();
    let g = Csr::from_edges(n, &edges);
    let components = strongly_connected_components_csr(&g);
    let mut comp_of = vec![0u32; n];
    for (i, comp) in components.iter().enumerate() {
        for &v in comp {
            comp_of[v] = i as u32;
        }
    }
    Condensation {
        comp_of,
        components,
    }
}

/// FF-boundary clusters: components fused across zero-FF edges.
#[derive(Debug, Clone)]
pub struct Clusters {
    /// The condensation the clusters were built from.
    pub condensation: Condensation,
    /// Component index → cluster index.
    pub cluster_of_comp: Vec<u32>,
    /// Node index → cluster index.
    pub cluster_of: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
    /// Gate count per cluster (PIs/POs weigh nothing).
    pub gates: Vec<u64>,
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let up = parent[parent[x as usize] as usize];
        parent[x as usize] = up;
        x = up;
    }
    x
}

/// Clusters `c`: condensation plus comb-merge. Cluster indices are
/// assigned in order of first appearance over ascending node ids, so the
/// numbering is deterministic and independent of union-find internals.
pub fn cluster(c: &Circuit) -> Clusters {
    let condensation = condense(c);
    let nc = condensation.len();
    let mut parent: Vec<u32> = (0..nc as u32).collect();
    for id in c.edge_ids() {
        let e = c.edge(id);
        if e.weight() == 0 {
            let a = find(&mut parent, condensation.comp_of[e.from().index()]);
            let b = find(&mut parent, condensation.comp_of[e.to().index()]);
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let n = c.num_nodes();
    let mut remap: Vec<u32> = vec![u32::MAX; nc];
    let mut cluster_of: Vec<u32> = vec![0; n];
    let mut num_clusters = 0usize;
    for (v, cv) in cluster_of.iter_mut().enumerate().take(n) {
        let root = find(&mut parent, condensation.comp_of[v]);
        if remap[root as usize] == u32::MAX {
            remap[root as usize] = num_clusters as u32;
            num_clusters += 1;
        }
        *cv = remap[root as usize];
    }
    let mut cluster_of_comp: Vec<u32> = vec![0; nc];
    for (i, item) in cluster_of_comp.iter_mut().enumerate() {
        *item = remap[find(&mut parent, i as u32) as usize];
    }
    let mut gates = vec![0u64; num_clusters];
    for g in c.gate_ids() {
        gates[cluster_of[g.index()] as usize] += 1;
    }
    Clusters {
        condensation,
        cluster_of_comp,
        cluster_of,
        num_clusters,
        gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// in -> g1 -FF-> g2 -> out: g1/g2 joined by nothing?  g2->out and
    /// in->g1 are comb edges, so {in,g1} and {g2,out} are the clusters.
    fn two_stage() -> Circuit {
        let mut c = Circuit::new("two_stage");
        let i = c.add_input("in").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(1)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(1)).unwrap();
        let o = c.add_output("out").unwrap();
        c.connect(i, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        c
    }

    #[test]
    fn comb_edges_fuse_clusters() {
        let c = two_stage();
        let cl = cluster(&c);
        assert_eq!(cl.num_clusters, 2);
        let ci = cl.cluster_of[c.find("in").unwrap().index()];
        let c1 = cl.cluster_of[c.find("g1").unwrap().index()];
        let c2 = cl.cluster_of[c.find("g2").unwrap().index()];
        let co = cl.cluster_of[c.find("out").unwrap().index()];
        assert_eq!(ci, c1);
        assert_eq!(c2, co);
        assert_ne!(c1, c2);
        assert_eq!(cl.gates, vec![1, 1]);
    }

    #[test]
    fn feedback_loop_is_one_component() {
        // g1 -FF-> g2 -FF-> g1: one SCC, hence one cluster.
        let mut c = Circuit::new("loop");
        let i = c.add_input("in").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::and(1)).unwrap();
        let o = c.add_output("out").unwrap();
        c.connect(i, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, g1, vec![Bit::One]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let cl = cluster(&c);
        let c1 = cl.cluster_of[c.find("g1").unwrap().index()];
        let c2 = cl.cluster_of[c.find("g2").unwrap().index()];
        assert_eq!(c1, c2);
    }

    #[test]
    fn cluster_ids_are_first_appearance_ordered() {
        let c = two_stage();
        let cl = cluster(&c);
        // Node 0 ("in") must live in cluster 0.
        assert_eq!(cl.cluster_of[0], 0);
    }
}
