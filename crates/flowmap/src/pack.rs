//! LUT packing: an area post-pass for mapped networks.
//!
//! A LUT with a single, register-free fanout can be collapsed into its
//! consumer whenever the union of their input signals still fits in K —
//! removing one LUT without touching depth (the consumer's level already
//! dominated). Mapping generation under node duplication leaves many such
//! opportunities; every practical mapper runs a pass like this.

use netlist::{Bit, Circuit, NetlistError, NodeId, TruthTable};

/// Result of a packing pass.
#[derive(Debug, Clone)]
pub struct PackReport {
    /// The packed network.
    pub circuit: Circuit,
    /// Number of LUTs removed.
    pub packed: usize,
}

/// One input signal of a (possibly merged) LUT.
#[derive(Debug, Clone, PartialEq)]
struct PinSig {
    from: NodeId,
    chain: Vec<Bit>,
}

/// Collapses single-fanout LUTs into their consumers while the merged
/// support stays within `k` inputs. Runs to a fixpoint.
///
/// # Errors
///
/// Propagates construction errors ([`NetlistError`]); inputs must be
/// valid mapped networks (every gate fully connected).
pub fn pack_luts(c: &Circuit, k: usize) -> Result<PackReport, NetlistError> {
    let mut current = c.clone();
    let mut packed_total = 0usize;
    loop {
        let (next, packed) = pack_once(&current, k)?;
        packed_total += packed;
        current = next;
        if packed == 0 {
            break;
        }
    }
    Ok(PackReport {
        circuit: current,
        packed: packed_total,
    })
}

fn pin_signals(c: &Circuit, v: NodeId) -> Vec<PinSig> {
    c.node(v)
        .fanin()
        .iter()
        .map(|&e| {
            let edge = c.edge(e);
            PinSig {
                from: edge.from(),
                chain: edge.ffs().to_vec(),
            }
        })
        .collect()
}

fn pack_once(c: &Circuit, k: usize) -> Result<(Circuit, usize), NetlistError> {
    // Candidates: gate g with exactly one fanout edge, weight 0, into a
    // gate consumer. Process greedily in topological order; a consumer
    // absorbs at most one producer per round (keeps bookkeeping simple).
    let order = c.comb_topo_order()?;
    let mut absorbed_into: Vec<Option<NodeId>> = vec![None; c.num_nodes()]; // producer -> consumer
    let mut consumer_busy = vec![false; c.num_nodes()];
    let mut merged_pins: Vec<Option<Vec<PinSig>>> = vec![None; c.num_nodes()];
    let mut merged_tt: Vec<Option<TruthTable>> = vec![None; c.num_nodes()];
    let mut packed = 0usize;
    for &g in &order {
        let node = c.node(g);
        if !node.is_gate() || node.fanout().len() != 1 {
            continue;
        }
        if absorbed_into[g.index()].is_some() || consumer_busy[g.index()] {
            continue; // already merged this round (either direction)
        }
        let out_edge = c.edge(node.fanout()[0]);
        if out_edge.weight() != 0 {
            continue;
        }
        let x = out_edge.to();
        let xn = c.node(x);
        if !xn.is_gate() || consumer_busy[x.index()] || absorbed_into[x.index()].is_some() {
            continue;
        }
        // Only single-use within the consumer (a gate may feed two pins).
        let uses: Vec<usize> = xn
            .fanin()
            .iter()
            .enumerate()
            .filter(|(_, &e)| c.edge(e).from() == g && c.edge(e).weight() == 0)
            .map(|(i, _)| i)
            .collect();
        if uses.len() != 1 {
            continue;
        }
        let pin = uses[0];
        // Merged support.
        let g_pins = pin_signals(c, g);
        let x_pins = pin_signals(c, x);
        let mut merged: Vec<PinSig> = Vec::new();
        for (i, p) in x_pins.iter().enumerate() {
            if i == pin {
                continue;
            }
            if !merged.contains(p) {
                merged.push(p.clone());
            }
        }
        for p in &g_pins {
            if !merged.contains(p) {
                merged.push(p.clone());
            }
        }
        if merged.len() > k || merged.len() > netlist::MAX_INPUTS {
            continue;
        }
        // Every merged pin driver must survive this round.
        if merged
            .iter()
            .any(|p| absorbed_into[p.from.index()].is_some())
        {
            continue;
        }
        // Merged truth table: x's function with `pin` replaced by g's.
        let g_tt = node.function().expect("gate").clone();
        let x_tt = xn.function().expect("gate").clone();
        let idx_of = |p: &PinSig| merged.iter().position(|q| q == p).expect("inserted");
        let g_map: Vec<usize> = g_pins.iter().map(idx_of).collect();
        let x_map: Vec<Option<usize>> = x_pins
            .iter()
            .enumerate()
            .map(|(i, p)| if i == pin { None } else { Some(idx_of(p)) })
            .collect();
        let tt = TruthTable::from_fn(merged.len(), |r| {
            let g_in: Vec<bool> = g_map.iter().map(|&m| (r >> m) & 1 == 1).collect();
            let g_val = g_tt.eval(&g_in);
            let x_in: Vec<bool> = x_map
                .iter()
                .map(|m| match m {
                    Some(m) => (r >> m) & 1 == 1,
                    None => g_val,
                })
                .collect();
            x_tt.eval(&x_in)
        });
        absorbed_into[g.index()] = Some(x);
        consumer_busy[x.index()] = true;
        merged_pins[x.index()] = Some(merged);
        merged_tt[x.index()] = Some(tt);
        packed += 1;
    }
    if packed == 0 {
        return Ok((c.clone(), 0));
    }
    // Rebuild.
    let mut out = Circuit::new(c.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; c.num_nodes()];
    for v in c.node_ids() {
        if absorbed_into[v.index()].is_some() {
            continue;
        }
        let node = c.node(v);
        map[v.index()] = Some(match node.kind() {
            netlist::NodeKind::Input => out.add_input(node.name().to_string())?,
            netlist::NodeKind::Output => out.add_output(node.name().to_string())?,
            netlist::NodeKind::Gate(tt) => {
                let tt = merged_tt[v.index()].clone().unwrap_or_else(|| tt.clone());
                out.add_gate(node.name().to_string(), tt)?
            }
        });
    }
    for v in c.node_ids() {
        if absorbed_into[v.index()].is_some() {
            continue;
        }
        let new_v = map[v.index()].expect("survives");
        match &merged_pins[v.index()] {
            Some(pins) => {
                for p in pins {
                    let src = map[p.from.index()].expect("pin drivers survive");
                    out.connect(src, new_v, p.chain.clone())?;
                }
            }
            None => {
                for &e in c.node(v).fanin() {
                    let edge = c.edge(e);
                    let src = map[edge.from().index()].expect("drivers survive");
                    out.connect(src, new_v, edge.ffs().to_vec())?;
                }
            }
        }
    }
    Ok((out, packed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::exhaustive_equiv;

    #[test]
    fn packs_single_fanout_chain() {
        // a,b -> g1(AND) -> g2(XOR with c) -> o : packs into one 3-LUT.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(d, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let r = pack_luts(&c, 4).unwrap();
        assert_eq!(r.packed, 1);
        assert_eq!(r.circuit.num_gates(), 1);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn k_limit_blocks_packing() {
        let mut c = Circuit::new("t");
        let ins: Vec<NodeId> = (0..4)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(3)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(ins[0], g1, vec![]).unwrap();
        c.connect(ins[1], g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(ins[2], g2, vec![]).unwrap();
        c.connect(ins[3], g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        // Merged support = 4 > K=3: no pack; = 4 ≤ K=4: packs.
        assert_eq!(pack_luts(&c, 3).unwrap().packed, 0);
        let r = pack_luts(&c, 4).unwrap();
        assert_eq!(r.packed, 1);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn registers_block_packing() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        assert_eq!(pack_luts(&c, 4).unwrap().packed, 0);
    }

    #[test]
    fn multi_fanout_blocks_packing() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o1, vec![]).unwrap();
        c.connect(g1, o2, vec![]).unwrap();
        assert_eq!(pack_luts(&c, 4).unwrap().packed, 0);
    }

    #[test]
    fn shared_inputs_dedup() {
        // g1(a,b) -> g2(g1, a): merged support {a, b} = 2 ≤ 2.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(a, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let r = pack_luts(&c, 2).unwrap();
        assert_eq!(r.packed, 1);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn fixpoint_packs_deep_chain() {
        // A 4-deep single-fanout chain of 1-input gates: all pack into
        // one.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let mut prev = a;
        for i in 0..4 {
            let g = c.add_gate(format!("g{i}"), TruthTable::not()).unwrap();
            c.connect(prev, g, vec![]).unwrap();
            prev = g;
        }
        let o = c.add_output("o").unwrap();
        c.connect(prev, o, vec![]).unwrap();
        let r = pack_luts(&c, 4).unwrap();
        assert_eq!(r.circuit.num_gates(), 1);
        assert!(exhaustive_equiv(&c, &r.circuit, 2).unwrap().is_equivalent());
    }

    #[test]
    fn packs_real_mapping_and_stays_equivalent() {
        let preset = workloads::presets()
            .into_iter()
            .find(|p| p.name == "dk17")
            .unwrap();
        let c = workloads::build_preset(&preset);
        let prep = turbomap_prepare_like(&c);
        let mapped = crate::flowmap(&prep, 5).unwrap();
        let r = pack_luts(&mapped.circuit, 5).unwrap();
        assert!(r.circuit.num_gates() <= mapped.circuit.num_gates());
        assert!(netlist::random_equiv(&c, &r.circuit, 512, 3)
            .unwrap()
            .is_equivalent());
    }

    fn turbomap_prepare_like(c: &Circuit) -> Circuit {
        // validate + prune + decompose, without depending on turbomap.
        netlist::validate(c).unwrap();
        let live = netlist::prune_dead(c).unwrap();
        if live.max_fanin() > 5 {
            netlist::decompose_to_k(&live, 2).unwrap()
        } else {
            live
        }
    }
}
