//! Mapping generation and the FlowMap / FlowMap-frt flows.
//!
//! After labelling, the LUT network is generated FlowMap-style: a FIFO
//! seeded with all *visible* gates (gates driving POs or registers) pulls
//! in the gates named by each root's best cut. `FlowMap-frt` then runs the
//! optimal forward-retiming post-pass of the paper's Section 4 baseline:
//! map each combinational block, re-stitch the registers, forward-retime
//! for minimum clock period, and compute the initial state by simulation.

use crate::cut::{build_lut_network, Cut, MapError};
use crate::label::{flowmap_labels, Labeling};
use netlist::{Circuit, NodeId};
use retiming::{retime_min_period_forward, MoveStats, RetimingError};
use std::collections::HashMap;

/// Result of combinational FlowMap mapping on a (possibly sequential)
/// circuit: every FF-bounded block mapped depth-optimally, registers kept
/// in place.
#[derive(Debug, Clone)]
pub struct FlowMapResult {
    /// The LUT network.
    pub circuit: Circuit,
    /// Number of K-LUTs.
    pub luts: usize,
    /// Mapping depth (max block depth = clock period before retiming).
    pub depth: u64,
    /// The labelling that produced the mapping.
    pub labeling: Labeling,
}

/// Errors from the FlowMap flows.
#[derive(Debug)]
pub enum FlowMapError {
    /// Mapping-network construction failed.
    Map(MapError),
    /// Retiming post-pass failed.
    Retiming(RetimingError),
    /// Input circuit invalid.
    Netlist(netlist::NetlistError),
}

impl std::fmt::Display for FlowMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowMapError::Map(e) => write!(f, "mapping: {e}"),
            FlowMapError::Retiming(e) => write!(f, "retiming: {e}"),
            FlowMapError::Netlist(e) => write!(f, "netlist: {e}"),
        }
    }
}

impl std::error::Error for FlowMapError {}

impl From<MapError> for FlowMapError {
    fn from(e: MapError) -> Self {
        FlowMapError::Map(e)
    }
}

impl From<RetimingError> for FlowMapError {
    fn from(e: RetimingError) -> Self {
        FlowMapError::Retiming(e)
    }
}

impl From<netlist::NetlistError> for FlowMapError {
    fn from(e: netlist::NetlistError) -> Self {
        FlowMapError::Netlist(e)
    }
}

/// Gates that must be LUT roots regardless of cuts: drivers of POs and of
/// register chains (their signals are externally visible).
fn seed_roots(c: &Circuit) -> Vec<NodeId> {
    let mut seeds = Vec::new();
    for v in c.gate_ids() {
        let drives_visible = c.node(v).fanout().iter().any(|&e| {
            let edge = c.edge(e);
            edge.weight() > 0 || c.node(edge.to()).is_output()
        });
        if drives_visible {
            seeds.push(v);
        }
    }
    seeds
}

/// Selects the final LUT roots from a labelling: FIFO from the seeds,
/// pulling in every gate used as a direct (weight-0) cut signal.
pub(crate) fn collect_roots(c: &Circuit, labeling: &Labeling) -> HashMap<NodeId, Cut> {
    let mut roots: HashMap<NodeId, Cut> = HashMap::new();
    let mut queue: std::collections::VecDeque<NodeId> = seed_roots(c).into();
    while let Some(v) = queue.pop_front() {
        if roots.contains_key(&v) {
            continue;
        }
        let cut = labeling.cuts[&v].clone();
        for sig in &cut.signals {
            if c.node(sig.node).is_gate() && !roots.contains_key(&sig.node) {
                queue.push_back(sig.node);
            }
        }
        roots.insert(v, cut);
    }
    roots
}

/// Depth-optimal K-LUT mapping of every combinational block (registers
/// stay in place). The input must be K-bounded and validated.
///
/// # Errors
///
/// Propagates construction errors.
///
/// # Panics
///
/// Panics if the circuit is not K-bounded (decompose first).
pub fn flowmap(c: &Circuit, k: usize) -> Result<FlowMapResult, FlowMapError> {
    let labeling = {
        let _t = engine::telemetry::time_phase(engine::telemetry::Phase::Label);
        let _s = engine::trace::span1("flowmap_label", "k", k as u64);
        flowmap_labels(c, k)
    };
    let _t = engine::telemetry::time_phase(engine::telemetry::Phase::Generate);
    let _s = engine::trace::span("flowmap_generate");
    let roots = collect_roots(c, &labeling);
    let mapped = build_lut_network(c, &roots, &format!("{}_flowmap", c.name()))?;
    let depth = mapped.clock_period()?;
    Ok(FlowMapResult {
        luts: mapped.num_gates(),
        depth,
        circuit: mapped,
        labeling,
    })
}

/// Result of the full FlowMap-frt baseline.
#[derive(Debug, Clone)]
pub struct FlowMapFrtResult {
    /// Final LUT network after forward retiming, with initial state.
    pub circuit: Circuit,
    /// Achieved clock period.
    pub period: u64,
    /// Number of K-LUTs.
    pub luts: usize,
    /// FF count (register sharing).
    pub ffs: usize,
    /// Unit-move statistics of the retiming step.
    pub moves: MoveStats,
}

/// The FlowMap-frt baseline of the paper's Section 4: FlowMap each
/// combinational block, merge with the original FFs, then forward-retime
/// to minimise the clock period (initial state by simulation).
///
/// # Errors
///
/// Propagates mapping/retiming errors (forward retiming itself cannot fail
/// on a valid mapping).
///
/// # Panics
///
/// Panics if the circuit is not K-bounded (decompose first).
pub fn flowmap_frt(c: &Circuit, k: usize) -> Result<FlowMapFrtResult, FlowMapError> {
    let mapped = flowmap(c, k)?;
    let _t = engine::telemetry::time_phase(engine::telemetry::Phase::Generate);
    let res = retime_min_period_forward(&mapped.circuit)?;
    Ok(FlowMapFrtResult {
        period: res.period,
        luts: res.circuit.num_gates(),
        ffs: res.circuit.ff_count_shared(),
        circuit: res.circuit,
        moves: res.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    fn sequential_sample() -> Circuit {
        // Two comb blocks around one FF, plus feedback.
        let mut c = Circuit::new("seq");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::xor(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g3, g2, vec![Bit::Zero]).unwrap(); // feedback through FF
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(b, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        c
    }

    #[test]
    fn flowmap_preserves_behaviour() {
        let c = sequential_sample();
        let res = flowmap(&c, 5).unwrap();
        assert!(exhaustive_equiv(&c, &res.circuit, 4)
            .unwrap()
            .is_equivalent());
        // K=5 fits each block in one LUT per visible gate.
        assert!(res.luts <= c.num_gates());
        assert!(res.depth <= c.clock_period().unwrap());
    }

    #[test]
    fn flowmap_frt_equivalent_and_no_slower() {
        let c = sequential_sample();
        let res = flowmap_frt(&c, 5).unwrap();
        assert!(exhaustive_equiv(&c, &res.circuit, 5)
            .unwrap()
            .is_equivalent());
        assert!(res.period <= c.clock_period().unwrap());
        assert_eq!(res.circuit.clock_period().unwrap(), res.period);
    }

    #[test]
    fn frt_moves_register_forward() {
        // FF ahead of a deep comb chain: FlowMap alone leaves period 2
        // (with K=2), forward retiming balances it to 1... construct:
        // a -FF-> g1 -> g2 (2 LUTs at K=2 over distinct inputs).
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::One]).unwrap();
        c.connect(b, g1, vec![Bit::One]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(d, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let res = flowmap_frt(&c, 2).unwrap();
        assert_eq!(res.period, 1);
        assert!(res.moves.forward_moves > 0);
        assert!(exhaustive_equiv(&c, &res.circuit, 4)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn seed_roots_cover_visible_gates() {
        let c = sequential_sample();
        let seeds = seed_roots(&c);
        // g3 drives the PO and the FF; g2 drives only g3 combinationally...
        // g2 drives g3 with weight 0, so only g3 is a seed... g3 drives
        // both the FF edge (to g2) and the PO.
        assert!(seeds.contains(&c.find("g3").unwrap()));
        assert!(!seeds.contains(&c.find("g1").unwrap()));
    }

    #[test]
    fn pure_combinational_mapping() {
        let mut c = Circuit::new("comb");
        let ins: Vec<NodeId> = (0..6)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        // Three 2-input ANDs into an OR3-ish structure of 2-input gates.
        let a1 = c.add_gate("a1", TruthTable::and(2)).unwrap();
        let a2 = c.add_gate("a2", TruthTable::and(2)).unwrap();
        let a3 = c.add_gate("a3", TruthTable::and(2)).unwrap();
        let o1 = c.add_gate("or1", TruthTable::or(2)).unwrap();
        let o2 = c.add_gate("or2", TruthTable::or(2)).unwrap();
        let po = c.add_output("po").unwrap();
        c.connect(ins[0], a1, vec![]).unwrap();
        c.connect(ins[1], a1, vec![]).unwrap();
        c.connect(ins[2], a2, vec![]).unwrap();
        c.connect(ins[3], a2, vec![]).unwrap();
        c.connect(ins[4], a3, vec![]).unwrap();
        c.connect(ins[5], a3, vec![]).unwrap();
        c.connect(a1, o1, vec![]).unwrap();
        c.connect(a2, o1, vec![]).unwrap();
        c.connect(o1, o2, vec![]).unwrap();
        c.connect(a3, o2, vec![]).unwrap();
        c.connect(o2, po, vec![]).unwrap();
        let res = flowmap(&c, 6).unwrap();
        // 6 inputs fit one 6-LUT.
        assert_eq!(res.luts, 1);
        assert_eq!(res.depth, 1);
        assert!(exhaustive_equiv(&c, &res.circuit, 1)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn lut_count_at_most_gate_count() {
        let c = sequential_sample();
        for k in 2..=6 {
            let res = flowmap(&c, k).unwrap();
            assert!(res.luts <= c.num_gates(), "k={k}");
            assert!(
                exhaustive_equiv(&c, &res.circuit, 4)
                    .unwrap()
                    .is_equivalent(),
                "k={k}"
            );
        }
    }
}
