//! FlowMap and FlowMap-frt: the conventional-flow baselines of the paper.
//!
//! FlowMap (Cong & Ding 1994) computes **depth-optimal** K-LUT mappings
//! of combinational networks in polynomial time via max-flow min-cut. The
//! paper's Section-4 baseline, *FlowMap-frt*, applies it to sequential
//! circuits the conventional way: map each register-bounded combinational
//! block independently, keep the registers where they are, then run a
//! forward-retiming post-pass for clock period minimisation (with
//! simulation-computed initial states).
//!
//! * [`flowmap_labels`] — label computation (minimum LUT depth per gate).
//! * [`flowmap`] — mapping generation (registers untouched).
//! * [`flowmap_frt`] — the full baseline including forward retiming.
//! * [`pack_luts`] — single-fanout LUT packing (area post-pass).
//! * [`cut`] — cut/cone machinery shared with the TurboMap crates.
//!
//! # Examples
//!
//! ```
//! use netlist::{Circuit, TruthTable};
//! use flowmap::flowmap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Circuit::new("maj");
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let d = c.add_input("d")?;
//! let g1 = c.add_gate("g1", TruthTable::and(2))?;
//! let g2 = c.add_gate("g2", TruthTable::or(2))?;
//! let o = c.add_output("o")?;
//! c.connect(a, g1, vec![])?;
//! c.connect(b, g1, vec![])?;
//! c.connect(g1, g2, vec![])?;
//! c.connect(d, g2, vec![])?;
//! c.connect(g2, o, vec![])?;
//!
//! let mapped = flowmap(&c, 4)?;
//! assert_eq!(mapped.luts, 1); // 3-input function fits one 4-LUT
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod label;
pub mod map;
pub mod pack;

pub use cut::{build_lut_network, cone_function, Cut, CutSignal, MapError};
pub use label::{flowmap_labels, Labeling};
pub use map::{flowmap, flowmap_frt, FlowMapError, FlowMapFrtResult, FlowMapResult};
pub use pack::{pack_luts, PackReport};
