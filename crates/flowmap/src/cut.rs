//! Cut signals, combinational cones and LUT network construction.
//!
//! A K-LUT in a sequential mapping consumes *signals*: either a node's
//! direct output (weight 0) or the output of a register chain fed by a node
//! (weight ≥ 1, with that chain's initial values). [`CutSignal`] names such
//! a signal; a mapping solution assigns every LUT root a cut (a set of cut
//! signals) whose cone computes the root's function.
//!
//! [`build_lut_network`] turns a `root → cut` assignment into an actual LUT
//! circuit: each cone is collapsed into one truth table by exhaustive
//! simulation and the register chains are re-attached to the LUT fanins,
//! preserving sequential behaviour.

use netlist::{Bit, Circuit, NetlistError, NodeId, TruthTable};
use std::collections::HashMap;

/// A signal usable as an LUT input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CutSignal {
    /// The driving node (PI or gate).
    pub node: NodeId,
    /// Number of registers between the driver and the LUT input.
    pub weight: usize,
    /// Initial values of those registers (source → sink order; length =
    /// `weight`).
    pub chain: Vec<Bit>,
}

impl CutSignal {
    /// A direct (unregistered) signal.
    pub fn direct(node: NodeId) -> CutSignal {
        CutSignal {
            node,
            weight: 0,
            chain: Vec::new(),
        }
    }

    /// A registered tap with the given initial chain.
    pub fn tap(node: NodeId, chain: Vec<Bit>) -> CutSignal {
        CutSignal {
            weight: chain.len(),
            node,
            chain,
        }
    }
}

/// A K-feasible cut for one LUT root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// The signals crossing the cut (the future LUT inputs), deduplicated.
    pub signals: Vec<CutSignal>,
}

/// Errors from mapping-network construction.
#[derive(Debug)]
pub enum MapError {
    /// A cone reached a boundary not listed in the root's cut.
    InconsistentCut {
        /// The LUT root.
        root: String,
        /// The offending boundary signal driver.
        signal: String,
    },
    /// Too many inputs for a truth table.
    ConeTooWide {
        /// The LUT root.
        root: String,
        /// Its cut size.
        inputs: usize,
    },
    /// Underlying netlist error.
    Netlist(NetlistError),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::InconsistentCut { root, signal } => {
                write!(f, "cone of `{root}` crossed uncut boundary at `{signal}`")
            }
            MapError::ConeTooWide { root, inputs } => {
                write!(f, "cone of `{root}` has {inputs} inputs")
            }
            MapError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<NetlistError> for MapError {
    fn from(e: NetlistError) -> Self {
        MapError::Netlist(e)
    }
}

/// Computes the truth table of the cone of `root` over the given cut
/// signals by exhaustive simulation.
///
/// The cone is the set of gates reachable backward from `root` through
/// weight-0 edges without crossing a cut signal. Boundary crossings that do
/// not match a cut signal are reported as errors.
///
/// # Errors
///
/// [`MapError::InconsistentCut`] / [`MapError::ConeTooWide`].
pub fn cone_function(c: &Circuit, root: NodeId, cut: &Cut) -> Result<TruthTable, MapError> {
    if cut.signals.len() > netlist::MAX_INPUTS {
        return Err(MapError::ConeTooWide {
            root: c.node(root).name().to_string(),
            inputs: cut.signals.len(),
        });
    }
    // Map each cut signal to its input position.
    let index: HashMap<&CutSignal, usize> = cut
        .signals
        .iter()
        .enumerate()
        .map(|(i, s)| (s, i))
        .collect();
    // Collect cone gates by DFS (root included unless it is itself cut —
    // the root is never a cut signal of its own cut).
    let mut cone: Vec<NodeId> = Vec::new();
    let mut seen: HashMap<NodeId, bool> = HashMap::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        if seen.contains_key(&v) {
            continue;
        }
        seen.insert(v, true);
        cone.push(v);
        for &e in c.node(v).fanin() {
            let edge = c.edge(e);
            let sig = CutSignal {
                node: edge.from(),
                weight: edge.weight(),
                chain: edge.ffs().to_vec(),
            };
            if index.contains_key(&sig) {
                continue; // boundary
            }
            if edge.weight() > 0 || !c.node(edge.from()).is_gate() {
                return Err(MapError::InconsistentCut {
                    root: c.node(root).name().to_string(),
                    signal: c.node(edge.from()).name().to_string(),
                });
            }
            stack.push(edge.from());
        }
    }
    // Topological order within the cone (reverse DFS finish would also do;
    // recompute via repeated relaxation since cones are small).
    let cone_set: HashMap<NodeId, usize> = cone.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let adj: Vec<Vec<usize>> = cone
        .iter()
        .map(|&v| {
            c.node(v)
                .fanin()
                .iter()
                .filter_map(|&e| {
                    let edge = c.edge(e);
                    let sig = CutSignal {
                        node: edge.from(),
                        weight: edge.weight(),
                        chain: edge.ffs().to_vec(),
                    };
                    if index.contains_key(&sig) {
                        None
                    } else {
                        cone_set.get(&edge.from()).copied()
                    }
                })
                .collect()
        })
        .collect();
    // adj currently lists fanins; build forward adjacency for topo.
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); cone.len()];
    for (vi, fanins) in adj.iter().enumerate() {
        for &ui in fanins {
            fwd[ui].push(vi);
        }
    }
    let order = graphalgo::topo_order(&fwd).expect("cones are acyclic");

    let k = cut.signals.len();
    let tt = TruthTable::from_fn(k, |assignment| {
        let mut values: Vec<bool> = vec![false; cone.len()];
        for &vi in &order {
            let v = cone[vi];
            let node = c.node(v);
            let ins: Vec<bool> = node
                .fanin()
                .iter()
                .map(|&e| {
                    let edge = c.edge(e);
                    let sig = CutSignal {
                        node: edge.from(),
                        weight: edge.weight(),
                        chain: edge.ffs().to_vec(),
                    };
                    match index.get(&sig) {
                        Some(&i) => assignment & (1 << i) != 0,
                        None => values[cone_set[&edge.from()]],
                    }
                })
                .collect();
            values[vi] = node.function().expect("cone nodes are gates").eval(&ins);
        }
        values[cone_set[&root]]
    });
    Ok(tt)
}

/// Builds the LUT network for a `root → cut` assignment.
///
/// `roots` must be closed: every gate appearing as a cut signal of some
/// root (or driving a PO) must itself be a root. PIs are copied; LUT gates
/// keep their root's name; register chains keep their initial values.
///
/// # Errors
///
/// Propagates cone/construction errors.
pub fn build_lut_network(
    c: &Circuit,
    roots: &HashMap<NodeId, Cut>,
    name: &str,
) -> Result<Circuit, MapError> {
    let mut out = Circuit::new(name.to_string());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for &pi in c.inputs() {
        map.insert(pi, out.add_input(c.node(pi).name().to_string())?);
    }
    // Create LUT nodes first (functions need only the original circuit).
    let mut functions: HashMap<NodeId, TruthTable> = HashMap::new();
    for (&root, cut) in roots {
        functions.insert(root, cone_function(c, root, cut)?);
    }
    let mut root_ids: Vec<NodeId> = roots.keys().copied().collect();
    root_ids.sort_unstable(); // deterministic construction order
    for &root in &root_ids {
        let id = out.add_gate(
            c.node(root).name().to_string(),
            functions.remove(&root).expect("computed above"),
        )?;
        map.insert(root, id);
    }
    // Wire LUT fanins.
    for &root in &root_ids {
        let cut = &roots[&root];
        let lut = map[&root];
        for sig in &cut.signals {
            let src = *map
                .get(&sig.node)
                .ok_or_else(|| MapError::InconsistentCut {
                    root: c.node(root).name().to_string(),
                    signal: c.node(sig.node).name().to_string(),
                })?;
            out.connect(src, lut, sig.chain.clone())?;
        }
    }
    // Primary outputs.
    for &po in c.outputs() {
        let new_po = out.add_output(c.node(po).name().to_string())?;
        let e = c.node(po).fanin()[0];
        let edge = c.edge(e);
        let src = *map
            .get(&edge.from())
            .ok_or_else(|| MapError::InconsistentCut {
                root: c.node(po).name().to_string(),
                signal: c.node(edge.from()).name().to_string(),
            })?;
        out.connect(src, new_po, edge.ffs().to_vec())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a, b -> g1 (AND) -> g2 (NOT) -> o  with a FF between g1 and g2.
    fn two_block_circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::One]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        c
    }

    #[test]
    fn cone_function_of_single_gate() {
        let c = two_block_circuit();
        let g1 = c.find("g1").unwrap();
        let cut = Cut {
            signals: vec![
                CutSignal::direct(c.find("a").unwrap()),
                CutSignal::direct(c.find("b").unwrap()),
            ],
        };
        let tt = cone_function(&c, g1, &cut).unwrap();
        assert_eq!(tt, TruthTable::and(2));
    }

    #[test]
    fn cone_function_through_tap() {
        let c = two_block_circuit();
        let g2 = c.find("g2").unwrap();
        let cut = Cut {
            signals: vec![CutSignal::tap(c.find("g1").unwrap(), vec![Bit::One])],
        };
        let tt = cone_function(&c, g2, &cut).unwrap();
        assert_eq!(tt, TruthTable::not());
    }

    #[test]
    fn inconsistent_cut_reported() {
        let c = two_block_circuit();
        let g2 = c.find("g2").unwrap();
        // Wrong weight: claims a direct signal where a register sits.
        let cut = Cut {
            signals: vec![CutSignal::direct(c.find("g1").unwrap())],
        };
        assert!(matches!(
            cone_function(&c, g2, &cut),
            Err(MapError::InconsistentCut { .. })
        ));
    }

    #[test]
    fn build_identity_mapping() {
        let c = two_block_circuit();
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let mut roots = HashMap::new();
        roots.insert(
            g1,
            Cut {
                signals: vec![
                    CutSignal::direct(c.find("a").unwrap()),
                    CutSignal::direct(c.find("b").unwrap()),
                ],
            },
        );
        roots.insert(
            g2,
            Cut {
                signals: vec![CutSignal::tap(g1, vec![Bit::One])],
            },
        );
        let mapped = build_lut_network(&c, &roots, "mapped").unwrap();
        assert_eq!(mapped.num_gates(), 2);
        assert_eq!(mapped.ff_count_shared(), 1);
        assert!(netlist::exhaustive_equiv(&c, &mapped, 5)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn cone_collapse_two_gates() {
        // Merge a 2-gate comb cone into one LUT: NOT(AND(a, b)) = NAND.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(b, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let cut = Cut {
            signals: vec![CutSignal::direct(a), CutSignal::direct(b)],
        };
        let tt = cone_function(&c, g2, &cut).unwrap();
        assert_eq!(tt, TruthTable::nand(2));
        let mut roots = HashMap::new();
        roots.insert(g2, cut);
        let mapped = build_lut_network(&c, &roots, "m").unwrap();
        assert_eq!(mapped.num_gates(), 1);
        assert!(netlist::exhaustive_equiv(&c, &mapped, 3)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn reconvergent_cone_shared_input() {
        // g = XOR(a, NOT(a)) constant 1; cut = {a} used twice in the cone.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let n = c.add_gate("n", TruthTable::not()).unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, n, vec![]).unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(n, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let cut = Cut {
            signals: vec![CutSignal::direct(a)],
        };
        let tt = cone_function(&c, g, &cut).unwrap();
        assert_eq!(tt.is_constant(), Some(true));
    }
}
