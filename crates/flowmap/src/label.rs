//! FlowMap label computation (Cong & Ding, 1994).
//!
//! FlowMap computes, for every gate of a K-bounded combinational network,
//! the minimum depth of any K-LUT mapping rooted at that gate — its
//! *label* — using the key theorem that `l(v) ∈ {p, p+1}` where `p` is the
//! maximum fanin label, and `l(v) = p` iff the cone of `v` has a K-feasible
//! cut whose cut nodes all have labels `< p`. That test is a max-flow
//! computation with unit node capacities after collapsing all label-`p`
//! nodes into the sink.
//!
//! We run FlowMap directly on a *sequential* circuit: any register crossing
//! is a depth-0 source (a [`CutSignal`] tap), so each combinational block
//! bounded by FFs is labelled independently — exactly the "map each
//! combinational subcircuit with FlowMap" baseline of the paper.

use crate::cut::{Cut, CutSignal};
use graphalgo::NodeCutNetwork;
use netlist::{Circuit, NodeId};
use std::collections::HashMap;

/// Result of FlowMap labelling.
#[derive(Debug, Clone)]
pub struct Labeling {
    /// Depth label per node (PIs 0; POs carry their driver's label).
    pub labels: Vec<u64>,
    /// Best K-feasible cut per gate.
    pub cuts: HashMap<NodeId, Cut>,
    /// The LUT input bound used.
    pub k: usize,
}

impl Labeling {
    /// The mapping depth of the whole network (max PO label).
    pub fn depth(&self, c: &Circuit) -> u64 {
        c.outputs()
            .iter()
            .map(|&po| self.labels[po.index()])
            .max()
            .unwrap_or(0)
    }
}

/// One boundary object of a cone: either a gate/PI inside the block or a
/// register tap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConeObj {
    /// Direct node output.
    Node(NodeId),
    /// Register tap `(driver, chain)`.
    Tap(NodeId, Vec<netlist::Bit>),
}

/// Computes FlowMap labels and best cuts for every gate.
///
/// # Panics
///
/// Panics if the circuit is not K-bounded or has combinational cycles —
/// callers are expected to validate and decompose first.
pub fn flowmap_labels(c: &Circuit, k: usize) -> Labeling {
    assert!(c.max_fanin() <= k, "network must be {k}-bounded");
    let order = c
        .comb_topo_order()
        .expect("combinational cycles must be rejected before labelling");
    let mut labels = vec![0u64; c.num_nodes()];
    let mut cuts: HashMap<NodeId, Cut> = HashMap::new();

    for &v in &order {
        let node = c.node(v);
        if node.is_input() {
            labels[v.index()] = 0;
            continue;
        }
        if node.is_output() {
            let e = node.fanin()[0];
            let edge = c.edge(e);
            labels[v.index()] = if edge.weight() > 0 {
                0
            } else {
                labels[edge.from().index()]
            };
            continue;
        }
        // Gate: p = max label over fanin signals (taps are depth 0).
        let mut p = 0u64;
        for &e in node.fanin() {
            let edge = c.edge(e);
            if edge.weight() == 0 {
                p = p.max(labels[edge.from().index()]);
            }
        }
        let fanin_cut = || Cut {
            signals: dedup_signals(node.fanin().iter().map(|&e| {
                let edge = c.edge(e);
                CutSignal {
                    node: edge.from(),
                    weight: edge.weight(),
                    chain: edge.ffs().to_vec(),
                }
            })),
        };
        if p == 0 {
            // All fanins are depth-0 signals; depth 1 via the trivial cut.
            labels[v.index()] = 1;
            cuts.insert(v, fanin_cut());
            continue;
        }
        match min_height_cut(c, v, &labels, p, k) {
            Some(cut) => {
                labels[v.index()] = p;
                cuts.insert(v, cut);
            }
            None => {
                labels[v.index()] = p + 1;
                cuts.insert(v, fanin_cut());
            }
        }
    }
    Labeling { labels, cuts, k }
}

fn dedup_signals(it: impl Iterator<Item = CutSignal>) -> Vec<CutSignal> {
    let mut seen: Vec<CutSignal> = Vec::new();
    for s in it {
        if !seen.contains(&s) {
            seen.push(s);
        }
    }
    seen
}

/// Searches a K-feasible cut of `v`'s combinational cone whose cut objects
/// all have labels `< p` (taps and PIs have label 0 `< p`).
fn min_height_cut(c: &Circuit, v: NodeId, labels: &[u64], p: u64, k: usize) -> Option<Cut> {
    // Enumerate the cone objects: gates reachable backward through
    // weight-0 edges, plus boundary PIs and taps.
    let mut obj_index: HashMap<ConeObj, usize> = HashMap::new();
    let mut objs: Vec<ConeObj> = Vec::new();
    let intern = |objs: &mut Vec<ConeObj>, obj_index: &mut HashMap<ConeObj, usize>, o: ConeObj| {
        if let Some(&i) = obj_index.get(&o) {
            return i;
        }
        let i = objs.len();
        obj_index.insert(o.clone(), i);
        objs.push(o);
        i
    };
    let root = intern(&mut objs, &mut obj_index, ConeObj::Node(v));
    // Edges between object indices (from, to).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut stack = vec![v];
    let mut visited: HashMap<NodeId, bool> = HashMap::new();
    visited.insert(v, true);
    while let Some(g) = stack.pop() {
        let gi = obj_index[&ConeObj::Node(g)];
        for &e in c.node(g).fanin() {
            let edge = c.edge(e);
            let u = edge.from();
            let fo = if edge.weight() > 0 {
                ConeObj::Tap(u, edge.ffs().to_vec())
            } else {
                ConeObj::Node(u)
            };
            let is_gate_inside = matches!(fo, ConeObj::Node(n) if c.node(n).is_gate());
            let fi = intern(&mut objs, &mut obj_index, fo);
            edges.push((fi, gi));
            if is_gate_inside && !visited.contains_key(&u) {
                visited.insert(u, true);
                stack.push(u);
            }
        }
    }
    // Flow network: node 0 = supersource, 1.. = objects (root = sink).
    let n = objs.len();
    let mut net = NodeCutNetwork::new(n + 1);
    let source = n;
    let obj_label = |o: &ConeObj| match o {
        ConeObj::Node(u) => labels[u.index()],
        ConeObj::Tap(_, _) => 0,
    };
    for (i, o) in objs.iter().enumerate() {
        let is_source_obj = match o {
            ConeObj::Node(u) => !c.node(*u).is_gate(),
            ConeObj::Tap(_, _) => true,
        };
        if is_source_obj {
            net.add_edge(source, i);
        }
        if i != root && obj_label(o) >= p {
            // Forced inside the LUT: collapse into the sink.
            net.set_uncapacitated(i);
            net.add_edge(i, root);
        }
    }
    for &(a, b) in &edges {
        net.add_edge(a, b);
    }
    let result = net.max_flow(source, root, k as u32);
    if result.exceeded_limit {
        return None;
    }
    let mincut = net.min_cut_near_sink(source);
    let signals: Vec<CutSignal> = mincut
        .cut_nodes
        .iter()
        .map(|&i| match &objs[i] {
            ConeObj::Node(u) => CutSignal::direct(*u),
            ConeObj::Tap(u, chain) => CutSignal::tap(*u, chain.clone()),
        })
        .collect();
    debug_assert!(signals.len() <= k);
    Some(Cut { signals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    /// Balanced AND tree of depth `d` over 2^d inputs.
    fn and_tree(d: u32) -> Circuit {
        let mut c = Circuit::new(format!("tree{d}"));
        let leaves: Vec<NodeId> = (0..1u32 << d)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut level = leaves;
        let mut counter = 0;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let g = c
                    .add_gate(format!("g{counter}"), TruthTable::and(2))
                    .unwrap();
                counter += 1;
                c.connect(pair[0], g, vec![]).unwrap();
                c.connect(pair[1], g, vec![]).unwrap();
                next.push(g);
            }
            level = next;
        }
        let o = c.add_output("o").unwrap();
        c.connect(level[0], o, vec![]).unwrap();
        c
    }

    #[test]
    fn tree_depth_with_k4() {
        // 8-input AND tree of 2-input gates: depth 3 in gates; with K=4
        // LUTs the optimal depth is 2 (4+4 then combine... actually an
        // 8-input AND needs ceil(log4(8)) = 2 levels).
        let c = and_tree(3);
        let lab = flowmap_labels(&c, 4);
        assert_eq!(lab.depth(&c), 2);
    }

    #[test]
    fn tree_fits_single_lut() {
        let c = and_tree(2); // 4 inputs
        let lab = flowmap_labels(&c, 4);
        assert_eq!(lab.depth(&c), 1);
        // The root cut covers all four PIs.
        let root = c.find("g2").unwrap();
        assert_eq!(lab.cuts[&root].signals.len(), 4);
    }

    #[test]
    fn labels_monotone_along_paths() {
        let c = and_tree(4);
        let lab = flowmap_labels(&c, 5);
        for e in c.edge_ids() {
            let edge = c.edge(e);
            if edge.weight() == 0 && c.node(edge.to()).is_gate() {
                assert!(lab.labels[edge.from().index()] <= lab.labels[edge.to().index()]);
            }
        }
    }

    #[test]
    fn register_resets_depth() {
        // Chain of 6 NOT gates with a FF in the middle: each block has
        // depth 3, which fits one 5-LUT... (a 3-gate chain is a 1-input
        // function): depth 1 per block.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let mut prev = a;
        for i in 0..6 {
            let g = c.add_gate(format!("g{i}"), TruthTable::not()).unwrap();
            let ffs = if i == 3 { vec![Bit::Zero] } else { vec![] };
            c.connect(prev, g, ffs).unwrap();
            prev = g;
        }
        let o = c.add_output("o").unwrap();
        c.connect(prev, o, vec![]).unwrap();
        let lab = flowmap_labels(&c, 5);
        assert_eq!(lab.depth(&c), 1);
        // The tap into g3 is depth 0.
        assert_eq!(lab.labels[c.find("g3").unwrap().index()], 1);
    }

    #[test]
    fn reconvergence_prefers_smaller_cut() {
        // Two parallel 2-gate branches from one PI reconverging: the whole
        // cone is {5 gates} over a single PI → one LUT, depth 1 for K≥1...
        // K=2 suffices because the cut is just {a}.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let p1 = c.add_gate("p1", TruthTable::not()).unwrap();
        let p2 = c.add_gate("p2", TruthTable::buf()).unwrap();
        let q1 = c.add_gate("q1", TruthTable::buf()).unwrap();
        let q2 = c.add_gate("q2", TruthTable::not()).unwrap();
        let m = c.add_gate("m", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, p1, vec![]).unwrap();
        c.connect(p1, p2, vec![]).unwrap();
        c.connect(a, q1, vec![]).unwrap();
        c.connect(q1, q2, vec![]).unwrap();
        c.connect(p2, m, vec![]).unwrap();
        c.connect(q2, m, vec![]).unwrap();
        c.connect(m, o, vec![]).unwrap();
        let lab = flowmap_labels(&c, 2);
        assert_eq!(lab.depth(&c), 1);
        let cut = &lab.cuts[&m];
        assert_eq!(cut.signals, vec![CutSignal::direct(a)]);
    }

    #[test]
    fn deep_chain_of_wide_gates() {
        // 3 levels of 2-input gates in a chain of width 2 -> depth grows
        // when K=2 and structure is a chain of distinct-input gates.
        let mut c = Circuit::new("t");
        let mut ins = Vec::new();
        for i in 0..4 {
            ins.push(c.add_input(format!("i{i}")).unwrap());
        }
        let g1 = c.add_gate("g1", TruthTable::and(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::or(2)).unwrap();
        let g3 = c.add_gate("g3", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(ins[0], g1, vec![]).unwrap();
        c.connect(ins[1], g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(ins[2], g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(ins[3], g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        // K=4: whole thing is a 4-input function → depth 1.
        assert_eq!(flowmap_labels(&c, 4).depth(&c), 1);
        // K=2: every gate needs its own LUT (each has 3 distinct inputs in
        // its cone) → optimal depth 3.
        assert_eq!(flowmap_labels(&c, 2).depth(&c), 3);
    }
}
