//! l-values and optimal **forward** retiming (Theorem 1 of the paper).
//!
//! For a target clock period `Φ`, give each edge `e(u, v)` the length
//! `d(v) − Φ·w(e)` and let `l(v)` be the maximum path length from any PI to
//! `v`. Theorem 1: a network can be forward-retimed to period ≤ `Φ` iff
//! `l(v) ≤ Φ` for every node. The witnessing retiming is
//! `r(v) = ⌈l(v)/Φ⌉ − 1 ≤ 0` on gates (footnote 3 of the paper: forward
//! retiming is ordinary Leiserson–Saxe retiming with the extra constraints
//! `r(v) ≤ 0`).
//!
//! Positive-length cycles make `l` diverge, which the longest-path engine
//! reports as infeasibility — this covers the cycle-ratio bound
//! `Φ ≥ ⌈d(c)/w(c)⌉` automatically.

use crate::error::RetimingError;
use crate::moves::{apply_forward_retiming, MoveStats};
use crate::spec::Retiming;
use netlist::Circuit;

/// l-values of every node for a target period, or `Err` when a positive
/// cycle makes the period infeasible.
///
/// Unreachable nodes keep [`graphalgo::NEG_INF`]; validated circuits have
/// none (see `netlist::validate`).
///
/// # Errors
///
/// [`RetimingError::Infeasible`] when a positive-length cycle exists.
pub fn l_values(c: &Circuit, phi: u64) -> Result<Vec<i64>, RetimingError> {
    let edges: Vec<(usize, usize, i64)> = c
        .edge_ids()
        .map(|e| {
            let edge = c.edge(e);
            let d_head = c.node(edge.to()).delay() as i64;
            (
                edge.from().index(),
                edge.to().index(),
                d_head - (phi as i64) * (edge.weight() as i64),
            )
        })
        .collect();
    let sources: Vec<usize> = c.inputs().iter().map(|v| v.index()).collect();
    graphalgo::longest_paths(c.num_nodes(), &edges, &sources)
        .map_err(|_| RetimingError::Infeasible { period: phi })
}

/// True when the circuit can reach period ≤ `phi` using forward retiming
/// only.
pub fn forward_feasible(c: &Circuit, phi: u64) -> bool {
    match l_values(c, phi) {
        Ok(l) => c.node_ids().all(|v| l[v.index()] <= phi as i64),
        Err(_) => false,
    }
}

/// The forward retiming derived from l-values: `r(v) = ⌈l(v)/Φ⌉ − 1` on
/// gates, 0 on PIs/POs and on unreachable nodes.
///
/// # Errors
///
/// [`RetimingError::Infeasible`] when `phi` is infeasible under forward
/// retiming.
pub fn forward_retiming_for(c: &Circuit, phi: u64) -> Result<Retiming, RetimingError> {
    let l = l_values(c, phi)?;
    let phi_i = phi as i64;
    let mut r = Retiming::zero(c);
    for v in c.node_ids() {
        let lv = l[v.index()];
        if lv > phi_i {
            return Err(RetimingError::Infeasible { period: phi });
        }
        if c.node(v).is_gate() && lv > graphalgo::NEG_INF {
            r.set(v, div_ceil_i64(lv, phi_i) - 1);
        }
    }
    r.validate(c)?;
    Ok(r)
}

pub(crate) fn div_ceil_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

/// Result of a minimum-period forward retiming run.
#[derive(Debug, Clone)]
pub struct ForwardRetimingResult {
    /// The retimed circuit with computed initial state.
    pub circuit: Circuit,
    /// The achieved (minimum) clock period.
    pub period: u64,
    /// The applied retiming.
    pub retiming: Retiming,
    /// Unit-move statistics.
    pub stats: MoveStats,
}

/// Minimum clock period achievable by forward retiming alone (binary
/// search over `[1, current period]`).
///
/// # Errors
///
/// Propagates netlist errors (combinational cycles).
pub fn min_period_forward(c: &Circuit) -> Result<u64, RetimingError> {
    let upper = c.clock_period()?;
    if upper <= 1 {
        return Ok(upper);
    }
    let mut lo = 1u64;
    let mut hi = upper; // feasible: the identity retiming achieves it
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if forward_feasible(c, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Full flow: find the minimum forward-retimable period, apply the
/// retiming, compute the initial state by simulation.
///
/// # Errors
///
/// Propagates netlist errors; the application itself cannot fail for
/// forward retimings.
pub fn retime_min_period_forward(c: &Circuit) -> Result<ForwardRetimingResult, RetimingError> {
    let period = min_period_forward(c)?;
    let retiming = forward_retiming_for(c, period)?;
    let (circuit, stats) = apply_forward_retiming(c, &retiming)?;
    debug_assert!(circuit.clock_period()? <= period);
    Ok(ForwardRetimingResult {
        circuit,
        period,
        retiming,
        stats,
    })
}

/// The maximum forward retiming value `frt(v)` of every node — the minimum
/// path weight from any PI (Lemma 1 of the paper), computed by Dijkstra.
///
/// Unreachable nodes get `u64::MAX` (validated circuits have none).
pub fn max_forward_retiming_values(c: &Circuit) -> Vec<u64> {
    let adj = c.weighted_csr();
    let sources: Vec<usize> = c.inputs().iter().map(|v| v.index()).collect();
    graphalgo::dijkstra_csr(&adj, &sources)
        .into_iter()
        .map(|d| d.unwrap_or(u64::MAX))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    /// a -> g1 -> g2 -> g3 -FF-> o : period 3, forward-retimable to 2 but
    /// not 1 (only one FF).
    fn chain3() -> Circuit {
        let mut c = Circuit::new("chain3");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![Bit::One]).unwrap();
        c
    }

    #[test]
    fn l_values_chain() {
        let c = chain3();
        let l = l_values(&c, 2).unwrap();
        assert_eq!(l[c.find("g1").unwrap().index()], 1);
        assert_eq!(l[c.find("g2").unwrap().index()], 2);
        assert_eq!(l[c.find("g3").unwrap().index()], 3);
        assert_eq!(l[c.find("o").unwrap().index()], 1); // 3 - 2*1
    }

    #[test]
    fn forward_feasibility_boundaries() {
        let c = chain3();
        assert!(forward_feasible(&c, 3));
        // Φ=2: l(g3)=3 > 2 → infeasible? The FF is *behind* g3 so it cannot
        // help paths ending at g3. Forward retiming cannot beat 3 here.
        assert!(!forward_feasible(&c, 2));
    }

    #[test]
    fn ff_in_front_enables_forward_speedup() {
        // a -FF-> g1 -> g2 -> g3 -> o : FF ahead, forward retiming can
        // push it to the middle: period 3 → 2.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        assert_eq!(c.clock_period().unwrap(), 3);
        assert!(forward_feasible(&c, 2));
        assert!(!forward_feasible(&c, 1));
        let res = retime_min_period_forward(&c).unwrap();
        assert_eq!(res.period, 2);
        assert_eq!(res.circuit.clock_period().unwrap(), 2);
        assert!(exhaustive_equiv(&c, &res.circuit, 6)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn min_period_identity_when_no_ffs() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        assert_eq!(min_period_forward(&c).unwrap(), 2);
    }

    #[test]
    fn cycle_ratio_limits_period() {
        // 3-gate loop with 1 FF: best possible period is 3 for any
        // retiming (cycle ratio d/w = 3).
        let mut c = Circuit::new("loop");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, g1, vec![Bit::Zero]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        assert_eq!(min_period_forward(&c).unwrap(), 3);
        assert!(!forward_feasible(&c, 2));
    }

    #[test]
    fn retiming_values_match_formula() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::Zero]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let r = forward_retiming_for(&c, 1).unwrap();
        // l(g1) = 1 - 1 = 0 → r = -1; l(g2) = 1 → r = 0.
        assert_eq!(r.get(g1), -1);
        assert_eq!(r.get(g2), 0);
    }

    #[test]
    fn frt_values_are_min_path_weights() {
        let c = chain3();
        let frt = max_forward_retiming_values(&c);
        assert_eq!(frt[c.find("g1").unwrap().index()], 0);
        assert_eq!(frt[c.find("g3").unwrap().index()], 0);
        assert_eq!(frt[c.find("o").unwrap().index()], 1);
    }

    #[test]
    fn div_ceil_signs() {
        assert_eq!(div_ceil_i64(3, 2), 2);
        assert_eq!(div_ceil_i64(4, 2), 2);
        assert_eq!(div_ceil_i64(0, 2), 0);
        assert_eq!(div_ceil_i64(-1, 2), 0);
        assert_eq!(div_ceil_i64(-2, 2), -1);
        assert_eq!(div_ceil_i64(-3, 2), -1);
    }
}
