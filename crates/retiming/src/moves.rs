//! Applying a retiming as a sequence of atomic register moves, computing
//! the equivalent initial state as it goes.
//!
//! Figure 1 of the paper: moving a register **forward** across a gate gives
//! the new register the gate's output under the old registers' values — one
//! three-valued evaluation (always possible, linear time, Touati & Brayton
//! style). Moving a register **backward** requires *justifying* an input
//! vector that produces the old register's value — a satisfiability query
//! that may fail.
//!
//! [`apply_retiming`] decomposes any legal retiming into such unit moves.
//! A greedy maximal schedule cannot deadlock on a legal retiming: if every
//! pending node were blocked, following blocked fanins (or fanouts) would
//! exhibit a zero-weight cycle, which cannot exist because cycle weights
//! are retiming-invariant and combinational cycles are excluded.

use crate::error::RetimingError;
use crate::spec::Retiming;
use netlist::{Bit, Circuit, NodeId};

/// Statistics of one retiming application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Number of forward unit moves performed.
    pub forward_moves: usize,
    /// Number of backward unit moves performed (each needed justification).
    pub backward_moves: usize,
}

/// Applies a legal retiming to `c`, producing the retimed circuit with its
/// equivalent initial state.
///
/// Forward moves (`r(v) < 0`) are resolved by simulation and always
/// succeed. Backward moves (`r(v) > 0`) are resolved by truth-table
/// justification and can fail — the NP-hard part of the problem the paper
/// avoids by mapping with *forward* retiming only.
///
/// # Errors
///
/// * Propagates [`Retiming::validate`] errors.
/// * [`RetimingError::ConflictingFanoutValues`] /
///   [`RetimingError::NotJustifiable`] when a backward move cannot compute
///   an initial state.
pub fn apply_retiming(c: &Circuit, r: &Retiming) -> Result<(Circuit, MoveStats), RetimingError> {
    r.validate(c)?;
    let _span = engine::trace::span("apply_retiming");
    let _mem = engine::mem::scope(engine::mem::MemPhase::Retime);
    let mut out = c.clone();
    let mut remaining: Vec<i64> = r.values().to_vec();
    let mut stats = MoveStats::default();
    let total_pending = |rem: &[i64]| rem.iter().map(|v| v.unsigned_abs()).sum::<u64>();

    loop {
        let mut progressed = false;
        for v in c.node_ids() {
            if !c.node(v).is_gate() {
                continue;
            }
            while remaining[v.index()] < 0 && can_move_forward(&out, v) {
                move_forward(&mut out, v);
                remaining[v.index()] += 1;
                stats.forward_moves += 1;
                engine::telemetry::count(engine::telemetry::Counter::ForwardMoves, 1);
                engine::trace::event1("forward_move", "node", v.index() as u64);
                progressed = true;
            }
            while remaining[v.index()] > 0 {
                match try_move_backward(&mut out, v)? {
                    true => {
                        remaining[v.index()] -= 1;
                        stats.backward_moves += 1;
                        engine::telemetry::count(engine::telemetry::Counter::BackwardMoves, 1);
                        engine::trace::event1("backward_move", "node", v.index() as u64);
                        progressed = true;
                    }
                    false => break,
                }
            }
        }
        if total_pending(&remaining) == 0 {
            return Ok((out, stats));
        }
        if !progressed {
            return Err(RetimingError::Stuck {
                pending: remaining.iter().filter(|&&x| x != 0).count(),
            });
        }
    }
}

/// Applies a **forward-only** retiming (`r(v) ≤ 0` everywhere), which is
/// guaranteed to succeed on any legal retiming.
///
/// # Errors
///
/// Propagates validation errors; also rejects retimings with positive
/// values.
pub fn apply_forward_retiming(
    c: &Circuit,
    r: &Retiming,
) -> Result<(Circuit, MoveStats), RetimingError> {
    if !r.is_forward() {
        let bad = c
            .node_ids()
            .find(|&v| r.get(v) > 0)
            .expect("some positive value");
        return Err(RetimingError::NonZeroBoundary {
            node: c.node(bad).name().to_string(),
            r: r.get(bad),
        });
    }
    apply_retiming(c, r)
}

fn can_move_forward(c: &Circuit, v: NodeId) -> bool {
    c.node(v).fanin().iter().all(|&e| c.edge(e).weight() >= 1)
}

/// One forward unit move: consume the sink-end register of every fanin
/// edge, evaluate the gate on their values, emit that value as a new
/// source-end register on every fanout edge.
fn move_forward(c: &mut Circuit, v: NodeId) {
    let fanin: Vec<netlist::EdgeId> = c.node(v).fanin().to_vec();
    let fanout: Vec<netlist::EdgeId> = c.node(v).fanout().to_vec();
    let mut vals = Vec::with_capacity(fanin.len());
    for &e in &fanin {
        let chain = c.ffs_mut(e);
        vals.push(chain.pop().expect("can_move_forward checked weights"));
    }
    let tt = c.node(v).function().expect("gate").clone();
    let o = tt.eval3(&vals);
    for &e in &fanout {
        // Self-loops: the fanin pop above may alias this edge; inserting at
        // the front is still correct (the popped FF was the sink-end one).
        c.ffs_mut(e).insert(0, o);
    }
}

/// One backward unit move: consume the source-end register of every fanout
/// edge (their values must agree), justify an input vector through the
/// gate, and emit those values as sink-end registers on the fanin edges.
///
/// Returns `Ok(false)` when the node currently has a zero-weight fanout
/// edge (move not possible *yet*).
fn try_move_backward(c: &mut Circuit, v: NodeId) -> Result<bool, RetimingError> {
    let fanout: Vec<netlist::EdgeId> = c.node(v).fanout().to_vec();
    if fanout.iter().any(|&e| c.edge(e).weight() == 0) {
        return Ok(false);
    }
    // Merge the source-end values of all fanout chains.
    let mut target = Bit::X;
    for &e in &fanout {
        let front = c.edge(e).ffs()[0];
        target = target
            .merge(front)
            .ok_or_else(|| RetimingError::ConflictingFanoutValues {
                node: c.node(v).name().to_string(),
            })?;
    }
    let tt = c.node(v).function().expect("gate").clone();
    let justified: Vec<Bit> = if target == Bit::X {
        vec![Bit::X; tt.num_inputs()]
    } else {
        tt.justify(target)
            .ok_or_else(|| RetimingError::NotJustifiable {
                node: c.node(v).name().to_string(),
                target,
            })?
    };
    for &e in &fanout {
        c.ffs_mut(e).remove(0);
    }
    let fanin: Vec<netlist::EdgeId> = c.node(v).fanin().to_vec();
    for (&e, &j) in fanin.iter().zip(&justified) {
        c.ffs_mut(e).push(j);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, TruthTable};

    /// a,b -> AND (FFs on both inputs, init 1/0) -> o
    fn and_with_input_ffs() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(b, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        c
    }

    #[test]
    fn forward_move_simulates_gate() {
        let c = and_with_input_ffs();
        let mut r = Retiming::zero(&c);
        r.set(c.find("g").unwrap(), -1);
        let (rc, stats) = apply_forward_retiming(&c, &r).unwrap();
        assert_eq!(stats.forward_moves, 1);
        assert_eq!(stats.backward_moves, 0);
        // The FF moved to the output with value AND(1, 0) = 0.
        let o_edge = rc.node(rc.find("o").unwrap()).fanin()[0];
        assert_eq!(rc.edge(o_edge).ffs(), &[Bit::Zero]);
        assert!(exhaustive_equiv(&c, &rc, 4).unwrap().is_equivalent());
    }

    #[test]
    fn backward_move_justifies() {
        // Dual: AND with FF on output (init 1) moved back to the inputs.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, 1);
        let (rc, stats) = apply_retiming(&c, &r).unwrap();
        assert_eq!(stats.backward_moves, 1);
        // AND output 1 forces both inputs to 1.
        for &e in rc.node(rc.find("g").unwrap()).fanin() {
            assert_eq!(rc.edge(e).ffs(), &[Bit::One]);
        }
        assert!(exhaustive_equiv(&c, &rc, 4).unwrap().is_equivalent());
    }

    #[test]
    fn backward_zero_through_and_uses_x() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::Zero]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, 1);
        let (rc, _) = apply_retiming(&c, &r).unwrap();
        // One input 0, the other X — and the circuits still conform.
        let vals: Vec<Bit> = rc
            .node(rc.find("g").unwrap())
            .fanin()
            .iter()
            .map(|&e| rc.edge(e).ffs()[0])
            .collect();
        assert!(vals.contains(&Bit::Zero));
        assert!(exhaustive_equiv(&c, &rc, 4).unwrap().is_equivalent());
    }

    #[test]
    fn backward_through_xor_infeasible_target_never_happens_but_constant_does() {
        // Justifying 1 through a constant-0 gate must fail.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::const_zero(1)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, 1);
        assert!(matches!(
            apply_retiming(&c, &r),
            Err(RetimingError::NotJustifiable { .. })
        ));
    }

    #[test]
    fn conflicting_fanout_values_fail_backward() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let h1 = c.add_gate("h1", TruthTable::buf()).unwrap();
        let h2 = c.add_gate("h2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, h1, vec![Bit::Zero]).unwrap();
        c.connect(g, h2, vec![Bit::One]).unwrap();
        c.connect(h1, o1, vec![]).unwrap();
        c.connect(h2, o2, vec![]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, 1);
        assert!(matches!(
            apply_retiming(&c, &r),
            Err(RetimingError::ConflictingFanoutValues { .. })
        ));
    }

    #[test]
    fn multi_step_forward_through_chain() {
        // Two FFs pulled through two gates; requires ordered unit moves.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::Zero, Bit::One]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g1, -2);
        r.set(g2, -2);
        let (rc, stats) = apply_forward_retiming(&c, &r).unwrap();
        assert_eq!(stats.forward_moves, 4);
        let o_edge = rc.node(rc.find("o").unwrap()).fanin()[0];
        // not(not(x)) = x: values arrive in order [0, 1] at the output.
        assert_eq!(rc.edge(o_edge).ffs(), &[Bit::Zero, Bit::One]);
        assert!(exhaustive_equiv(&c, &rc, 5).unwrap().is_equivalent());
    }

    #[test]
    fn forward_through_reconvergence() {
        // Diamond with FFs on both branches; g merges with XOR.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let u = c.add_gate("u", TruthTable::buf()).unwrap();
        let p = c.add_gate("p", TruthTable::not()).unwrap();
        let q = c.add_gate("q", TruthTable::buf()).unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, u, vec![]).unwrap();
        c.connect(u, p, vec![Bit::One]).unwrap();
        c.connect(u, q, vec![Bit::One]).unwrap();
        c.connect(p, g, vec![]).unwrap();
        c.connect(q, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(p, -1);
        r.set(q, -1);
        r.set(g, -1);
        let (rc, _) = apply_forward_retiming(&c, &r).unwrap();
        let o_edge = rc.node(rc.find("o").unwrap()).fanin()[0];
        // xor(not(1), buf(1)) = xor(0, 1) = 1.
        assert_eq!(rc.edge(o_edge).ffs(), &[Bit::One]);
        assert!(exhaustive_equiv(&c, &rc, 5).unwrap().is_equivalent());
    }

    #[test]
    fn forward_around_self_loop() {
        // Gate with a self-loop FF: moving forward re-inserts on the loop.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(g, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, -1);
        let (rc, _) = apply_forward_retiming(&c, &r).unwrap();
        // Self-loop keeps weight 1; output edge gains one FF.
        assert!(exhaustive_equiv(&c, &rc, 6).unwrap().is_equivalent());
        assert_eq!(rc.clock_period().unwrap(), 1);
    }

    #[test]
    fn x_target_backward_needs_no_justification() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::const_zero(1)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::X]).unwrap();
        let mut r = Retiming::zero(&c);
        r.set(g, 1);
        let (rc, stats) = apply_retiming(&c, &r).unwrap();
        assert_eq!(stats.backward_moves, 1);
        assert!(exhaustive_equiv(&c, &rc, 4).unwrap().is_equivalent());
    }

    #[test]
    fn identity_retiming_is_noop() {
        let c = and_with_input_ffs();
        let (rc, stats) = apply_retiming(&c, &Retiming::zero(&c)).unwrap();
        assert_eq!(stats, MoveStats::default());
        assert_eq!(rc.ff_count_total(), c.ff_count_total());
    }
}
