//! General (bidirectional) minimum-period retiming — Leiserson & Saxe's
//! FEAS algorithm.
//!
//! FEAS decides whether a clock period `Φ` is achievable by *any* legal
//! retiming: starting from `r = 0`, repeatedly compute the combinational
//! arrival times `Δ(v)` of the retimed graph and increment `r(v)` for every
//! gate with `Δ(v) > Φ`. After `|V| − 1` rounds the retimed graph meets `Φ`
//! iff `Φ` is feasible. This is the engine behind the TurboMap baseline's
//! final retiming step and behind classic "map then retime" flows.
//!
//! The resulting retiming generally moves registers **backward** (positive
//! `r`), so applying it needs justification-based initial state computation
//! and can fail — exactly the failure mode the paper's TurboMap-frt is
//! designed to avoid.

use crate::error::RetimingError;
use crate::moves::{apply_retiming, MoveStats};
use crate::spec::Retiming;
use netlist::{Circuit, NodeId};

/// Arrival times `Δ(v)` of the graph retimed by `r`: longest gate-delay
/// path over edges with `w_r = 0` ending at `v`.
fn arrival_times(c: &Circuit, r: &Retiming) -> Result<Vec<u64>, RetimingError> {
    let n = c.num_nodes();
    let edges: Vec<(usize, usize)> = c
        .edge_ids()
        .filter(|&e| r.retimed_weight(c, e) == 0)
        .map(|e| {
            let edge = c.edge(e);
            (edge.from().index(), edge.to().index())
        })
        .collect();
    let adj = graphalgo::Csr::from_edges(n, &edges);
    let order = graphalgo::topo_order_csr(&adj).map_err(|_| {
        RetimingError::Netlist(netlist::NetlistError::CombinationalCycle { nodes: vec![] })
    })?;
    let mut delta = vec![0u64; n];
    for &vi in &order {
        let v = NodeId(vi as u32);
        let mut best = 0u64;
        for &e in c.node(v).fanin() {
            if r.retimed_weight(c, e) == 0 {
                best = best.max(delta[c.edge(e).from().index()]);
            }
        }
        delta[vi] = best + c.node(v).delay();
    }
    Ok(delta)
}

/// Clock period of the graph retimed by `r`.
fn retimed_period(c: &Circuit, r: &Retiming) -> Result<u64, RetimingError> {
    Ok(arrival_times(c, r)?.into_iter().max().unwrap_or(0))
}

/// FEAS: returns a legal retiming achieving period ≤ `phi`, or `None` when
/// `phi` is infeasible for any retiming.
///
/// # Errors
///
/// Propagates combinational-cycle errors from the input circuit.
pub fn feasible_general(c: &Circuit, phi: u64) -> Result<Option<Retiming>, RetimingError> {
    let mut r = Retiming::zero(c);
    let n = c.num_nodes();
    for _ in 0..n.saturating_sub(1) {
        let delta = arrival_times(c, &r)?;
        let mut changed = false;
        for v in c.node_ids() {
            if c.node(v).is_gate() && delta[v.index()] > phi {
                r.set(v, r.get(v) + 1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // When `phi` is infeasible the iteration may push registers past the
    // PO boundary (negative edge weights); that is a definitive "no".
    // When `phi` is feasible, FEAS computes the minimal retiming, which is
    // bounded above by any legal one and therefore legal itself.
    if r.validate(c).is_err() {
        return Ok(None);
    }
    if retimed_period(c, &r)? <= phi {
        Ok(Some(r))
    } else {
        Ok(None)
    }
}

/// Minimum clock period achievable by **general** retiming (binary search
/// with FEAS as the feasibility oracle).
///
/// # Errors
///
/// Propagates netlist errors.
pub fn min_period_general(c: &Circuit) -> Result<u64, RetimingError> {
    let upper = c.clock_period()?;
    if upper <= 1 {
        return Ok(upper);
    }
    let mut lo = 1u64;
    let mut hi = upper;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible_general(c, mid)?.is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Result of a general minimum-period retiming run.
#[derive(Debug, Clone)]
pub struct GeneralRetimingResult {
    /// The retimed circuit with computed initial state.
    pub circuit: Circuit,
    /// The achieved clock period.
    pub period: u64,
    /// The applied retiming.
    pub retiming: Retiming,
    /// Unit-move statistics.
    pub stats: MoveStats,
}

/// Full flow: minimum general-retiming period, then application with
/// initial state computation.
///
/// # Errors
///
/// [`RetimingError::ConflictingFanoutValues`] or
/// [`RetimingError::NotJustifiable`] when no equivalent initial state could
/// be computed for the backward moves — the NP-hard case; callers (and the
/// Table-1 harness) treat this as the paper's `⋆` outcome.
pub fn retime_min_period_general(c: &Circuit) -> Result<GeneralRetimingResult, RetimingError> {
    let period = min_period_general(c)?;
    let retiming = feasible_general(c, period)?.ok_or(RetimingError::Infeasible { period })?;
    let (circuit, stats) = apply_retiming(c, &retiming)?;
    debug_assert!(circuit.clock_period()? <= period);
    Ok(GeneralRetimingResult {
        circuit,
        period,
        retiming,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvalues::min_period_forward;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    /// FF at the *end* of a 3-gate chain: forward retiming is stuck at 3,
    /// general retiming moves the FF backward to reach 2.
    fn chain3_ff_behind() -> Circuit {
        let mut c = Circuit::new("chain3");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![Bit::One]).unwrap();
        c
    }

    #[test]
    fn general_beats_forward_here() {
        let c = chain3_ff_behind();
        assert_eq!(min_period_forward(&c).unwrap(), 3);
        assert_eq!(min_period_general(&c).unwrap(), 2);
    }

    #[test]
    fn general_retiming_applies_with_justified_state() {
        let c = chain3_ff_behind();
        let res = retime_min_period_general(&c).unwrap();
        assert_eq!(res.period, 2);
        assert!(res.stats.backward_moves > 0);
        assert!(exhaustive_equiv(&c, &res.circuit, 6)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn cycle_ratio_bound_respected() {
        // 4 gates on a loop with 2 FFs: ratio 2, so period 2 is optimal.
        let mut c = Circuit::new("loop");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::not()).unwrap();
        let g4 = c.add_gate("g4", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, g3, vec![Bit::Zero]).unwrap();
        c.connect(g3, g4, vec![]).unwrap();
        c.connect(g4, g1, vec![Bit::Zero]).unwrap();
        c.connect(g4, o, vec![]).unwrap();
        assert_eq!(min_period_general(&c).unwrap(), 2);
    }

    #[test]
    fn feas_identity_for_already_fast() {
        let mut c = Circuit::new("fast");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let r = feasible_general(&c, 1).unwrap().unwrap();
        assert_eq!(r.values().iter().filter(|&&x| x != 0).count(), 0);
    }

    #[test]
    fn infeasible_below_cycle_ratio() {
        let c = chain3_ff_behind();
        assert!(feasible_general(&c, 1).unwrap().is_none());
    }

    #[test]
    fn general_result_equivalent_on_reconvergent_circuit() {
        // Reconvergent circuit with FFs behind the merge gate.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let p = c.add_gate("p", TruthTable::not()).unwrap();
        let q = c.add_gate("q", TruthTable::buf()).unwrap();
        let m = c.add_gate("m", TruthTable::or(2)).unwrap();
        let t = c.add_gate("t", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, p, vec![]).unwrap();
        c.connect(b, q, vec![]).unwrap();
        c.connect(p, m, vec![]).unwrap();
        c.connect(q, m, vec![]).unwrap();
        c.connect(m, t, vec![]).unwrap();
        c.connect(t, o, vec![Bit::Zero]).unwrap();
        let res = retime_min_period_general(&c).unwrap();
        assert!(res.period <= 2);
        assert!(exhaustive_equiv(&c, &res.circuit, 5)
            .unwrap()
            .is_equivalent());
    }
}
