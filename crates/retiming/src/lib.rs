//! Retiming engine for the TurboMap-frt reproduction.
//!
//! Implements the register-movement substrate the paper builds on:
//!
//! * [`spec`] — retiming assignments (Leiserson–Saxe sign convention) and
//!   legality checking.
//! * [`moves`] — realising a retiming as atomic register moves while
//!   computing the **equivalent initial state**: forward moves by
//!   three-valued simulation (always succeed — Fig. 1 of the paper),
//!   backward moves by truth-table justification (may fail — the NP-hard
//!   case).
//! * [`lvalues`] — Theorem 1: l-values, forward feasibility and optimal
//!   forward-only retiming.
//! * [`feas`] — Leiserson–Saxe FEAS for *general* minimum-period retiming
//!   (used by the TurboMap and FlowMap-frt baselines).
//! * [`pushback`] — the Section-5 methodology: a preprocessing pass that
//!   pushes registers backward toward the PIs wherever initial states can
//!   be justified, enlarging the forward-retiming solution space.
//! * [`minarea`] — greedy register-count reduction under a period budget
//!   with initial states maintained (the direction of the paper's
//!   reference \[9\]).
//!
//! # Examples
//!
//! ```
//! use netlist::{Bit, Circuit, TruthTable};
//! use retiming::{min_period_forward, retime_min_period_forward};
//!
//! # fn main() -> Result<(), retiming::RetimingError> {
//! // FF ahead of a 2-gate chain: forward retiming halves the period.
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a").unwrap();
//! let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
//! let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
//! let o = c.add_output("o").unwrap();
//! c.connect(a, g1, vec![Bit::Zero]).unwrap();
//! c.connect(g1, g2, vec![]).unwrap();
//! c.connect(g2, o, vec![]).unwrap();
//!
//! assert_eq!(min_period_forward(&c)?, 1);
//! let res = retime_min_period_forward(&c)?;
//! assert_eq!(res.circuit.clock_period().unwrap(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod feas;
pub mod lvalues;
pub mod minarea;
pub mod moves;
pub mod pushback;
pub mod spec;

pub use error::RetimingError;
pub use feas::{
    feasible_general, min_period_general, retime_min_period_general, GeneralRetimingResult,
};
pub use lvalues::{
    forward_feasible, forward_retiming_for, l_values, max_forward_retiming_values,
    min_period_forward, retime_min_period_forward, ForwardRetimingResult,
};
pub use minarea::{minimize_registers, MinAreaReport};
pub use moves::{apply_forward_retiming, apply_retiming, MoveStats};
pub use pushback::{max_backward_retiming_values, push_registers_backward, PushBackStats};
pub use spec::Retiming;
