//! Error types of the retiming engine.

/// Errors from retiming computation and application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimingError {
    /// The retiming vector was built for a different circuit.
    SizeMismatch {
        /// Node count of the circuit.
        expected: usize,
        /// Length of the retiming vector.
        actual: usize,
    },
    /// A PI or PO has a non-zero retiming value.
    NonZeroBoundary {
        /// The boundary node.
        node: String,
        /// Its illegal value.
        r: i64,
    },
    /// An edge would carry a negative number of registers.
    NegativeEdgeWeight {
        /// Source node name.
        from: String,
        /// Sink node name.
        to: String,
        /// The (negative) retimed weight.
        weight: i64,
    },
    /// No move order could realise the retiming (indicates an illegal
    /// retiming slipped past validation).
    Stuck {
        /// Nodes with unfinished moves.
        pending: usize,
    },
    /// Backward move impossible: the fanout registers of a node hold
    /// conflicting initial values (`0` vs `1`).
    ConflictingFanoutValues {
        /// The node whose registers conflict.
        node: String,
    },
    /// Backward move impossible: the required output value is not in the
    /// gate function's range (e.g. justifying `1` through constant 0).
    NotJustifiable {
        /// The gate that could not be justified.
        node: String,
        /// The value that was required at its output.
        target: netlist::Bit,
    },
    /// The target clock period is infeasible for this circuit.
    Infeasible {
        /// The period that was attempted.
        period: u64,
    },
    /// An underlying netlist error (combinational cycle etc.).
    Netlist(netlist::NetlistError),
}

impl std::fmt::Display for RetimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetimingError::SizeMismatch { expected, actual } => {
                write!(f, "retiming for {actual} nodes applied to {expected}")
            }
            RetimingError::NonZeroBoundary { node, r } => {
                write!(f, "boundary node `{node}` has retiming value {r}")
            }
            RetimingError::NegativeEdgeWeight { from, to, weight } => {
                write!(f, "edge {from} -> {to} would carry {weight} registers")
            }
            RetimingError::Stuck { pending } => {
                write!(f, "retiming realisation stuck with {pending} moves pending")
            }
            RetimingError::ConflictingFanoutValues { node } => {
                write!(f, "conflicting fanout register values at `{node}`")
            }
            RetimingError::NotJustifiable { node, target } => {
                write!(f, "cannot justify output {target} at `{node}`")
            }
            RetimingError::Infeasible { period } => {
                write!(f, "clock period {period} is infeasible")
            }
            RetimingError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RetimingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetimingError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for RetimingError {
    fn from(e: netlist::NetlistError) -> Self {
        RetimingError::Netlist(e)
    }
}
