//! Retiming assignments and their legality.
//!
//! A retiming is a map `r : V → Z` in the Leiserson–Saxe sign convention:
//! after retiming, edge `e(u, v)` carries `w_r(e) = w(e) + r(v) − r(u)`
//! flip-flops. **Negative** `r(v)` moves registers *forward* across `v`
//! (from its inputs to its output); positive `r(v)` moves them backward.
//! The paper's forward-retiming values satisfy `r_M(v) = −r(v) ≥ 0`
//! (footnote 2 of the paper).
//!
//! Primary inputs and outputs are the environment boundary and must have
//! `r = 0`.

use crate::error::RetimingError;
use netlist::{Circuit, NodeId};

/// A retiming assignment for one circuit (indexed by node id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retiming {
    values: Vec<i64>,
}

impl Retiming {
    /// The identity retiming (all zeros) for `c`.
    pub fn zero(c: &Circuit) -> Retiming {
        Retiming {
            values: vec![0; c.num_nodes()],
        }
    }

    /// Builds a retiming from per-node values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the circuit size implied by
    /// later use (checked at [`Retiming::validate`]).
    pub fn from_values(values: Vec<i64>) -> Retiming {
        Retiming { values }
    }

    /// The retiming value of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn get(&self, v: NodeId) -> i64 {
        self.values[v.index()]
    }

    /// Sets the retiming value of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn set(&mut self, v: NodeId, r: i64) {
        self.values[v.index()] = r;
    }

    /// All values, indexed by node id.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The retimed weight `w_r(e) = w(e) + r(to) − r(from)` of an edge.
    ///
    /// # Panics
    ///
    /// Panics when `self` was built for a different circuit.
    pub fn retimed_weight(&self, c: &Circuit, e: netlist::EdgeId) -> i64 {
        let edge = c.edge(e);
        edge.weight() as i64 + self.get(edge.to()) - self.get(edge.from())
    }

    /// True when every node value is ≤ 0 (a pure forward retiming).
    pub fn is_forward(&self) -> bool {
        self.values.iter().all(|&r| r <= 0)
    }

    /// Checks legality against `c`: sizes match, PIs/POs have `r = 0`, and
    /// every retimed edge weight is non-negative.
    ///
    /// # Errors
    ///
    /// * [`RetimingError::SizeMismatch`] when built for another circuit,
    /// * [`RetimingError::NonZeroBoundary`] when a PI/PO moves,
    /// * [`RetimingError::NegativeEdgeWeight`] when an edge would carry a
    ///   negative number of registers.
    pub fn validate(&self, c: &Circuit) -> Result<(), RetimingError> {
        if self.values.len() != c.num_nodes() {
            return Err(RetimingError::SizeMismatch {
                expected: c.num_nodes(),
                actual: self.values.len(),
            });
        }
        for &v in c.inputs().iter().chain(c.outputs()) {
            if self.get(v) != 0 {
                return Err(RetimingError::NonZeroBoundary {
                    node: c.node(v).name().to_string(),
                    r: self.get(v),
                });
            }
        }
        for e in c.edge_ids() {
            let wr = self.retimed_weight(c, e);
            if wr < 0 {
                let edge = c.edge(e);
                return Err(RetimingError::NegativeEdgeWeight {
                    from: c.node(edge.from()).name().to_string(),
                    to: c.node(edge.to()).name().to_string(),
                    weight: wr,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    fn pipeline() -> Circuit {
        // a -> g1 -FF-> g2 -> o
        let mut c = Circuit::new("p");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::buf()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::buf()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        c
    }

    #[test]
    fn zero_is_legal() {
        let c = pipeline();
        Retiming::zero(&c).validate(&c).unwrap();
    }

    #[test]
    fn forward_move_legal() {
        let c = pipeline();
        let mut r = Retiming::zero(&c);
        r.set(c.find("g2").unwrap(), -1); // pull the FF through g2
        r.validate(&c).unwrap();
        assert!(r.is_forward());
        // FF moved to the g2 -> o edge.
        let e_out = c.node(c.find("o").unwrap()).fanin()[0];
        assert_eq!(r.retimed_weight(&c, e_out), 1);
    }

    #[test]
    fn illegal_negative_weight() {
        let c = pipeline();
        let mut r = Retiming::zero(&c);
        r.set(c.find("g1").unwrap(), -1); // would need a FF on a -> g1
        assert!(matches!(
            r.validate(&c),
            Err(RetimingError::NegativeEdgeWeight { .. })
        ));
    }

    #[test]
    fn boundary_must_be_zero() {
        let c = pipeline();
        let mut r = Retiming::zero(&c);
        r.set(c.find("a").unwrap(), -1);
        assert!(matches!(
            r.validate(&c),
            Err(RetimingError::NonZeroBoundary { .. })
        ));
    }

    #[test]
    fn size_mismatch_detected() {
        let c = pipeline();
        let r = Retiming::from_values(vec![0; 2]);
        assert!(matches!(
            r.validate(&c),
            Err(RetimingError::SizeMismatch { .. })
        ));
    }
}
