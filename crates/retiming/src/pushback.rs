//! Backward-retiming preprocessing: push registers toward the primary
//! inputs as far as initial states can be justified.
//!
//! Section 5 of the paper proposes a methodology enabled by TurboMap-frt:
//! since mapping with *forward* retiming is solved optimally afterwards, a
//! separate preprocessing step may move registers **backward** (toward the
//! PIs) as aggressively as it likes — enlarging the forward solution space —
//! "as long as the equivalent initial states can be computed, without taking
//! into consideration the impact on the clock period".
//!
//! [`push_registers_backward`] implements that preprocessing greedily: in
//! reverse topological order it performs backward unit moves wherever every
//! fanout edge carries a register, the register values agree, and the gate
//! function can justify them; per-node movement is capped by the maximum
//! backward retiming value (min path weight to any PO) so the loop
//! terminates even on register-heavy cycles.

use crate::spec::Retiming;
use netlist::{Bit, Circuit, NodeId};

/// Outcome statistics of a backward push.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushBackStats {
    /// Backward unit moves performed.
    pub moves: usize,
    /// Moves skipped because fanout register values conflicted.
    pub conflicts: usize,
    /// Moves skipped because the gate could not justify the value.
    pub unjustifiable: usize,
    /// Rounds executed.
    pub rounds: usize,
}

/// Maximum backward retiming value per node: the minimum path weight from
/// the node to any PO (the dual of `frt(v)`).
pub fn max_backward_retiming_values(c: &Circuit) -> Vec<u64> {
    // Dijkstra on the reversed graph from the POs.
    let n = c.num_nodes();
    let redges: Vec<(usize, usize, u64)> = c
        .edge_ids()
        .map(|e| {
            let edge = c.edge(e);
            (edge.to().index(), edge.from().index(), edge.weight() as u64)
        })
        .collect();
    let radj = graphalgo::WeightedCsr::from_edges(n, &redges);
    let sources: Vec<usize> = c.outputs().iter().map(|v| v.index()).collect();
    graphalgo::dijkstra_csr(&radj, &sources)
        .into_iter()
        .map(|d| d.unwrap_or(0)) // nodes feeding no PO cannot move backward
        .collect()
}

/// Pushes registers backward (toward the PIs) wherever their initial
/// values can be justified. Returns the rewritten circuit, the implied
/// retiming (positive values) and statistics.
///
/// `max_rounds` bounds the number of reverse-topological sweeps; each round
/// performs at least one move or the loop stops, so the preprocessing
/// always terminates.
pub fn push_registers_backward(
    c: &Circuit,
    max_rounds: usize,
) -> (Circuit, Retiming, PushBackStats) {
    let mut out = c.clone();
    let mut stats = PushBackStats::default();
    let mut retiming = Retiming::zero(c);
    let brt = max_backward_retiming_values(c);
    // Reverse topological order of the combinational subgraph: consumers
    // first, so a register freed by a move can cascade within one round.
    let order: Vec<NodeId> = match c.comb_topo_order() {
        Ok(mut o) => {
            o.reverse();
            o
        }
        Err(_) => return (out, retiming, stats),
    };
    for _ in 0..max_rounds {
        stats.rounds += 1;
        let mut moved_this_round = false;
        for &v in &order {
            if !out.node(v).is_gate() {
                continue;
            }
            loop {
                if retiming.get(v) as u64 >= brt[v.index()] {
                    break;
                }
                match backward_move(&mut out, v) {
                    BackwardOutcome::Moved => {
                        retiming.set(v, retiming.get(v) + 1);
                        stats.moves += 1;
                        moved_this_round = true;
                    }
                    BackwardOutcome::NoRegisters => break,
                    BackwardOutcome::Conflict => {
                        stats.conflicts += 1;
                        break;
                    }
                    BackwardOutcome::Unjustifiable => {
                        stats.unjustifiable += 1;
                        break;
                    }
                }
            }
        }
        if !moved_this_round {
            break;
        }
    }
    (out, retiming, stats)
}

enum BackwardOutcome {
    Moved,
    NoRegisters,
    Conflict,
    Unjustifiable,
}

fn backward_move(c: &mut Circuit, v: NodeId) -> BackwardOutcome {
    let fanout: Vec<netlist::EdgeId> = c.node(v).fanout().to_vec();
    if fanout.is_empty() || fanout.iter().any(|&e| c.edge(e).weight() == 0) {
        return BackwardOutcome::NoRegisters;
    }
    let mut target = Bit::X;
    for &e in &fanout {
        match target.merge(c.edge(e).ffs()[0]) {
            Some(m) => target = m,
            None => return BackwardOutcome::Conflict,
        }
    }
    let tt = c.node(v).function().expect("gate").clone();
    let justified: Vec<Bit> = if target == Bit::X {
        vec![Bit::X; tt.num_inputs()]
    } else {
        match tt.justify(target) {
            Some(j) => j,
            None => return BackwardOutcome::Unjustifiable,
        }
    };
    for &e in &fanout {
        c.ffs_mut(e).remove(0);
    }
    let fanin: Vec<netlist::EdgeId> = c.node(v).fanin().to_vec();
    for (&e, &j) in fanin.iter().zip(&justified) {
        c.ffs_mut(e).push(j);
    }
    BackwardOutcome::Moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, TruthTable};

    #[test]
    fn pushes_chain_to_inputs() {
        // a -> g1 -> g2 -FF-> o : both gates can justify buffers, FF lands
        // on a -> g1.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![]).unwrap();
        c.connect(g2, o, vec![Bit::One]).unwrap();
        let (pushed, r, stats) = push_registers_backward(&c, 8);
        assert_eq!(stats.moves, 2);
        assert_eq!(r.get(g1), 1);
        assert_eq!(r.get(g2), 1);
        let e = pushed.node(g1).fanin()[0];
        assert_eq!(pushed.edge(e).weight(), 1);
        // not(not(x)) = x, so the justified value is 1 at a -> g1.
        assert_eq!(pushed.edge(e).ffs(), &[Bit::One]);
        assert!(exhaustive_equiv(&c, &pushed, 5).unwrap().is_equivalent());
    }

    #[test]
    fn conflict_blocks_push() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::buf()).unwrap();
        let h1 = c.add_gate("h1", TruthTable::buf()).unwrap();
        let h2 = c.add_gate("h2", TruthTable::buf()).unwrap();
        let o1 = c.add_output("o1").unwrap();
        let o2 = c.add_output("o2").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, h1, vec![Bit::Zero]).unwrap();
        c.connect(g, h2, vec![Bit::One]).unwrap();
        c.connect(h1, o1, vec![]).unwrap();
        c.connect(h2, o2, vec![]).unwrap();
        let (pushed, _, stats) = push_registers_backward(&c, 4);
        assert!(stats.conflicts > 0);
        // Registers stay where they were.
        assert_eq!(pushed.ff_count_total(), c.ff_count_total());
        assert!(exhaustive_equiv(&c, &pushed, 4).unwrap().is_equivalent());
    }

    #[test]
    fn brt_caps_cycle_movement() {
        // A 2-gate register loop with a tap to the PO: brt bounds moves so
        // the loop terminates.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::xor(2)).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, g1, vec![Bit::One]).unwrap();
        c.connect(g2, o, vec![]).unwrap();
        let (pushed, _, _) = push_registers_backward(&c, 16);
        assert!(exhaustive_equiv(&c, &pushed, 6).unwrap().is_equivalent());
    }

    #[test]
    fn x_registers_always_push() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::xor(2)).unwrap();
        let h = c.add_gate("h", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(h, g, vec![]).unwrap();
        c.connect(a, h, vec![]).unwrap();
        c.connect(g, o, vec![Bit::X]).unwrap();
        let (pushed, r, stats) = push_registers_backward(&c, 8);
        assert!(stats.moves >= 1);
        assert!(r.get(g) >= 1);
        assert!(exhaustive_equiv(&c, &pushed, 4).unwrap().is_equivalent());
    }

    #[test]
    fn brt_values() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![]).unwrap();
        c.connect(g1, g2, vec![Bit::Zero]).unwrap();
        c.connect(g2, o, vec![Bit::One]).unwrap();
        let brt = max_backward_retiming_values(&c);
        assert_eq!(brt[g1.index()], 2);
        assert_eq!(brt[g2.index()], 1);
        assert_eq!(brt[a.index()], 2);
    }
}
