//! Register-count reduction under a clock period constraint — a greedy
//! take on minimum-area retiming *with equivalent initial states* (the
//! problem of Maheshwari & Sapatnekar \[9\], cited by the paper as the
//! competing approach to initial-state-aware retiming).
//!
//! The optimal formulation is a min-cost flow; here we use hill climbing
//! over unit moves, which suffices as a post-pass: a move (forward or
//! backward across one gate) is accepted when it
//!
//! 1. keeps every combinational path within the period budget,
//! 2. strictly reduces the shared register count, and
//! 3. can compute the initial state (backward moves must justify —
//!    failed justification simply rejects the move, so the result always
//!    carries a valid equivalent initial state).
//!
//! A gate with more fanins than fanouts reduces registers by moving
//! forward; the opposite by moving backward. Moves repeat to a fixpoint.

use crate::error::RetimingError;
use crate::spec::Retiming;
use netlist::{Circuit, NodeId};

/// Outcome of the register-minimisation pass.
#[derive(Debug, Clone)]
pub struct MinAreaReport {
    /// The rewritten circuit (valid initial state included).
    pub circuit: Circuit,
    /// Shared register count before.
    pub before: usize,
    /// Shared register count after.
    pub after: usize,
    /// Accepted unit moves.
    pub moves: usize,
}

/// Greedily reduces the shared register count without increasing the
/// clock period beyond `period_budget` (pass the current period to keep
/// timing, or a larger budget to trade speed for area).
///
/// # Errors
///
/// Propagates [`RetimingError`] for structurally invalid inputs;
/// justification failures reject individual moves instead of failing.
pub fn minimize_registers(
    c: &Circuit,
    period_budget: u64,
    max_rounds: usize,
) -> Result<MinAreaReport, RetimingError> {
    let before = c.ff_count_shared();
    let mut current = c.clone();
    let mut moves = 0usize;
    for _ in 0..max_rounds {
        let mut improved = false;
        let order = current.comb_topo_order()?;
        for &v in &order {
            if !current.node(v).is_gate() {
                continue;
            }
            for dir in [-1i64, 1] {
                if let Some(next) = try_unit_move(&current, v, dir, period_budget) {
                    if next.ff_count_shared() < current.ff_count_shared() {
                        current = next;
                        moves += 1;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    Ok(MinAreaReport {
        after: current.ff_count_shared(),
        circuit: current,
        before,
        moves,
    })
}

/// Applies a single unit move (dir = −1 forward, +1 backward) at `v` if
/// it is legal, keeps the period budget, and can compute initial states.
fn try_unit_move(c: &Circuit, v: NodeId, dir: i64, budget: u64) -> Option<Circuit> {
    let mut r = Retiming::zero(c);
    r.set(v, dir);
    if r.validate(c).is_err() {
        return None;
    }
    let (next, _) = crate::moves::apply_retiming(c, &r).ok()?;
    if next.clock_period().ok()? > budget {
        return None;
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{exhaustive_equiv, Bit, TruthTable};

    #[test]
    fn shares_registers_through_forward_move() {
        // Two registers on the two fanins of an AND merge into one on the
        // output (2 → 1 with sharing).
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(b, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        let r = minimize_registers(&c, 1, 8).unwrap();
        assert_eq!(r.before, 2);
        assert_eq!(r.after, 1);
        assert!(exhaustive_equiv(&c, &r.circuit, 4).unwrap().is_equivalent());
    }

    #[test]
    fn period_budget_blocks_moves() {
        // Moving forward would merge registers but lengthen the critical
        // path beyond the budget: a -FF> g1 -> o with g2 also reading a.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g1 = c.add_gate("g1", TruthTable::not()).unwrap();
        let g2 = c.add_gate("g2", TruthTable::not()).unwrap();
        let g3 = c.add_gate("g3", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g1, vec![Bit::One]).unwrap();
        c.connect(a, g2, vec![Bit::One]).unwrap();
        c.connect(g1, g3, vec![]).unwrap();
        c.connect(g2, g3, vec![]).unwrap();
        c.connect(g3, o, vec![]).unwrap();
        // Budget 1: the two input registers (shared drivers differ: a has
        // two fanout edges → shared count 1 already)… compute and assert
        // no regression.
        let before = c.ff_count_shared();
        let budget = c.clock_period().unwrap();
        let r = minimize_registers(&c, budget, 8).unwrap();
        assert!(r.after <= before);
        assert!(r.circuit.clock_period().unwrap() <= budget);
        assert!(exhaustive_equiv(&c, &r.circuit, 4).unwrap().is_equivalent());
    }

    #[test]
    fn backward_move_reduces_fanout_registers() {
        // One driver feeding two registered consumers: pulling the
        // registers backward across the driver gate shares... (the shared
        // count is already 1 via max-fanout); instead check a gate whose
        // two fanout edges each carry a register and whose single fanin
        // can hold one: backward reduces 1 → 1 (no change) or the richer
        // case below: NOT with two registered fanouts.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let h1 = c.add_gate("h1", TruthTable::not()).unwrap();
        let h2 = c.add_gate("h2", TruthTable::not()).unwrap();
        let m = c.add_gate("m", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap();
        c.connect(g, h1, vec![Bit::One]).unwrap();
        c.connect(g, h2, vec![Bit::One]).unwrap();
        c.connect(h1, m, vec![]).unwrap();
        c.connect(h2, m, vec![]).unwrap();
        c.connect(m, o, vec![]).unwrap();
        // g's fanouts share one register already; a backward move would
        // put one register on a→g instead: count stays 1, so the greedy
        // pass must simply not regress and must keep equivalence.
        let r = minimize_registers(&c, c.clock_period().unwrap() + 1, 8).unwrap();
        assert!(r.after <= r.before);
        assert!(exhaustive_equiv(&c, &r.circuit, 4).unwrap().is_equivalent());
    }

    #[test]
    fn unjustifiable_backward_moves_are_skipped() {
        // Constant gate with a registered 1 at its output: backward is
        // unjustifiable; the pass must leave it alone rather than fail.
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let z = c.add_gate("z", TruthTable::const_zero(1)).unwrap();
        let t = c.add_gate("t", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, z, vec![]).unwrap();
        c.connect(z, t, vec![Bit::One]).unwrap();
        c.connect(t, o, vec![]).unwrap();
        let r = minimize_registers(&c, 9, 4).unwrap();
        assert!(exhaustive_equiv(&c, &r.circuit, 4).unwrap().is_equivalent());
    }

    #[test]
    fn reduces_on_generated_benchmark() {
        let preset = workloads_presets_lookup("ex2");
        let r = minimize_registers(&preset, preset.clock_period().unwrap(), 8).unwrap();
        assert!(r.after <= r.before);
        assert!(netlist::random_equiv(&preset, &r.circuit, 512, 5)
            .unwrap()
            .is_equivalent());
    }

    fn workloads_presets_lookup(_name: &str) -> Circuit {
        // retiming cannot depend on workloads (dependency direction), so
        // build a small FSM-like circuit by hand.
        let mut c = Circuit::new("mini");
        let a = c.add_input("a").unwrap();
        let s0 = c.add_gate("s0", TruthTable::xor(2)).unwrap();
        let s1 = c.add_gate("s1", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, s0, vec![Bit::Zero]).unwrap();
        c.connect(s1, s0, vec![Bit::One]).unwrap();
        c.connect(a, s1, vec![Bit::Zero]).unwrap();
        c.connect(s0, s1, vec![]).unwrap();
        c.connect(s0, o, vec![]).unwrap();
        c
    }
}
