//! Growing a circuit to a target size and depth.
//!
//! The Table-1 presets must hit the paper's per-circuit gate counts (`N`)
//! and register counts (`F`), and approximate its logic depth. The FSM
//! generator controls `F` exactly but lands below most `N` targets, so
//! [`grow`] inserts additional *live* 2-input gates:
//!
//! * **depth growth** — repeatedly splice a gate into a primary output's
//!   fanin edge (building a chain) until the combinational depth target is
//!   met;
//! * **bulk growth** — splice gates into uniformly random edges, pairing
//!   the split signal with a random PI (always acyclic and PI-reachable).
//!
//! Splicing rewires `u → v` into `u → g(u, pi) → v`, keeping the original
//! register chain on the `g → v` segment; behaviour changes, which is fine
//! for synthetic benchmarks — equivalence is only ever checked between a
//! circuit and its own mapping.

use engine::Rng64;
use netlist::{Circuit, EdgeId, NetlistError, TruthTable};

/// Why [`grow`] rejected its input or output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrowError {
    /// The base circuit has no edges to splice into.
    NoEdges,
    /// The base circuit has no primary inputs to pair spliced gates with.
    NoInputs,
    /// The base circuit — or, defensively, the grown result — failed
    /// [`netlist::validate`]. Growth only ever splices live 2-input gates
    /// into existing edges, so a failure here means the *input* was
    /// already structurally broken.
    Invalid(NetlistError),
}

impl std::fmt::Display for GrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrowError::NoEdges => write!(f, "grow: base circuit has no edges"),
            GrowError::NoInputs => write!(f, "grow: base circuit has no primary inputs"),
            GrowError::Invalid(e) => write!(f, "grow: circuit invalid: {e}"),
        }
    }
}

impl std::error::Error for GrowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GrowError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for GrowError {
    fn from(e: NetlistError) -> GrowError {
        GrowError::Invalid(e)
    }
}

/// Grows `c` to exactly `target_gates` gates (if it is not already
/// larger), first deepening it to `target_depth`.
///
/// Returns the grown circuit; when `c` already has at least
/// `target_gates` gates it is returned unchanged (no trimming).
///
/// # Errors
///
/// Returns [`GrowError::NoEdges`] / [`GrowError::NoInputs`] for bases
/// that cannot be spliced into, and [`GrowError::Invalid`] when the base
/// (checked up front) or the grown result (checked defensively before
/// returning) fails [`netlist::validate`] — callers never receive a
/// circuit that would panic downstream.
pub fn grow(
    c: &Circuit,
    target_gates: usize,
    target_depth: u64,
    seed: u64,
) -> Result<Circuit, GrowError> {
    if c.num_edges() == 0 {
        return Err(GrowError::NoEdges);
    }
    if c.inputs().is_empty() {
        return Err(GrowError::NoInputs);
    }
    netlist::validate(c)?;
    let mut rng = Rng64::new(seed ^ 0x6407_17A6_0000_0003);
    let mut out = c.clone();
    let ops: [fn(usize) -> TruthTable; 3] = [TruthTable::and, TruthTable::or, TruthTable::xor];
    let mut counter = 0usize;
    // Phase 1: depth, built as a *braid* in front of a register (the
    // PI→FF next-state path — where forward retiming cannot create
    // registers and general retiming must justify backward moves). A
    // braid keeps ≥ K+1 live strands at every level so K-LUT covering
    // cannot flatten the depth through reconvergence, unlike a plain
    // chain over few PIs.
    let mut depth = out.clock_period()?;
    if depth < target_depth && out.num_gates() < target_gates {
        if let Some(e) = deepest_register_edge(&out) {
            let budget = target_gates - out.num_gates();
            let levels = (target_depth - depth) as usize;
            braid(&mut out, e, levels, budget, &mut counter, &mut rng);
            depth = out.clock_period()?;
        }
        // Chains into PO tails for any remaining depth (rare).
        while out.num_gates() < target_gates && depth < target_depth && !out.outputs().is_empty() {
            let po = out.outputs()[rng.below(out.outputs().len())];
            let e = out.node(po).fanin()[0];
            splice(&mut out, e, ops[rng.below(3)](2), &mut counter, &mut rng);
            depth = out.clock_period()?;
        }
    }
    // Phase 2: bulk. Avoid splicing near the critical path so the depth
    // stays close to the target (arrival times refreshed periodically).
    let mut arrivals = arrival_times(&out);
    let mut required = required_times(&out);
    let mut since_refresh = 0usize;
    let depth_cap = depth.max(target_depth).saturating_add(1);
    while out.num_gates() < target_gates {
        if since_refresh >= 16 {
            arrivals = arrival_times(&out);
            required = required_times(&out);
            since_refresh = 0;
        }
        // Estimated period through a splice at e(u, v): the path
        // ..u, g, v.. = arrival(u) + 1 + d(v) + required(v). Choose the
        // cheapest of a small random sample (unknown — freshly spliced —
        // nodes count as deep) to keep the period near the target.
        let cost = |out: &Circuit, arr: &[u64], req: &[u64], e: EdgeId| -> u64 {
            let edge = out.edge(e);
            let a = arr
                .get(edge.from().index())
                .copied()
                .unwrap_or(u64::MAX / 4);
            let (dv, r) = if edge.weight() == 0 {
                (
                    out.node(edge.to()).delay(),
                    req.get(edge.to().index()).copied().unwrap_or(u64::MAX / 4),
                )
            } else {
                (0, 0) // registers terminate the combinational path
            };
            a.saturating_add(1).saturating_add(dv).saturating_add(r)
        };
        let mut best_e = EdgeId(rng.below(out.num_edges()) as u32);
        let mut best_c = cost(&out, &arrivals, &required, best_e);
        for _ in 0..8 {
            if best_c <= depth_cap {
                break;
            }
            let e = EdgeId(rng.below(out.num_edges()) as u32);
            let c2 = cost(&out, &arrivals, &required, e);
            if c2 < best_c {
                best_e = e;
                best_c = c2;
            }
        }
        let src_arrival = arrivals
            .get(out.edge(best_e).from().index())
            .copied()
            .unwrap_or(u64::MAX / 4);
        let g = splice(
            &mut out,
            best_e,
            ops[rng.below(3)](2),
            &mut counter,
            &mut rng,
        );
        // Track the new gate's approximate timing so chains do not build
        // on "unknown" nodes between refreshes.
        while arrivals.len() < g.index() {
            arrivals.push(u64::MAX / 4);
            required.push(u64::MAX / 4);
        }
        arrivals.push(src_arrival.saturating_add(1));
        required.push(u64::MAX / 4);
        since_refresh += 1;
    }
    netlist::validate(&out)?;
    Ok(out)
}

/// Weaves a braid of `levels` levels of 2-input gates in front of edge
/// `e`, using at most `budget` gates. Strand sources are the edge's
/// driver plus nodes safe from combinational cycles (no weight-0 path
/// from `e`'s sink back to them). Width ≥ 6 resists K=5 LUT flattening.
fn braid(
    c: &mut Circuit,
    e: EdgeId,
    levels: usize,
    budget: usize,
    counter: &mut usize,
    rng: &mut Rng64,
) {
    // Width before length: ≥ K+2 strands over distinct signal origins
    // resist K=5 covering (and its time-unrolled variants); a narrower
    // deep braid would collapse into single LUTs.
    let width = 7usize.min(budget / 2).max(3);
    let levels = levels.min(budget.saturating_sub(width) / width).max(1);
    if budget < width * 2 {
        return;
    }
    let u = c.edge(e).from();
    let v = c.edge(e).to();
    // Safe sources: no combinational path from v.
    let mut comb_desc = vec![false; c.num_nodes()];
    comb_desc[v.index()] = true;
    let mut stack = vec![v];
    while let Some(x) = stack.pop() {
        for &fe in c.node(x).fanout() {
            let edge = c.edge(fe);
            if edge.weight() == 0 && !comb_desc[edge.to().index()] {
                comb_desc[edge.to().index()] = true;
                stack.push(edge.to());
            }
        }
    }
    // Strand sources must be *distinct signal origins* — PIs or
    // register-output gates — or K-LUT cones can slice the braid with a
    // handful of register taps despite its width. Other safe gates are a
    // fallback only.
    let is_origin = |x: netlist::NodeId| {
        c.node(x).is_input()
            || (c.node(x).is_gate()
                && !c.node(x).fanin().is_empty()
                && c.node(x).fanin().iter().all(|&fe| c.edge(fe).weight() >= 1))
    };
    let safe = |x: netlist::NodeId| !comb_desc[x.index()] && !c.node(x).is_output() && x != u;
    // PIs go in first: a braid whose support is register-dominated can be
    // time-unrolled by general-retiming mappers (each extra loop traversal
    // reuses the same taps); PI signals at distinct time steps count as
    // distinct LUT inputs and block that.
    let mut pi_pool: Vec<netlist::NodeId> = c
        .node_ids()
        .filter(|&x| safe(x) && c.node(x).is_input())
        .collect();
    let mut origin_pool: Vec<netlist::NodeId> = c
        .node_ids()
        .filter(|&x| safe(x) && !c.node(x).is_input() && is_origin(x))
        .collect();
    let mut other_pool: Vec<netlist::NodeId> =
        c.node_ids().filter(|&x| safe(x) && !is_origin(x)).collect();
    let mut strands: Vec<netlist::NodeId> = vec![u];
    while strands.len() < width {
        let pool = if !pi_pool.is_empty() {
            &mut pi_pool
        } else if !origin_pool.is_empty() {
            &mut origin_pool
        } else if !other_pool.is_empty() {
            &mut other_pool
        } else {
            strands.push(u);
            continue;
        };
        let i = rng.below(pool.len());
        strands.push(pool.swap_remove(i));
    }
    let ops: [fn(usize) -> TruthTable; 3] = [TruthTable::and, TruthTable::or, TruthTable::xor];
    for level in 0..levels {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            *counter += 1;
            let mut name = format!("braid{counter}");
            while c.find(&name).is_some() {
                *counter += 1;
                name = format!("braid{counter}");
            }
            let g = c.add_gate(name, ops[rng.below(3)](2)).expect("unique");
            let a = strands[i];
            let b = strands[(i + 1 + level % (width - 1)) % width];
            c.connect(a, g, vec![]).expect("arity");
            c.connect(b, g, vec![]).expect("arity");
            next.push(g);
        }
        strands = next;
    }
    // Collapse the strands into the register edge.
    let mut acc = strands;
    while acc.len() > 1 {
        let mut next = Vec::with_capacity(acc.len().div_ceil(2));
        let mut it = acc.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    *counter += 1;
                    let mut name = format!("braid{counter}");
                    while c.find(&name).is_some() {
                        *counter += 1;
                        name = format!("braid{counter}");
                    }
                    let g = c.add_gate(name, TruthTable::xor(2)).expect("unique");
                    c.connect(a, g, vec![]).expect("arity");
                    c.connect(b, g, vec![]).expect("arity");
                    next.push(g);
                }
                None => next.push(a),
            }
        }
        acc = next;
    }
    c.rewire_from(e, acc[0]).expect("gate may drive");
}

/// Longest combinational delay strictly downstream of each node.
fn required_times(c: &Circuit) -> Vec<u64> {
    let order = match c.comb_topo_order() {
        Ok(o) => o,
        Err(_) => return vec![0; c.num_nodes()],
    };
    let mut req = vec![0u64; c.num_nodes()];
    for v in order.into_iter().rev() {
        let mut best = 0u64;
        for &e in c.node(v).fanout() {
            let edge = c.edge(e);
            if edge.weight() == 0 {
                let t = edge.to();
                best = best.max(c.node(t).delay() + req[t.index()]);
            }
        }
        req[v.index()] = best;
    }
    req
}

/// Combinational arrival time per node (0 when the order is unavailable).
fn arrival_times(c: &Circuit) -> Vec<u64> {
    let order = match c.comb_topo_order() {
        Ok(o) => o,
        Err(_) => return vec![0; c.num_nodes()],
    };
    let mut arrival = vec![0u64; c.num_nodes()];
    for v in order {
        let node = c.node(v);
        let mut best = 0u64;
        for &e in node.fanin() {
            if c.edge(e).weight() == 0 {
                best = best.max(arrival[c.edge(e).from().index()]);
            }
        }
        arrival[v.index()] = best + node.delay();
    }
    arrival
}

/// The register-carrying edge whose source has the largest combinational
/// arrival time (the deepest pre-register path).
fn deepest_register_edge(c: &Circuit) -> Option<EdgeId> {
    let arrival = arrival_times(c);
    c.edge_ids()
        .filter(|&e| c.edge(e).weight() >= 1)
        .max_by_key(|&e| arrival[c.edge(e).from().index()])
}

/// Splices a new gate into edge `e`: `u → g(u, random PI) → v`, with the
/// original register chain staying on the `g → v` segment. Returns the
/// new gate.
fn splice(
    c: &mut Circuit,
    e: EdgeId,
    tt: TruthTable,
    counter: &mut usize,
    rng: &mut Rng64,
) -> netlist::NodeId {
    let u = c.edge(e).from();
    let pi = c.inputs()[rng.below(c.inputs().len())];
    *counter += 1;
    let mut name = format!("grown{counter}");
    while c.find(&name).is_some() {
        *counter += 1;
        name = format!("grown{counter}");
    }
    let g = c.add_gate(name, tt).expect("unique name");
    c.connect(u, g, vec![]).expect("arity 2");
    c.connect(pi, g, vec![]).expect("arity 2");
    c.rewire_from(e, g).expect("gate may drive");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::{generate_fsm, Encoding, FsmSpec};

    fn base() -> Circuit {
        generate_fsm(&FsmSpec {
            name: "base".into(),
            states: 5,
            inputs: 3,
            decoded: 2,
            outputs: 2,
            encoding: Encoding::OneHot,
            registered_inputs: false,
            seed: 9,
        })
    }

    #[test]
    fn hits_exact_gate_target() {
        let c = base();
        let start = c.num_gates();
        let grown = grow(&c, start + 40, 4, 1).unwrap();
        assert_eq!(grown.num_gates(), start + 40);
        netlist::validate(&grown).unwrap();
        assert_eq!(grown.ff_count_shared(), c.ff_count_shared());
    }

    #[test]
    fn reaches_depth_target() {
        // Braided depth costs ~6 gates per level; give it enough budget.
        let c = base();
        let grown = grow(&c, c.num_gates() + 160, 20, 2).unwrap();
        assert!(grown.clock_period().unwrap() >= 20);
        netlist::validate(&grown).unwrap();
    }

    #[test]
    fn no_shrink_when_already_big() {
        let c = base();
        let same = grow(&c, 1, 1, 3).unwrap();
        assert_eq!(same.num_gates(), c.num_gates());
    }

    #[test]
    fn deterministic() {
        let c = base();
        let a = grow(&c, c.num_gates() + 25, 8, 4).unwrap();
        let b = grow(&c, c.num_gates() + 25, 8, 4).unwrap();
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn stays_two_bounded() {
        let c = base();
        let grown = grow(&c, c.num_gates() + 30, 6, 5).unwrap();
        assert!(grown.max_fanin() <= 2);
    }

    #[test]
    fn register_chains_preserved() {
        let c = base();
        let grown = grow(&c, c.num_gates() + 50, 10, 6).unwrap();
        assert_eq!(grown.ff_count_total(), c.ff_count_total());
    }

    #[test]
    fn rejects_edgeless_base() {
        let mut c = Circuit::new("empty");
        c.add_input("a").unwrap();
        assert!(matches!(grow(&c, 10, 2, 1), Err(GrowError::NoEdges)));
    }

    #[test]
    fn rejects_inputless_base() {
        // A self-looping registered gate: edges exist but no PI to pair
        // spliced gates with.
        let mut c = Circuit::new("loop");
        let g = c.add_gate("g", TruthTable::not()).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(g, g, vec![netlist::Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
        assert!(matches!(grow(&c, 10, 2, 1), Err(GrowError::NoInputs)));
    }

    #[test]
    fn rejects_invalid_base() {
        // An unconnected gate fails `netlist::validate`; grow must surface
        // that as a typed error instead of panicking mid-splice.
        let mut c = Circuit::new("broken");
        let a = c.add_input("a").unwrap();
        let g = c.add_gate("g", TruthTable::and(2)).unwrap();
        let o = c.add_output("o").unwrap();
        c.connect(a, g, vec![]).unwrap(); // missing second fanin
        c.connect(g, o, vec![]).unwrap();
        match grow(&c, 10, 2, 1) {
            Err(GrowError::Invalid(_)) => {}
            other => panic!("expected GrowError::Invalid, got {other:?}"),
        }
    }

    #[test]
    fn grow_error_displays() {
        assert!(GrowError::NoEdges.to_string().contains("no edges"));
        assert!(GrowError::NoInputs
            .to_string()
            .contains("no primary inputs"));
        let e = GrowError::from(netlist::NetlistError::UnconnectedGate("g".into()));
        assert!(e.to_string().contains("unconnected"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
