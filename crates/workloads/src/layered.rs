//! Random layered sequential circuits — the ISCAS'89 benchmark
//! substitute.
//!
//! The four large Table-1 circuits (s5378, s9234.1, s15850.1, s38417) are
//! ISCAS'89 scan designs: wide datapath-ish logic with thousands of gates
//! and hundreds of registers, moderate combinational depth, and feedback
//! through the register file. [`generate_layered`] reproduces that shape:
//! gates are laid out in combinational layers; a register file of `ffs`
//! bits samples randomly chosen gate outputs and feeds the early layers
//! back (always through registers, so no combinational cycles); every
//! gate's inputs trace back to PIs.

use engine::Rng64;
use netlist::{Bit, Circuit, NodeId, TruthTable};

/// Parameters of a layered sequential circuit.
#[derive(Debug, Clone)]
pub struct LayeredSpec {
    /// Circuit name.
    pub name: String,
    /// Target gate count (hit exactly).
    pub gates: usize,
    /// Register count (hit exactly).
    pub ffs: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational depth per register stage (roughly the pre-mapping
    /// clock period).
    pub depth: usize,
    /// Register every primary input (scan-design style). Adds one shared
    /// register per PI to the total count and makes every node's
    /// `frt ≥ 1`, enabling cross-register LUT formation.
    pub registered_inputs: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Generates the circuit. Deterministic per spec.
///
/// # Panics
///
/// Panics when `gates < depth`, or `inputs`/`outputs` is zero.
pub fn generate_layered(spec: &LayeredSpec) -> Circuit {
    assert!(spec.inputs > 0 && spec.outputs > 0);
    let depth = spec.depth.max(1);
    assert!(spec.gates >= depth, "need at least one gate per layer");
    let mut rng = Rng64::new(spec.seed ^ 0x15CA_5890_0000_0001);
    let mut c = Circuit::new(spec.name.clone());
    let raw_pis: Vec<NodeId> = (0..spec.inputs)
        .map(|i| c.add_input(format!("in{i}")).expect("unique"))
        .collect();
    // With registered inputs, gates read a buffered copy of each PI whose
    // fanin edge carries one register.
    let pis: Vec<NodeId> = if spec.registered_inputs {
        raw_pis
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let b = c
                    .add_gate(format!("inreg{i}"), TruthTable::buf())
                    .expect("unique");
                let init = Bit::from_bool(i % 2 == 0);
                c.connect(p, b, vec![init]).expect("arity");
                b
            })
            .collect()
    } else {
        raw_pis.clone()
    };

    // Register file bits are buffer gates fed later through one FF each.
    let regs: Vec<NodeId> = (0..spec.ffs)
        .map(|i| {
            c.add_gate(format!("r{i}"), TruthTable::buf())
                .expect("unique")
        })
        .collect();

    let ops: [fn(usize) -> TruthTable; 4] = [
        TruthTable::and,
        TruthTable::or,
        TruthTable::nand,
        TruthTable::xor,
    ];
    // Layer 0 candidates: PIs and register outputs.
    let mut prev_layers: Vec<Vec<NodeId>> = vec![pis.clone()];
    if !regs.is_empty() {
        prev_layers.push(regs.clone());
    }
    let mut gates: Vec<NodeId> = Vec::with_capacity(spec.gates);
    let remaining_gates = spec.gates;
    let per_layer = remaining_gates / depth;
    let mut made = 0usize;
    for layer in 0..depth {
        let count = if layer + 1 == depth {
            remaining_gates - made
        } else {
            per_layer.max(1)
        };
        let mut this_layer = Vec::with_capacity(count);
        for i in 0..count {
            let tt = ops[rng.below(ops.len())](2);
            let g = c.add_gate(format!("g{layer}_{i}"), tt).expect("unique");
            // Input 0: biased toward the immediately previous layer to
            // build depth (layer 0 reads PIs so every node stays
            // PI-reachable — register bits alone would form autonomous
            // loops); input 1: anywhere earlier for reconvergence.
            let a = if layer == 0 {
                pis[rng.below(pis.len())]
            } else {
                pick(&mut rng, &prev_layers, true)
            };
            let b = pick(&mut rng, &prev_layers, false);
            c.connect(a, g, vec![]).expect("arity");
            c.connect(b, g, vec![]).expect("arity");
            this_layer.push(g);
            gates.push(g);
        }
        made += count;
        prev_layers.push(this_layer);
    }

    // Close the register file: each register samples a *distinct* gate
    // (distinct drivers keep the shared-register count equal to `ffs`),
    // biased toward the deepest gates for realistic reg-to-reg paths.
    // When there are more registers than gates, the remainder chain off
    // other register buffers (still distinct drivers).
    let mut pool: Vec<NodeId> = gates.iter().rev().copied().collect();
    // Shuffle the deep half to decorrelate consecutive registers.
    let window = (pool.len() / 2).max(1).min(pool.len());
    for i in 0..window.saturating_sub(1) {
        let j = rng.range_usize(i, window);
        pool.swap(i, j);
    }
    if gates.is_empty() {
        pool = pis.clone();
    }
    for (i, &r) in regs.iter().enumerate() {
        let src = if i < pool.len() {
            pool[i]
        } else {
            regs[i - pool.len()]
        };
        let init = Bit::from_bool(rng.chance(0.5));
        c.connect(src, r, vec![init]).expect("register loop");
    }

    // Primary outputs from the deepest layer (falling back to earlier
    // gates when the last layer is small).
    for o in 0..spec.outputs {
        let po = c.add_output(format!("out{o}")).expect("unique");
        let src = gates[gates.len() - 1 - (o % gates.len().min(64))];
        c.connect(src, po, vec![]).expect("PO fanin");
    }
    c
}

fn pick(rng: &mut Rng64, layers: &[Vec<NodeId>], prefer_last: bool) -> NodeId {
    let li = if prefer_last || layers.len() == 1 {
        layers.len() - 1
    } else {
        rng.below(layers.len())
    };
    let layer = &layers[li];
    layer[rng.below(layer.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(gates: usize, ffs: usize, depth: usize) -> LayeredSpec {
        LayeredSpec {
            name: "lay".into(),
            gates,
            ffs,
            inputs: 8,
            outputs: 6,
            depth,
            registered_inputs: false,
            seed: 7,
        }
    }

    #[test]
    fn exact_counts() {
        let c = generate_layered(&spec(200, 30, 6));
        netlist::validate(&c).unwrap();
        // Register-file buffers are gates too.
        assert_eq!(c.num_gates(), 200 + 30);
        assert_eq!(c.ff_count_shared(), 30);
        assert!(c.max_fanin() <= 2);
    }

    #[test]
    fn depth_close_to_request() {
        let c = generate_layered(&spec(300, 20, 8));
        let period = c.clock_period().unwrap();
        assert!(period >= 8, "period {period} < requested depth");
        assert!(period <= 2 * 8 + 2, "period {period} too deep");
    }

    #[test]
    fn deterministic() {
        let a = generate_layered(&spec(100, 10, 4));
        let b = generate_layered(&spec(100, 10, 4));
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn no_registers_works() {
        let c = generate_layered(&spec(50, 0, 5));
        netlist::validate(&c).unwrap();
        assert_eq!(c.ff_count_shared(), 0);
    }

    #[test]
    fn simulates_defined() {
        let c = generate_layered(&spec(80, 12, 4));
        let mut sim = netlist::Simulator::new(&c).unwrap();
        let inp: Vec<Bit> = (0..c.inputs().len()).map(|_| Bit::One).collect();
        for _ in 0..8 {
            let out = sim.step(&inp).unwrap();
            assert!(out.iter().all(|b| b.is_defined()));
        }
    }
}
