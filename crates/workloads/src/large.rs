//! Large hierarchical sequential designs (100k–1M gates) for the
//! ingestion suite.
//!
//! A design is a chain of `tiles` instances drawn from `kinds` distinct
//! tile models. Each tile is a `width`-bit bus transformer: random
//! 2-input logic over its bus inputs, a register per output bit, and a
//! buffered output stage. The top model wires the tiles in a chain and
//! finishes with yosys `.conn` aliases into the primary outputs, so one
//! design exercises `.subckt` hierarchy, latch arities/types, off-set
//! cubes, continuations, `.attr/.param/.cname`, `.blackbox`, and
//! `.conn` at industrial scale.
//!
//! Two independent consumers share one deterministic [`TilePlan`]:
//! [`write_hier`] streams the hierarchical BLIF text (never building
//! the flat design in memory — emitted text is O(tile) per model plus
//! O(width) per chain step), and [`build_flat`] constructs the
//! flattened circuit directly. `blifio::flatten(parse(write_hier(s)))`
//! must be structurally equal to `build_flat(s)` — that equivalence is
//! the front-end's large-scale acceptance test.

use engine::Rng64;
use netlist::{Bit, Circuit, NetlistError, NodeId, TruthTable};
use std::io::{self, Write};

/// Parameters of a generated hierarchical design.
#[derive(Debug, Clone)]
pub struct LargeSpec {
    /// Design (top model) name.
    pub name: String,
    /// Bus width: tile inputs/outputs and register count per tile.
    pub width: usize,
    /// Number of distinct tile models.
    pub kinds: usize,
    /// Chain length (tile instances).
    pub tiles: usize,
    /// Internal 2-input gates per tile.
    pub tile_gates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LargeSpec {
    /// Exact post-flatten gate count: tile gates + per-tile output
    /// buffers + final `.conn` buffers and PO buffers.
    pub fn flat_gates(&self) -> usize {
        self.tiles * (self.tile_gates + self.width) + 2 * self.width
    }

    /// Exact post-flatten FF count (one register per bus bit per tile).
    pub fn flat_ffs(&self) -> usize {
        self.tiles * self.width
    }
}

/// The four gate operators used inside tiles.
const OPS: usize = 4;

fn op_tt(op: u8) -> TruthTable {
    match op {
        0 => TruthTable::and(2),
        1 => TruthTable::or(2),
        2 => TruthTable::nand(2),
        _ => TruthTable::xor(2),
    }
}

/// One tile model's deterministic wiring plan.
///
/// Gate `i` reads signals `a`/`b` from the index space
/// `0..width` = bus inputs, `width + j` = gate `j` (j < i, keeping the
/// tile acyclic).
#[derive(Debug, Clone)]
pub struct TilePlan {
    /// Per gate: (operator, input a, input b).
    pub gates: Vec<(u8, u32, u32)>,
    /// Per output bit: index of the gate feeding its register.
    pub out_src: Vec<u32>,
    /// Per output bit: register initial value.
    pub out_init: Vec<Bit>,
}

/// Computes the plan for tile kind `kind` of `spec` (pure function of
/// the spec's seed).
pub fn tile_plan(spec: &LargeSpec, kind: usize) -> TilePlan {
    let mut rng = Rng64::new(spec.seed ^ (kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let w = spec.width;
    let mut gates = Vec::with_capacity(spec.tile_gates);
    for i in 0..spec.tile_gates {
        let op = (rng.below(OPS)) as u8;
        let a = rng.below(w + i) as u32;
        let b = rng.below(w + i) as u32;
        gates.push((op, a, b));
    }
    let out_src = (0..w).map(|_| rng.below(spec.tile_gates) as u32).collect();
    let out_init = (0..w)
        .map(|_| match rng.below(3) {
            0 => Bit::Zero,
            1 => Bit::One,
            _ => Bit::X,
        })
        .collect();
    TilePlan {
        gates,
        out_src,
        out_init,
    }
}

/// Emits a signal list with backslash continuations every 16 names.
fn write_signal_list<W: Write>(
    w: &mut W,
    kw: &str,
    mut names: impl Iterator<Item = String>,
) -> io::Result<()> {
    write!(w, "{kw}")?;
    for (n, name) in names.by_ref().enumerate() {
        if n > 0 && n.is_multiple_of(16) {
            write!(w, " \\\n ")?;
        }
        write!(w, " {name}")?;
    }
    writeln!(w)
}

fn cube_for(op: u8) -> &'static str {
    match op {
        0 => "11 1\n",
        1 => "00 0\n", // off-set form of OR, for spec coverage
        2 => "11 0\n",
        _ => "01 1\n10 1\n",
    }
}

fn sig_name(width: usize, idx: u32) -> String {
    if (idx as usize) < width {
        format!("x{idx}")
    } else {
        format!("g{}", idx as usize - width)
    }
}

/// The latch arity/type rotation used for tile output registers (and
/// mirrored by [`build_flat`]): every third register uses the 5-token
/// `re clk` form, every third the 3-token init form, the rest the bare
/// 2-token form (init unknown).
fn latch_line(j: usize, src: &str, out: &str, init: Bit) -> String {
    let digit = match init {
        Bit::Zero => '0',
        Bit::One => '1',
        Bit::X => '3',
    };
    match j % 3 {
        0 => format!(".latch {src} {out} re clk {digit}\n"),
        1 => format!(".latch {src} {out} {digit}\n"),
        _ => format!(".latch {src} {out}\n"),
    }
}

/// The init actually carried by register `j` given the arity rotation
/// of [`latch_line`] (the 2-token form drops the planned init).
fn effective_init(j: usize, planned: Bit) -> Bit {
    if j % 3 == 2 {
        Bit::X
    } else {
        planned
    }
}

/// Streams the hierarchical BLIF text of `spec` to `w`.
///
/// The top model comes first (so it is the default link root), followed
/// by the tile models and an uninstantiated `.blackbox` stub. Memory is
/// O(width + tile_gates) regardless of the chain length.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_hier<W: Write>(spec: &LargeSpec, w: &mut W) -> io::Result<()> {
    let width = spec.width;
    // Top model.
    writeln!(w, "# generated: {} ({} tiles)", spec.name, spec.tiles)?;
    writeln!(w, ".model {}", spec.name)?;
    write_signal_list(w, ".inputs", (0..width).map(|j| format!("pi{j}")))?;
    write_signal_list(w, ".outputs", (0..width).map(|j| format!("po{j}")))?;
    writeln!(w, ".clock clk")?;
    writeln!(w, ".attr generator workloads_large")?;
    writeln!(w, ".param TILES {}", spec.tiles)?;
    for t in 0..spec.tiles {
        let kind = t % spec.kinds.max(1);
        write!(w, ".subckt tile{kind}")?;
        for j in 0..width {
            if t == 0 {
                write!(w, " x{j}=pi{j}")?;
            } else {
                write!(w, " x{j}=b{t}_{j}")?;
            }
        }
        for j in 0..width {
            write!(w, " y{j}=b{}_{j}", t + 1)?;
        }
        writeln!(w)?;
    }
    for j in 0..width {
        writeln!(w, ".conn b{}_{j} z{j}", spec.tiles)?;
    }
    for j in 0..width {
        writeln!(w, ".names z{j} po{j}\n1 1")?;
    }
    writeln!(w, ".end")?;

    // Tile models.
    for kind in 0..spec.kinds.max(1) {
        let plan = tile_plan(spec, kind);
        writeln!(w, ".model tile{kind}")?;
        write_signal_list(w, ".inputs", (0..width).map(|j| format!("x{j}")))?;
        write_signal_list(w, ".outputs", (0..width).map(|j| format!("y{j}")))?;
        writeln!(w, ".clock clk")?;
        writeln!(w, ".cname tile{kind}_core")?;
        for (i, &(op, a, b)) in plan.gates.iter().enumerate() {
            if i % 64 == 0 {
                writeln!(w, ".attr row {}", i / 64)?;
            }
            writeln!(
                w,
                ".names {} {} g{i}",
                sig_name(width, a),
                sig_name(width, b)
            )?;
            w.write_all(cube_for(op).as_bytes())?;
        }
        for j in 0..width {
            let src = format!("g{}", plan.out_src[j]);
            let out = format!("q{j}");
            w.write_all(latch_line(j, &src, &out, plan.out_init[j]).as_bytes())?;
            writeln!(w, ".names q{j} y{j}\n1 1")?;
        }
        writeln!(w, ".end")?;
    }

    // An uninstantiated blackbox, as yosys flows carry around.
    writeln!(w, ".model {}_extram", spec.name)?;
    write_signal_list(w, ".inputs", (0..8).map(|j| format!("ad{j}")))?;
    write_signal_list(w, ".outputs", (0..8).map(|j| format!("dq{j}")))?;
    writeln!(w, ".blackbox")?;
    writeln!(w, ".end")?;
    Ok(())
}

/// Renders the design to a string (tests and small presets; the CLI
/// streams to a file instead).
pub fn hier_to_string(spec: &LargeSpec) -> String {
    let mut buf = Vec::new();
    write_hier(spec, &mut buf).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("generator emits ASCII")
}

/// Builds the flattened circuit of `spec` directly (no BLIF text, no
/// hierarchy) — the structural reference for the streaming front-end.
///
/// # Errors
///
/// Propagates circuit-construction errors (none expected).
pub fn build_flat(spec: &LargeSpec) -> Result<Circuit, NetlistError> {
    let width = spec.width;
    let mut c = Circuit::new(spec.name.clone());
    let plans: Vec<TilePlan> = (0..spec.kinds.max(1)).map(|k| tile_plan(spec, k)).collect();

    let mut bus: Vec<NodeId> = (0..width)
        .map(|j| c.add_input(format!("pi{j}")))
        .collect::<Result<_, _>>()?;
    for t in 0..spec.tiles {
        let plan = &plans[t % spec.kinds.max(1)];
        let mut gates: Vec<NodeId> = Vec::with_capacity(plan.gates.len());
        for (i, &(op, a, b)) in plan.gates.iter().enumerate() {
            let g = c.add_gate(format!("t{t}_g{i}"), op_tt(op))?;
            for idx in [a, b] {
                let src = if (idx as usize) < width {
                    bus[idx as usize]
                } else {
                    gates[idx as usize - width]
                };
                c.connect(src, g, vec![])?;
            }
            gates.push(g);
        }
        let mut next_bus = Vec::with_capacity(width);
        for j in 0..width {
            let buf = c.add_gate(format!("t{t}_y{j}"), TruthTable::buf())?;
            let init = effective_init(j, plan.out_init[j]);
            c.connect(gates[plan.out_src[j] as usize], buf, vec![init])?;
            next_bus.push(buf);
        }
        bus = next_bus;
    }
    // `.conn` aliases then PO buffers, as the top model emits them.
    let z: Vec<NodeId> = (0..width)
        .map(|j| {
            let g = c.add_gate(format!("z{j}"), TruthTable::buf())?;
            c.connect(bus[j], g, vec![])?;
            Ok(g)
        })
        .collect::<Result<_, NetlistError>>()?;
    for (j, &zj) in z.iter().enumerate() {
        let pg = c.add_gate(format!("po{j}$g"), TruthTable::buf())?;
        c.connect(zj, pg, vec![])?;
        let po = c.add_output(format!("po{j}"))?;
        c.connect(pg, po, vec![])?;
    }
    Ok(c)
}

/// The committed large-suite presets.
pub fn large_presets() -> Vec<LargeSpec> {
    vec![
        LargeSpec {
            name: "hier100k".into(),
            width: 32,
            kinds: 4,
            tiles: 24,
            tile_gates: 4096,
            seed: 0xB11F_0001,
        },
        LargeSpec {
            name: "hier300k".into(),
            width: 48,
            kinds: 6,
            tiles: 48,
            tile_gates: 6144,
            seed: 0xB11F_0003,
        },
        LargeSpec {
            name: "hier1m".into(),
            width: 64,
            kinds: 8,
            tiles: 64,
            tile_gates: 15552,
            seed: 0xB11F_0010,
        },
    ]
}

/// Looks up a preset by name.
pub fn large_preset(name: &str) -> Option<LargeSpec> {
    large_presets().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LargeSpec {
        LargeSpec {
            name: "tiny".into(),
            width: 4,
            kinds: 2,
            tiles: 3,
            tile_gates: 10,
            seed: 42,
        }
    }

    #[test]
    fn plan_is_deterministic_and_acyclic() {
        let spec = tiny();
        let p1 = tile_plan(&spec, 0);
        let p2 = tile_plan(&spec, 0);
        assert_eq!(p1.gates, p2.gates);
        assert_ne!(p1.gates, tile_plan(&spec, 1).gates);
        for (i, &(_, a, b)) in p1.gates.iter().enumerate() {
            assert!((a as usize) < spec.width + i);
            assert!((b as usize) < spec.width + i);
        }
    }

    #[test]
    fn flat_counts_match_formulas() {
        let spec = tiny();
        let c = build_flat(&spec).unwrap();
        assert_eq!(c.num_gates(), spec.flat_gates());
        assert_eq!(c.ff_count_total(), spec.flat_ffs());
        assert_eq!(c.inputs().len(), spec.width);
        assert_eq!(c.outputs().len(), spec.width);
        netlist::validate(&c).unwrap();
    }

    #[test]
    fn hier_text_has_expected_sections() {
        let t = hier_to_string(&tiny());
        assert!(t.starts_with("# generated: tiny"));
        assert!(t.contains(".model tiny\n"));
        assert!(t.contains(".subckt tile1"));
        assert!(t.contains(".conn b3_0 z0"));
        assert!(t.contains(".blackbox"));
        assert!(t.contains(".latch"));
        assert!(t.contains("re clk"));
    }

    #[test]
    fn wide_designs_use_continuations() {
        let spec = LargeSpec {
            name: "wide".into(),
            width: 20,
            kinds: 1,
            tiles: 1,
            tile_gates: 4,
            seed: 1,
        };
        let t = hier_to_string(&spec);
        assert!(t.contains(" \\\n"), "continuations missing:\n{t}");
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(large_presets().len(), 3);
        let p = large_preset("hier100k").unwrap();
        assert!(
            (90_000..110_000).contains(&p.flat_gates()),
            "{}",
            p.flat_gates()
        );
        let p = large_preset("hier1m").unwrap();
        assert!(
            (950_000..1_050_000).contains(&p.flat_gates()),
            "{}",
            p.flat_gates()
        );
        assert!(large_preset("nope").is_none());
    }
}
