//! KISS2 state-transition-table parsing and synthesis.
//!
//! The MCNC FSM benchmarks of the paper's Table 1 are distributed as
//! KISS2 files (`.i/.o/.s/.r` headers plus one `input-cube current next
//! output-cube` line per transition). This module parses the format and
//! synthesises a gate-level sequential circuit through the same encoder
//! as the random-FSM generator, so genuine benchmark files can replace
//! the synthetic suite whenever they are available:
//!
//! ```text
//! .i 1
//! .o 1
//! .s 2
//! .r OFF
//! 1 OFF ON  1
//! 0 OFF OFF 0
//! - ON  OFF 0
//! .e
//! ```

use crate::fsm::Encoding;
use netlist::{Bit, Circuit, NetlistError, NodeId, TruthTable};
use std::collections::HashMap;

/// A parsed state transition graph.
#[derive(Debug, Clone)]
pub struct Stg {
    /// Number of input bits.
    pub inputs: usize,
    /// Number of output bits.
    pub outputs: usize,
    /// State names, reset state first.
    pub states: Vec<String>,
    /// Transitions: (input cube, from-state index, to-state index,
    /// output cube). Cubes use `0`/`1`/`X` per bit.
    pub transitions: Vec<(Vec<Bit>, usize, usize, Vec<Bit>)>,
}

/// Errors from KISS2 parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KissError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for KissError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KISS2 line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for KissError {}

fn err(line: usize, message: impl Into<String>) -> KissError {
    KissError {
        line,
        message: message.into(),
    }
}

fn parse_cube(s: &str, width: usize, line: usize) -> Result<Vec<Bit>, KissError> {
    if s.len() != width {
        return Err(err(line, format!("cube `{s}` is not {width} bits wide")));
    }
    s.chars()
        .map(|ch| match ch {
            '0' => Ok(Bit::Zero),
            '1' => Ok(Bit::One),
            '-' | 'x' | 'X' => Ok(Bit::X),
            other => Err(err(line, format!("bad cube character `{other}`"))),
        })
        .collect()
}

/// Parses KISS2 text into an [`Stg`]. The reset state (`.r`, defaulting
/// to the first transition's source) becomes state index 0.
///
/// # Errors
///
/// Returns [`KissError`] on malformed input.
pub fn parse_kiss2(text: &str) -> Result<Stg, KissError> {
    let mut inputs = None;
    let mut outputs = None;
    let mut reset: Option<String> = None;
    // (line number, input cube, from-state, to-state, output cube)
    type RawTransition = (usize, Vec<Bit>, String, String, Vec<Bit>);
    let mut raw: Vec<RawTransition> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let content = match line.find('#') {
            Some(p) => &line[..p],
            None => line,
        };
        let tokens: Vec<&str> = content.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        match tokens[0] {
            ".i" => {
                inputs = tokens.get(1).and_then(|v| v.parse().ok());
                if inputs.is_none() {
                    return Err(err(line_no, ".i needs a count"));
                }
            }
            ".o" => {
                outputs = tokens.get(1).and_then(|v| v.parse().ok());
                if outputs.is_none() {
                    return Err(err(line_no, ".o needs a count"));
                }
            }
            ".p" | ".s" => {} // product/state counts are redundant
            ".r" => reset = tokens.get(1).map(|s| s.to_string()),
            ".e" | ".end" => break,
            _ => {
                if tokens.len() != 4 {
                    return Err(err(line_no, "transition needs 4 fields"));
                }
                let ni = inputs.ok_or_else(|| err(line_no, ".i must come first"))?;
                let no = outputs.ok_or_else(|| err(line_no, ".o must come first"))?;
                let in_cube = parse_cube(tokens[0], ni, line_no)?;
                let out_cube = parse_cube(tokens[3], no, line_no)?;
                raw.push((
                    line_no,
                    in_cube,
                    tokens[1].to_string(),
                    tokens[2].to_string(),
                    out_cube,
                ));
            }
        }
    }
    let inputs = inputs.ok_or_else(|| err(0, "missing .i"))?;
    let outputs = outputs.ok_or_else(|| err(0, "missing .o"))?;
    if raw.is_empty() {
        return Err(err(0, "no transitions"));
    }
    // Intern state names, reset first.
    let reset_name = reset.unwrap_or_else(|| raw[0].2.clone());
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut states = vec![reset_name.clone()];
    index.insert(reset_name, 0);
    let intern = |states: &mut Vec<String>, index: &mut HashMap<String, usize>, n: &str| {
        if let Some(&i) = index.get(n) {
            return i;
        }
        let i = states.len();
        states.push(n.to_string());
        index.insert(n.to_string(), i);
        i
    };
    let mut transitions = Vec::with_capacity(raw.len());
    for (_line, in_cube, from, to, out_cube) in raw {
        let fi = intern(&mut states, &mut index, &from);
        let ti = intern(&mut states, &mut index, &to);
        transitions.push((in_cube, fi, ti, out_cube));
    }
    Ok(Stg {
        inputs,
        outputs,
        states,
        transitions,
    })
}

/// Synthesises the STG into a gate-level sequential circuit (2-input
/// gates, reset state 0 as the registers' initial values) — the same
/// two-level structure SIS produces from a KISS2 description.
///
/// # Errors
///
/// Propagates construction errors (none expected for parsed STGs).
pub fn synthesize_stg(stg: &Stg, encoding: Encoding, name: &str) -> Result<Circuit, NetlistError> {
    let mut c = Circuit::new(name.to_string());
    let pis: Vec<NodeId> = (0..stg.inputs.max(1))
        .map(|i| c.add_input(format!("in{i}")))
        .collect::<Result<_, _>>()?;
    let mut counter = 0usize;
    let mut fresh =
        |c: &mut Circuit, tt: TruthTable, prefix: &str| -> Result<NodeId, NetlistError> {
            counter += 1;
            c.add_gate(format!("{prefix}_{counter}"), tt)
        };
    // Balanced 2-input trees.
    fn tree(
        c: &mut Circuit,
        op: fn(usize) -> TruthTable,
        mut ops: Vec<NodeId>,
        fresh: &mut dyn FnMut(&mut Circuit, TruthTable, &str) -> Result<NodeId, NetlistError>,
        prefix: &str,
    ) -> Result<NodeId, NetlistError> {
        assert!(!ops.is_empty());
        while ops.len() > 1 {
            let mut next = Vec::with_capacity(ops.len().div_ceil(2));
            let mut it = ops.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let g = fresh(c, op(2), prefix)?;
                        c.connect(a, g, vec![])?;
                        c.connect(b, g, vec![])?;
                        next.push(g);
                    }
                    None => next.push(a),
                }
            }
            ops = next;
        }
        Ok(ops.pop().expect("non-empty"))
    }

    let pi_inv: Vec<NodeId> = pis
        .iter()
        .map(|&p| {
            let g = fresh(&mut c, TruthTable::not(), "ninp")?;
            c.connect(p, g, vec![])?;
            Ok(g)
        })
        .collect::<Result<_, NetlistError>>()?;

    let regs = match encoding {
        Encoding::OneHot => stg.states.len(),
        Encoding::Binary => (usize::BITS - (stg.states.len().max(2) - 1).leading_zeros()) as usize,
    };
    let state_src: Vec<NodeId> = (0..regs)
        .map(|b| fresh(&mut c, TruthTable::buf(), &format!("st{b}")))
        .collect::<Result<_, _>>()?;
    let state_inv: Vec<NodeId> = state_src
        .iter()
        .map(|&sb| {
            let g = fresh(&mut c, TruthTable::not(), "nst")?;
            c.connect(sb, g, vec![])?;
            Ok(g)
        })
        .collect::<Result<_, NetlistError>>()?;
    let bit_set = |state: usize, bit: usize| match encoding {
        Encoding::Binary => (state >> bit) & 1 == 1,
        Encoding::OneHot => state == bit,
    };
    // State decoder terms.
    let mut state_terms = Vec::with_capacity(stg.states.len());
    for k in 0..stg.states.len() {
        let t = match encoding {
            Encoding::OneHot => state_src[k],
            Encoding::Binary => {
                let lits: Vec<NodeId> = (0..regs)
                    .map(|b| {
                        if bit_set(k, b) {
                            state_src[b]
                        } else {
                            state_inv[b]
                        }
                    })
                    .collect();
                tree(&mut c, TruthTable::and, lits, &mut fresh, "dec")?
            }
        };
        state_terms.push(t);
    }
    // One minterm per transition: state AND input-cube literals.
    let mut minterms = Vec::with_capacity(stg.transitions.len());
    for (cube, from, _, _) in &stg.transitions {
        let mut lits = vec![state_terms[*from]];
        for (i, &b) in cube.iter().enumerate() {
            match b {
                Bit::One => lits.push(pis[i]),
                Bit::Zero => lits.push(pi_inv[i]),
                Bit::X => {}
            }
        }
        minterms.push(tree(&mut c, TruthTable::and, lits, &mut fresh, "mt")?);
    }
    // Next-state bits.
    for (b, &src) in state_src.iter().enumerate() {
        let terms: Vec<NodeId> = stg
            .transitions
            .iter()
            .enumerate()
            .filter(|(_, (_, _, to, _))| bit_set(*to, b))
            .map(|(i, _)| minterms[i])
            .collect();
        let init = Bit::from_bool(bit_set(0, b));
        let driver = if terms.is_empty() {
            // Constant-0 bit: ground it with AND(in0, NOT in0).
            let z = fresh(&mut c, TruthTable::and(2), "zero")?;
            c.connect(pis[0], z, vec![])?;
            c.connect(pi_inv[0], z, vec![])?;
            z
        } else {
            tree(&mut c, TruthTable::or, terms, &mut fresh, &format!("nx{b}"))?
        };
        c.connect(driver, src, vec![init])?;
    }
    // Mealy outputs: OR of minterms whose output cube sets the bit.
    for o in 0..stg.outputs.max(1) {
        let po = c.add_output(format!("out{o}"))?;
        let terms: Vec<NodeId> = stg
            .transitions
            .iter()
            .enumerate()
            .filter(|(_, (_, _, _, out))| o < out.len() && out[o] == Bit::One)
            .map(|(i, _)| minterms[i])
            .collect();
        let driver = if terms.is_empty() {
            let z = fresh(&mut c, TruthTable::and(2), "zout")?;
            c.connect(pis[0], z, vec![])?;
            c.connect(pi_inv[0], z, vec![])?;
            z
        } else {
            tree(&mut c, TruthTable::or, terms, &mut fresh, &format!("po{o}"))?
        };
        c.connect(driver, po, vec![])?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Simulator;

    const TOGGLE: &str = "\
.i 1
.o 1
.s 2
.r OFF
1 OFF ON  1
0 OFF OFF 0
- ON  OFF 0
.e
";

    #[test]
    fn parses_toggle() {
        let stg = parse_kiss2(TOGGLE).unwrap();
        assert_eq!(stg.inputs, 1);
        assert_eq!(stg.outputs, 1);
        assert_eq!(stg.states, vec!["OFF", "ON"]);
        assert_eq!(stg.transitions.len(), 3);
        assert_eq!(stg.transitions[0].1, 0);
        assert_eq!(stg.transitions[0].2, 1);
    }

    #[test]
    fn synthesized_toggle_behaves() {
        for enc in [Encoding::OneHot, Encoding::Binary] {
            let stg = parse_kiss2(TOGGLE).unwrap();
            let c = synthesize_stg(&stg, enc, "toggle").unwrap();
            netlist::validate(&c).unwrap();
            assert!(c.max_fanin() <= 2);
            let mut sim = Simulator::new(&c).unwrap();
            // OFF --1/1--> ON --any/0--> OFF --0/0--> OFF
            assert_eq!(sim.step(&[Bit::One]).unwrap(), vec![Bit::One]);
            assert_eq!(sim.step(&[Bit::One]).unwrap(), vec![Bit::Zero]); // in ON
            assert_eq!(sim.step(&[Bit::Zero]).unwrap(), vec![Bit::Zero]); // back OFF
            assert_eq!(sim.step(&[Bit::One]).unwrap(), vec![Bit::One]);
        }
    }

    #[test]
    fn encodings_are_equivalent() {
        let stg = parse_kiss2(TOGGLE).unwrap();
        let a = synthesize_stg(&stg, Encoding::OneHot, "t1").unwrap();
        let b = synthesize_stg(&stg, Encoding::Binary, "t2").unwrap();
        assert!(netlist::exhaustive_equiv(&a, &b, 6)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn maps_through_turbomap_frt() {
        // A 4-state up/down counter controller.
        let src = "\
.i 2
.o 2
.s 4
.r s0
1- s0 s1 01
0- s0 s0 00
-1 s1 s2 01
-0 s1 s0 10
11 s2 s3 11
10 s2 s1 10
0- s2 s2 00
-- s3 s0 11
.e
";
        let stg = parse_kiss2(src).unwrap();
        let c = synthesize_stg(&stg, Encoding::Binary, "ctr").unwrap();
        netlist::validate(&c).unwrap();
        // Overlapping cubes make this nondeterministic-looking on paper,
        // but OR-plane semantics (like SIS) resolve it deterministically.
        let mut sim = Simulator::new(&c).unwrap();
        for i in 0..12 {
            let v = sim
                .step(&[Bit::from_bool(i % 2 == 0), Bit::from_bool(i % 3 == 0)])
                .unwrap();
            assert!(v.iter().all(|b| b.is_defined()));
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_kiss2(".i 1\n.o 1\n11 a b 1\n.e\n").is_err()); // cube width
        assert!(parse_kiss2(".o 1\n1 a b 1\n.e\n").is_err()); // missing .i
        assert!(parse_kiss2(".i 1\n.o 1\n.e\n").is_err()); // no transitions
        assert!(parse_kiss2(".i 1\n.o 1\n2 a b 1\n.e\n").is_err()); // bad char
    }

    #[test]
    fn reset_state_is_index_zero() {
        let src = ".i 1\n.o 1\n.r B\n1 A B 1\n0 B A 0\n.e\n";
        let stg = parse_kiss2(src).unwrap();
        assert_eq!(stg.states[0], "B");
    }
}
