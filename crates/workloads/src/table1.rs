//! The Table-1 benchmark suite: 18 seeded circuits calibrated to the
//! paper's `Original N/F` column.
//!
//! The 14 MCNC FSMs are random FSMs (one-hot registers = `F`) grown to
//! the paper's gate count `N` with a depth target derived from the
//! paper's FlowMap-frt clock periods (a K=5 LUT covers roughly two levels
//! of 2-input logic). The 4 ISCAS'89 circuits use the layered generator
//! with exact gate/register counts. Every preset also records the
//! paper's reported results so the harness can print paper-vs-measured
//! side by side.

use crate::fsm::{generate_fsm, Encoding, FsmSpec};
use crate::grow::grow;
use crate::layered::{generate_layered, LayeredSpec};
use netlist::Circuit;

/// One algorithm's row fragment in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperResult {
    /// Clock period Φ.
    pub phi: u64,
    /// LUT count.
    pub luts: u64,
    /// FF count.
    pub ffs: u64,
    /// CPU seconds on the paper's Sun Ultra2 (`None` = "> 7200").
    pub cpu: Option<f64>,
}

/// The paper's reported numbers for one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// `Original N` (gates).
    pub n: usize,
    /// `Original F` (registers).
    pub f: usize,
    /// FlowMap-frt columns.
    pub flowmap_frt: PaperResult,
    /// TurboMap columns.
    pub turbomap: PaperResult,
    /// `⋆`: SIS failed to compute initial states for the TurboMap
    /// solution.
    pub turbomap_star: bool,
    /// `Best` valid Φ among the two baselines.
    pub best_valid_phi: u64,
    /// TurboMap-frt columns.
    pub turbomap_frt: PaperResult,
}

/// One benchmark preset.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Circuit name (matching the paper's).
    pub name: &'static str,
    /// True for the four ISCAS'89-style circuits.
    pub iscas: bool,
    /// STG state count for the FSM generator (ignored for ISCAS rows).
    pub states: usize,
    /// Register encoding for the FSM generator (chosen so the register
    /// count equals the paper's `F`).
    pub encoding: Encoding,
    /// The paper's reported numbers.
    pub paper: PaperRow,
}

const fn pr(phi: u64, luts: u64, ffs: u64, cpu: f64) -> PaperResult {
    PaperResult {
        phi,
        luts,
        ffs,
        cpu: Some(cpu),
    }
}

const fn pr_timeout(phi: u64, luts: u64, ffs: u64) -> PaperResult {
    PaperResult {
        phi,
        luts,
        ffs,
        cpu: None,
    }
}

#[rustfmt::skip]
const fn row(n: usize, f: usize, fm: PaperResult, tm: PaperResult, star: bool,
             best: u64, tf: PaperResult) -> PaperRow {
    PaperRow {
        n, f,
        flowmap_frt: fm,
        turbomap: tm,
        turbomap_star: star,
        best_valid_phi: best,
        turbomap_frt: tf,
    }
}

/// All 18 presets, in the paper's row order (Table 1).
#[rustfmt::skip]
pub fn presets() -> Vec<Preset> {
    vec![
        Preset { name: "bbara",    iscas: false, states: 10, encoding: Encoding::OneHot, paper: row(  28,   10, pr( 4,   13,   10,   0.2), pr( 3,   12,    7,    0.4), false,  3, pr( 3,   12,   12,    0.2)) },
        Preset { name: "bbtas",    iscas: false, states: 5, encoding: Encoding::OneHot, paper: row(  15,    5, pr( 2,    7,    5,   0.1), pr( 1,    6,    4,    0.2), false,  1, pr( 1,    6,    4,    0.1)) },
        Preset { name: "dk16",     iscas: false, states: 5, encoding: Encoding::OneHot, paper: row( 162,    5, pr(14,  101,    5,   0.9), pr(14,  103,   14,    3.8), false, 14, pr(14,  103,    9,    1.7)) },
        Preset { name: "dk17",     iscas: false, states: 5, encoding: Encoding::OneHot, paper: row(  42,    5, pr( 2,   10,    5,   0.2), pr( 1,    6,    3,    0.4), false,  1, pr( 1,    6,    3,    0.2)) },
        Preset { name: "ex1",      iscas: false, states: 17, encoding: Encoding::Binary, paper: row( 140,    5, pr( 8,   83,    5,   0.7), pr( 8,   92,   21,    1.9), false,  8, pr( 8,   92,   20,    1.3)) },
        Preset { name: "ex2",      iscas: false, states: 7, encoding: Encoding::OneHot, paper: row(  16,    7, pr( 2,    9,    7,   0.2), pr( 1,    4,    3,    0.2), true,   2, pr( 1,    4,    3,    0.1)) },
        Preset { name: "keyb",     iscas: false, states: 17, encoding: Encoding::Binary, paper: row( 134,    5, pr(10,   75,    5,   0.6), pr(10,   79,    5,    1.6), false, 10, pr(10,   81,    5,    1.0)) },
        Preset { name: "kirkman",  iscas: false, states: 5, encoding: Encoding::OneHot, paper: row( 106,    5, pr( 6,   48,    5,   0.7), pr( 5,   57,   24,    1.2), true,   6, pr( 5,   57,   14,    0.8)) },
        Preset { name: "planet1",  iscas: false, states: 6, encoding: Encoding::OneHot, paper: row( 348,    6, pr(19,  213,    6,   2.0), pr(19,  201,   18,   12.5), true,  19, pr(19,  199,   37,    5.0)) },
        Preset { name: "s1",       iscas: false, states: 5, encoding: Encoding::OneHot, paper: row( 107,    5, pr( 7,   58,    5,   0.5), pr( 7,   63,   11,    1.2), false,  7, pr( 7,   56,    6,    0.7)) },
        Preset { name: "sand",     iscas: false, states: 17, encoding: Encoding::OneHot, paper: row( 327,   17, pr(16,  176,   17,   1.8), pr(15,  178,   30,   10.6), true,  16, pr(15,  176,   12,    4.3)) },
        Preset { name: "scf",      iscas: false, states: 7, encoding: Encoding::OneHot, paper: row( 516,    7, pr(14,  325,    7,   2.8), pr(13,  304,   20,   19.8), true,  14, pr(13,  301,   27,    8.8)) },
        Preset { name: "sse",      iscas: false, states: 9, encoding: Encoding::Binary, paper: row(  74,    4, pr( 7,   42,    4,   0.4), pr( 6,   45,   10,    0.9), false,  6, pr( 6,   44,    8,    0.5)) },
        Preset { name: "styr",     iscas: false, states: 5, encoding: Encoding::OneHot, paper: row( 281,    5, pr(17,  163,    5,   1.6), pr(16,  168,    8,    5.2), true,  17, pr(17,  168,   12,    3.2)) },
        Preset { name: "s5378",    iscas: true, states: 0, encoding: Encoding::OneHot, paper: row(1503,  164, pr( 4,  421,  204,   7.9), pr( 4,  444,  301,   51.5), true,   4, pr( 4,  427,  261,   40.3)) },
        Preset { name: "s9234.1",  iscas: true, states: 0, encoding: Encoding::OneHot, paper: row(1299,  135, pr( 6,  462,  161,   8.5), pr_timeout( 4,  498,  217), true,   6, pr( 5,  441,  203,   58.8)) },
        Preset { name: "s15850.1", iscas: true, states: 0, encoding: Encoding::OneHot, paper: row(3801,  515, pr(10, 1240,  504,  30.3), pr_timeout( 8, 1161,  732), true,  10, pr(10, 1166,  621,  205.6)) },
        Preset { name: "s38417",   iscas: true, states: 0, encoding: Encoding::OneHot, paper: row(9817, 1464, pr( 8, 3526, 1464, 561.5), pr( 6, 3420, 2264, 1201.8), true,   8, pr( 6, 3301, 2573, 1210.6)) },
    ]
}

/// Builds the circuit for one preset (deterministic).
pub fn build_preset(p: &Preset) -> Circuit {
    let seed = seed_of(p.name);
    // Depth target: the paper's FlowMap-frt Φ is the per-block 5-LUT
    // depth; a 5-LUT absorbs ~2 levels of 2-input logic.
    let depth = (p.paper.flowmap_frt.phi * 5 / 2).max(2);
    if p.iscas {
        let inputs = (p.paper.n / 40).clamp(8, 64);
        generate_layered(&LayeredSpec {
            name: p.name.to_string(),
            // Register-file and input buffers count as gates; input
            // registers count toward `F`.
            gates: p.paper.n.saturating_sub(p.paper.f).max(1),
            ffs: p.paper.f.saturating_sub(inputs).max(1),
            inputs,
            outputs: (p.paper.n / 60).clamp(6, 48),
            depth: depth as usize,
            registered_inputs: true,
            seed,
        })
    } else {
        // Tiny targets need the narrowest decoder (1 decoded input) or
        // the base FSM alone overshoots the paper's N. Inputs are
        // registered (scan-style), so PIs count toward `F` and the state
        // count shrinks accordingly.
        let inputs = if p.paper.n < 60 {
            1
        } else {
            (p.paper.n / 60).clamp(1, 6)
        }
        .min(p.paper.f.saturating_sub(2).max(1));
        let states = match p.encoding {
            Encoding::OneHot => p.states.min(p.paper.f - inputs).max(1),
            Encoding::Binary => {
                // Keep bits_for(states) = F - inputs.
                let bits = (p.paper.f - inputs).max(1);
                ((3usize << bits) / 4)
                    .max((1 << (bits - 1)) + 1)
                    .min(1 << bits)
            }
        };
        let base = generate_fsm(&FsmSpec {
            name: p.name.to_string(),
            states,
            inputs,
            decoded: 1,
            outputs: (p.paper.n / 50).clamp(1, 6),
            encoding: p.encoding,
            registered_inputs: true,
            seed,
        });
        grow(&base, p.paper.n, depth, seed).expect("table1 FSM bases are valid grow inputs")
    }
}

fn seed_of(name: &str) -> u64 {
    // FNV-1a for stable per-name seeds.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the full 18-circuit suite.
pub fn table1_suite() -> Vec<(Preset, Circuit)> {
    presets()
        .into_iter()
        .map(|p| {
            let c = build_preset(&p);
            (p, c)
        })
        .collect()
}

/// Builds only the circuits below a gate-count bound (for quick runs).
pub fn table1_suite_small(max_gates: usize) -> Vec<(Preset, Circuit)> {
    table1_suite()
        .into_iter()
        .filter(|(_, c)| c.num_gates() <= max_gates)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_paper_rows() {
        let p = presets();
        assert_eq!(p.len(), 18);
        assert_eq!(p.iter().filter(|x| x.iscas).count(), 4);
        assert_eq!(p.iter().filter(|x| x.paper.turbomap_star).count(), 10);
    }

    #[test]
    fn small_presets_match_f_exactly() {
        for p in presets().into_iter().take(6) {
            let c = build_preset(&p);
            netlist::validate(&c).unwrap();
            assert_eq!(c.ff_count_shared(), p.paper.f, "{}", p.name);
        }
    }

    #[test]
    fn gate_counts_close_to_paper() {
        for p in presets() {
            if p.paper.n > 600 {
                continue; // large ones covered by the harness itself
            }
            let c = build_preset(&p);
            let n = c.num_gates();
            // FSM bases can overshoot tiny targets; ±60% tolerated there,
            // grown/layered circuits are near-exact.
            assert!(
                n >= p.paper.n && n <= p.paper.n * 8 / 5 + 30,
                "{}: N={} target={}",
                p.name,
                n,
                p.paper.n
            );
        }
    }

    #[test]
    fn iscas_counts_exact() {
        let p = presets();
        let s5378 = p.iter().find(|x| x.name == "s5378").unwrap();
        let c = build_preset(s5378);
        assert_eq!(c.num_gates(), s5378.paper.n);
        assert_eq!(c.ff_count_shared(), s5378.paper.f);
        netlist::validate(&c).unwrap();
    }

    #[test]
    fn suite_is_deterministic() {
        let a = build_preset(&presets()[1]);
        let b = build_preset(&presets()[1]);
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn geomean_reference_values() {
        // The paper's geometric means for the Φ columns: 7.0 / 5.6 / 5.8.
        let p = presets();
        let geo = |f: &dyn Fn(&Preset) -> f64| -> f64 {
            let s: f64 = p.iter().map(|x| f(x).ln()).sum();
            (s / p.len() as f64).exp()
        };
        let fm = geo(&|x: &Preset| x.paper.flowmap_frt.phi as f64);
        let tm = geo(&|x: &Preset| x.paper.turbomap.phi as f64);
        let tf = geo(&|x: &Preset| x.paper.turbomap_frt.phi as f64);
        assert!((fm - 7.0).abs() < 0.1, "fm geomean {fm}");
        assert!((tm - 5.6).abs() < 0.1, "tm geomean {tm}");
        assert!((tf - 5.8).abs() < 0.1, "tf geomean {tf}");
    }
}
