//! Exact reconstructions of the paper's figure examples.
//!
//! The figures are the paper's didactic circuits; each constructor
//! documents which claim it illustrates, and the test suites (and the
//! per-figure benches) verify those claims against our implementation:
//!
//! * **Figure 1** — forward-retiming initial states come from one gate
//!   evaluation; backward retiming needs justification.
//! * **Figure 2** — a circuit (K = 3) whose minimum period is reachable
//!   only by *non-simple* FRT solutions (a register pulled forward
//!   through a LUT).
//! * **Figure 3** — a register cannot be absorbed into a LUT when some
//!   root path has no register to push forward (`frt(c) = 0`).
//! * **Figure 4** — one extra register on the input edge makes
//!   `frt(c) = 1` and the same LUT legal.

use netlist::{Bit, Circuit, TruthTable};

/// Figure 1: an AND gate with registers on its inputs (forward case) or
/// output (backward case).
///
/// Forward retiming across the AND computes the new register value by
/// simulation (`AND(1, 0) = 0`); backward retiming must justify the
/// stored output value through the gate.
pub fn fig1_circuit(forward: bool) -> Circuit {
    let mut c = Circuit::new(if forward { "fig1_fwd" } else { "fig1_bwd" });
    let a = c.add_input("a").unwrap();
    let b = c.add_input("b").unwrap();
    let g = c.add_gate("g", TruthTable::and(2)).unwrap();
    let o = c.add_output("o").unwrap();
    if forward {
        c.connect(a, g, vec![Bit::One]).unwrap();
        c.connect(b, g, vec![Bit::Zero]).unwrap();
        c.connect(g, o, vec![]).unwrap();
    } else {
        c.connect(a, g, vec![]).unwrap();
        c.connect(b, g, vec![]).unwrap();
        c.connect(g, o, vec![Bit::One]).unwrap();
    }
    c
}

/// Figure 2: a circuit exhibiting the simple-vs-non-simple separation
/// (K = 3).
///
/// The paper's Figure 2 shows a circuit that has **no simple** FRT
/// mapping solution at the optimal period but does have a non-simple one
/// (a register must be pulled forward *through* a LUT, `r_M(v) ≥ 1`).
/// This reconstruction — a small binary-encoded FSM with a deepened
/// next-state path — has the same property: TurboMap-frt restricted to
/// weight-0 cones (simple solutions only, `weight_horizon = 0`) reaches
/// Φ = 6 at K = 3, while the unrestricted algorithm reaches Φ = 5.
/// Verified by the `fig2_requires_nonsimple` integration test and the
/// `fig2_simple_vs_nonsimple` bench.
pub fn fig2_circuit() -> Circuit {
    let base = crate::fsm::generate_fsm(&crate::fsm::FsmSpec {
        name: "fig2".into(),
        states: 4,
        inputs: 2,
        decoded: 2,
        outputs: 1,
        encoding: crate::fsm::Encoding::Binary,
        registered_inputs: false,
        seed: 1,
    });
    crate::grow::grow(&base, base.num_gates() + 10, 8, 1).expect("fig2 base is a valid FSM")
}

/// Figure 3: `i1 → a → c` with a parallel registered path `a → b —FF→ c`.
///
/// `frt(c) = 0` (the direct path carries no register), so no LUT rooted
/// at `c` may absorb `b`'s register — forming that cluster would need a
/// *backward* move.
pub fn fig3_circuit() -> Circuit {
    let mut c = Circuit::new("fig3");
    let i1 = c.add_input("i1").unwrap();
    let a = c.add_gate("a", TruthTable::not()).unwrap();
    let b = c.add_gate("b", TruthTable::not()).unwrap();
    let cc = c.add_gate("c", TruthTable::and(2)).unwrap();
    let o = c.add_output("o").unwrap();
    c.connect(i1, a, vec![]).unwrap();
    c.connect(a, b, vec![]).unwrap();
    c.connect(b, cc, vec![Bit::Zero]).unwrap();
    c.connect(a, cc, vec![]).unwrap();
    c.connect(cc, o, vec![]).unwrap();
    c
}

/// Figure 4: the Figure-3 circuit with one extra register on `(i1, a)`,
/// making `frt(c) = 1`; the 3-LUT absorbing `b`'s register becomes legal.
pub fn fig4_circuit() -> Circuit {
    let mut c = Circuit::new("fig4");
    let i1 = c.add_input("i1").unwrap();
    let a = c.add_gate("a", TruthTable::not()).unwrap();
    let b = c.add_gate("b", TruthTable::not()).unwrap();
    let cc = c.add_gate("c", TruthTable::and(2)).unwrap();
    let o = c.add_output("o").unwrap();
    c.connect(i1, a, vec![Bit::One]).unwrap();
    c.connect(a, b, vec![]).unwrap();
    c.connect(b, cc, vec![Bit::Zero]).unwrap();
    c.connect(a, cc, vec![]).unwrap();
    c.connect(cc, o, vec![]).unwrap();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use retiming::max_forward_retiming_values;

    #[test]
    fn all_figures_validate() {
        for c in [
            fig1_circuit(true),
            fig1_circuit(false),
            fig2_circuit(),
            fig3_circuit(),
            fig4_circuit(),
        ] {
            netlist::validate(&c).unwrap();
        }
    }

    #[test]
    fn fig3_frt_is_zero() {
        let c = fig3_circuit();
        let frt = max_forward_retiming_values(&c);
        assert_eq!(frt[c.find("c").unwrap().index()], 0);
    }

    #[test]
    fn fig4_frt_is_one() {
        let c = fig4_circuit();
        let frt = max_forward_retiming_values(&c);
        assert_eq!(frt[c.find("c").unwrap().index()], 1);
        assert_eq!(frt[c.find("b").unwrap().index()], 1);
        assert_eq!(frt[c.find("a").unwrap().index()], 1);
    }

    #[test]
    fn fig1_forward_retiming_by_simulation() {
        let c = fig1_circuit(true);
        let res = retiming::retime_min_period_forward(&c).unwrap();
        // The register can cross the gate: new value AND(1, 0) = 0.
        assert_eq!(res.period, 1);
        assert!(netlist::exhaustive_equiv(&c, &res.circuit, 4)
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn fig2_structure() {
        let c = fig2_circuit();
        netlist::validate(&c).unwrap();
        assert_eq!(c.num_gates(), 39);
        // Some register is pullable somewhere (the non-simple ingredient).
        let frt = max_forward_retiming_values(&c);
        assert!(c.gate_ids().any(|v| frt[v.index()] >= 1));
    }
}
