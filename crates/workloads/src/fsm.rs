//! Seeded random FSM synthesis — the MCNC-FSM benchmark substitute.
//!
//! The paper's Table 1 uses 14 MCNC finite state machines synthesised with
//! SIS. Those netlist files are not available offline, so this module
//! generates *structurally comparable* circuits: a random state transition
//! graph (STG) over a given number of states and input bits, encoded into
//! state registers (binary or one-hot) with two-level next-state/output
//! logic built from 2-input gate trees — the same shape SIS produces from
//! a KISS2 description after tech decomposition. The reset state is state
//! 0, giving every register a defined initial value (the paper's setting:
//! "sequential circuits with given initial states").

use engine::Rng64;
use netlist::{Bit, Circuit, NodeId, TruthTable};

/// State register encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// `⌈log2(states)⌉` registers.
    Binary,
    /// One register per state.
    OneHot,
}

/// Parameters of a generated FSM.
#[derive(Debug, Clone)]
pub struct FsmSpec {
    /// Circuit name.
    pub name: String,
    /// Number of STG states (≥ 1).
    pub states: usize,
    /// Number of primary input bits the transitions depend on (decoded
    /// inputs are exhausted; the rest join the output logic only).
    pub inputs: usize,
    /// How many inputs the transition table decodes (clamped to 1..=3;
    /// the decoder grows as `2^decoded`).
    pub decoded: usize,
    /// Number of primary outputs (Moore-style, from the state bits).
    pub outputs: usize,
    /// Register encoding.
    pub encoding: Encoding,
    /// Register every primary input (one shared register per PI, counted
    /// by [`FsmSpec::register_count`]); makes `frt ≥ 1` throughout the
    /// input logic, enabling cross-register LUT formation.
    pub registered_inputs: bool,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl FsmSpec {
    /// Number of registers this spec produces (state registers plus one
    /// per PI when `registered_inputs` is set).
    pub fn register_count(&self) -> usize {
        let state_regs = match self.encoding {
            Encoding::Binary => bits_for(self.states),
            Encoding::OneHot => self.states,
        };
        state_regs
            + if self.registered_inputs {
                self.inputs.max(1)
            } else {
                0
            }
    }
}

fn bits_for(states: usize) -> usize {
    (usize::BITS - (states.max(2) - 1).leading_zeros()) as usize
}

/// Builder state while synthesising gate trees.
struct Synth {
    c: Circuit,
    counter: usize,
}

impl Synth {
    fn fresh_gate(&mut self, tt: TruthTable, prefix: &str) -> NodeId {
        self.counter += 1;
        self.c
            .add_gate(format!("{prefix}_{}", self.counter), tt)
            .expect("fresh names are unique")
    }

    /// Balanced tree of 2-input `tt`-gates over the operand nodes.
    /// Single operands pass through unchanged.
    fn tree(
        &mut self,
        op: fn(usize) -> TruthTable,
        mut operands: Vec<NodeId>,
        prefix: &str,
    ) -> NodeId {
        assert!(!operands.is_empty());
        while operands.len() > 1 {
            let mut next = Vec::with_capacity(operands.len().div_ceil(2));
            let mut it = operands.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let g = self.fresh_gate(op(2), prefix);
                        self.c.connect(a, g, vec![]).expect("arity 2");
                        self.c.connect(b, g, vec![]).expect("arity 2");
                        next.push(g);
                    }
                    None => next.push(a),
                }
            }
            operands = next;
        }
        operands.pop().expect("non-empty")
    }

    fn invert(&mut self, a: NodeId, prefix: &str) -> NodeId {
        let g = self.fresh_gate(TruthTable::not(), prefix);
        self.c.connect(a, g, vec![]).expect("arity 1");
        g
    }
}

/// Synthesises the FSM into a gate-level sequential circuit.
///
/// The result is validated, 2-bounded, PI-reachable, and carries a fully
/// defined initial state (the encoding of state 0).
///
/// # Panics
///
/// Panics if `states == 0` or `outputs == 0`.
pub fn generate_fsm(spec: &FsmSpec) -> Circuit {
    assert!(spec.states >= 1, "FSM needs at least one state");
    assert!(spec.outputs >= 1, "FSM needs at least one output");
    let mut rng = Rng64::new(spec.seed ^ 0xF5A5_1234_ABCD_0001);
    // At least one decoded input keeps the state loop PI-reachable (the
    // papers' model requires it); at most 3 keeps the decoder tractable.
    let decoded_inputs = spec.decoded.clamp(1, 3).min(spec.inputs.max(1));
    let combos = 1usize << decoded_inputs;

    // Random STG: next[s][x] and a random Moore output set per output
    // bit. Transitions are biased toward the reset state (sparse on-sets,
    // like real controller FSMs).
    let next: Vec<Vec<usize>> = (0..spec.states)
        .map(|_| {
            (0..combos)
                .map(|_| {
                    if rng.chance(0.4) {
                        0
                    } else {
                        rng.below(spec.states)
                    }
                })
                .collect()
        })
        .collect();
    let out_on: Vec<Vec<bool>> = (0..spec.outputs)
        .map(|_| (0..spec.states).map(|_| rng.chance(0.4)).collect())
        .collect();

    let mut s = Synth {
        c: Circuit::new(spec.name.clone()),
        counter: 0,
    };
    let raw_pis: Vec<NodeId> = (0..spec.inputs.max(1))
        .map(|i| s.c.add_input(format!("in{i}")).expect("unique"))
        .collect();
    let pis: Vec<NodeId> = if spec.registered_inputs {
        raw_pis
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let b =
                    s.c.add_gate(format!("inreg{i}"), TruthTable::buf())
                        .expect("unique");
                s.c.connect(p, b, vec![Bit::from_bool(i % 2 == 1)])
                    .expect("arity");
                b
            })
            .collect()
    } else {
        raw_pis
    };
    let pi_inv: Vec<NodeId> = pis
        .iter()
        .take(decoded_inputs)
        .map(|&p| s.invert(p, "ninp"))
        .collect();

    // State registers are modelled as self-referential signals: we create
    // one "state bit source" gate per register, whose fanin is wired at
    // the end (the next-state function through one FF).
    let regs = match spec.encoding {
        Encoding::Binary => bits_for(spec.states),
        Encoding::OneHot => spec.states,
    };
    let state_src: Vec<NodeId> = (0..regs)
        .map(|b| s.fresh_gate(TruthTable::buf(), &format!("st{b}")))
        .collect();
    let state_inv: Vec<NodeId> = state_src.iter().map(|&b| s.invert(b, "nst")).collect();

    // Decoder terms: state == k (AND over encoded bits or the one-hot bit).
    let state_term = |s: &mut Synth, k: usize| -> NodeId {
        match spec.encoding {
            Encoding::OneHot => state_src[k],
            Encoding::Binary => {
                let lits: Vec<NodeId> = (0..regs)
                    .map(|b| {
                        if (k >> b) & 1 == 1 {
                            state_src[b]
                        } else {
                            state_inv[b]
                        }
                    })
                    .collect();
                s.tree(TruthTable::and, lits, "dec")
            }
        }
    };
    // Input combo terms.
    let combo_term = |s: &mut Synth, x: usize| -> Option<NodeId> {
        if decoded_inputs == 0 {
            return None;
        }
        let lits: Vec<NodeId> = (0..decoded_inputs)
            .map(|i| if (x >> i) & 1 == 1 { pis[i] } else { pi_inv[i] })
            .collect();
        Some(s.tree(TruthTable::and, lits, "cmb"))
    };
    let mut state_terms = Vec::with_capacity(spec.states);
    for k in 0..spec.states {
        state_terms.push(state_term(&mut s, k));
    }
    let mut combo_terms = Vec::with_capacity(combos);
    for x in 0..combos {
        combo_terms.push(combo_term(&mut s, x));
    }

    // Next-state bit functions: OR over minterms (state, combo) whose
    // successor sets the bit. Minterm gates are shared across bits, as a
    // logic-sharing synthesiser would.
    let bit_set = |state: usize, bit: usize| -> bool {
        match spec.encoding {
            Encoding::Binary => (state >> bit) & 1 == 1,
            Encoding::OneHot => state == bit,
        }
    };
    let mut minterm_cache: Vec<Vec<Option<NodeId>>> = vec![vec![None; combos]; spec.states];
    let mut next_bits: Vec<Option<NodeId>> = Vec::with_capacity(regs);
    for b in 0..regs {
        let mut minterms = Vec::new();
        for k in 0..spec.states {
            for x in 0..combos {
                if bit_set(next[k][x], b) {
                    let mt = match minterm_cache[k][x] {
                        Some(mt) => mt,
                        None => {
                            let mut ops = vec![state_terms[k]];
                            if let Some(ct) = combo_terms[x] {
                                ops.push(ct);
                            }
                            let mt = s.tree(TruthTable::and, ops, "nm");
                            minterm_cache[k][x] = Some(mt);
                            mt
                        }
                    };
                    minterms.push(mt);
                }
            }
        }
        next_bits.push(if minterms.is_empty() {
            None // the bit is constantly 0: feed it a grounded AND below
        } else {
            Some(s.tree(TruthTable::or, minterms, &format!("nx{b}")))
        });
    }

    // Close the state loops: state_src[b] = FF(next_bits[b]) with the
    // reset encoding of state 0.
    for b in 0..regs {
        let init = Bit::from_bool(bit_set(0, b));
        let driver = match next_bits[b] {
            Some(d) => d,
            None => {
                // Constant-0 next bit: AND(in0, NOT in0) keeps PI
                // reachability without a constant generator.
                let z = s.fresh_gate(TruthTable::and(2), "zero");
                let inv = s.invert(pis[0], "zero");
                s.c.connect(pis[0], z, vec![]).expect("arity");
                s.c.connect(inv, z, vec![]).expect("arity");
                z
            }
        };
        s.c.connect(driver, state_src[b], vec![init])
            .expect("state loop");
    }

    // Moore outputs: OR over on-set state terms (mixed with an undecoded
    // input when available, for Mealy flavour).
    for o in 0..spec.outputs {
        let po = s.c.add_output(format!("out{o}")).expect("unique");
        let mut terms: Vec<NodeId> = (0..spec.states)
            .filter(|&k| out_on[o][k])
            .map(|k| state_terms[k])
            .collect();
        if terms.is_empty() {
            terms.push(state_terms[o % spec.states]);
        }
        let mut sig = s.tree(TruthTable::or, terms, &format!("out{o}"));
        if spec.inputs > decoded_inputs {
            let extra = pis[decoded_inputs + o % (spec.inputs - decoded_inputs)];
            let g = s.fresh_gate(TruthTable::and(2), &format!("mel{o}"));
            s.c.connect(sig, g, vec![]).expect("arity");
            s.c.connect(extra, g, vec![]).expect("arity");
            sig = g;
        }
        s.c.connect(sig, po, vec![]).expect("PO fanin");
    }
    s.c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(states: usize, inputs: usize, outputs: usize, enc: Encoding) -> FsmSpec {
        FsmSpec {
            name: "fsm".into(),
            states,
            inputs,
            decoded: 2,
            outputs,
            encoding: enc,
            registered_inputs: false,
            seed: 42,
        }
    }

    #[test]
    fn generates_valid_circuit() {
        for enc in [Encoding::Binary, Encoding::OneHot] {
            let c = generate_fsm(&spec(6, 2, 2, enc));
            netlist::validate(&c).unwrap();
            assert!(c.max_fanin() <= 2);
            assert_eq!(
                c.ff_count_shared(),
                spec(6, 2, 2, enc).register_count(),
                "{enc:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_fsm(&spec(5, 2, 1, Encoding::Binary));
        let b = generate_fsm(&spec(5, 2, 1, Encoding::Binary));
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let mut sp = spec(5, 2, 1, Encoding::Binary);
        let a = generate_fsm(&sp);
        sp.seed = 43;
        let b = generate_fsm(&sp);
        assert_ne!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn initial_state_defined() {
        let c = generate_fsm(&spec(7, 3, 2, Encoding::Binary));
        for e in c.edge_ids() {
            for &b in c.edge(e).ffs() {
                assert!(b.is_defined());
            }
        }
    }

    #[test]
    fn simulates_from_reset() {
        let c = generate_fsm(&spec(4, 2, 2, Encoding::OneHot));
        let mut sim = netlist::Simulator::new(&c).unwrap();
        for cycle in 0..16 {
            let inp: Vec<Bit> = (0..c.inputs().len())
                .map(|i| Bit::from_bool((cycle + i) % 3 == 0))
                .collect();
            let out = sim.step(&inp).unwrap();
            assert!(
                out.iter().all(|b| b.is_defined()),
                "outputs defined at cycle {cycle}"
            );
        }
    }

    #[test]
    fn zero_decoded_inputs_still_valid() {
        let mut sp = spec(3, 0, 1, Encoding::Binary);
        sp.inputs = 0;
        let c = generate_fsm(&sp);
        netlist::validate(&c).unwrap();
        assert_eq!(c.inputs().len(), 1); // a clock-enable-like dummy PI
    }

    #[test]
    fn single_state_fsm() {
        let c = generate_fsm(&spec(1, 1, 1, Encoding::Binary));
        netlist::validate(&c).unwrap();
    }
}
