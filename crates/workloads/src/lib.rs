//! Benchmark circuit generators for the TurboMap-frt reproduction.
//!
//! The paper evaluates on 14 MCNC FSMs and 4 ISCAS'89 circuits; those
//! files are unavailable offline, so this crate generates *seeded
//! synthetic equivalents* calibrated to the paper's per-circuit gate and
//! register counts (see DESIGN.md for the substitution argument):
//!
//! * [`fsm`] — random state machines synthesised to 2-input gate
//!   networks with encoded, reset-initialised state registers,
//! * [`layered`] — layered datapath-style sequential circuits with exact
//!   gate/register counts,
//! * [`grow`] — size/depth calibration by live gate insertion,
//! * [`kiss`] — KISS2 parsing/synthesis for genuine MCNC FSM files,
//! * [`figures`] — the paper's Figure 1–4 example circuits,
//! * [`table1`] — the 18 Table-1 presets with the paper's reported
//!   numbers embedded for paper-vs-measured reports.
//!
//! # Examples
//!
//! ```
//! use workloads::fsm::{generate_fsm, Encoding, FsmSpec};
//!
//! let c = generate_fsm(&FsmSpec {
//!     name: "demo".into(),
//!     states: 4,
//!     inputs: 2,
//!     decoded: 2,
//!     outputs: 1,
//!     encoding: Encoding::OneHot,
//!     registered_inputs: false,
//!     seed: 1,
//! });
//! netlist::validate(&c).unwrap();
//! assert_eq!(c.ff_count_shared(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod fsm;
pub mod grow;
pub mod kiss;
pub mod large;
pub mod layered;
pub mod table1;

pub use figures::{fig1_circuit, fig2_circuit, fig3_circuit, fig4_circuit};
pub use fsm::{generate_fsm, Encoding, FsmSpec};
pub use grow::{grow, GrowError};
pub use kiss::{parse_kiss2, synthesize_stg, KissError, Stg};
pub use large::{
    build_flat, hier_to_string, large_preset, large_presets, tile_plan, write_hier, LargeSpec,
    TilePlan,
};
pub use layered::{generate_layered, LayeredSpec};
pub use table1::{
    build_preset, presets, table1_suite, table1_suite_small, PaperResult, PaperRow, Preset,
};
