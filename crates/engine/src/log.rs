//! Structured JSON-lines logging (std-only).
//!
//! One log event is one JSON object on one line, written atomically to
//! the configured sink (stderr by default — stdout is reserved for
//! results, per the repo's stream discipline). Events carry a wall-clock
//! timestamp, a severity, a `target` (the emitting module), a message,
//! the current **job** name (installed by the batch runner and `tmfrt
//! serve` around each job body) and the current **span** (the innermost
//! [`crate::trace`] span, when tracing is enabled), so a log line can be
//! correlated with the Chrome-trace timeline of the same job. Arbitrary
//! extra fields ride along as a `fields` object of [`JsonValue`]s.
//!
//! The level filter comes from the `TMFRT_LOG` environment variable
//! (`off`, `error`, `warn`, `info`, `debug`, `trace`) via [`init`];
//! CLI `-q/--quiet` lowers the default to `error` but an explicit
//! `TMFRT_LOG` always wins. Filtering is one relaxed atomic load, so
//! disabled levels cost nothing measurable on hot paths.
//!
//! Each thread formats its line into a reusable thread-local buffer
//! (the "per-thread buffered writer": no allocation in steady state,
//! no partial lines), then takes the sink lock for exactly one
//! `write_all`, so concurrent workers never interleave bytes.

use crate::json::JsonValue;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Level {
    /// The operation failed.
    Error = 0,
    /// Something surprising that the run survived.
    Warn = 1,
    /// Lifecycle progress (default filter).
    Info = 2,
    /// Per-iteration diagnostics (Φ probes, sweep counts).
    Debug = 3,
    /// Inner-loop detail (min-cut completions and the like).
    Trace = 4,
}

/// Sentinel for "no logging at all".
const OFF: usize = usize::MAX;

impl Level {
    /// Stable lowercase name (the JSON `level` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `TMFRT_LOG` value (`None` for unknown strings).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// Current max level as usize (`OFF` disables everything). Defaults to
/// `Info` so libraries log sensibly even if `init` was never called.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(Level::Info as usize);

/// The sink every thread writes finished lines to.
static SINK: OnceLock<Mutex<Box<dyn std::io::Write + Send>>> = OnceLock::new();

fn sink() -> &'static Mutex<Box<dyn std::io::Write + Send>> {
    SINK.get_or_init(|| Mutex::new(Box::new(std::io::stderr())))
}

/// Replaces the global sink (stderr by default). Used by `tmfrt serve
/// --log-file` and by tests capturing output. The previous sink is
/// flushed and dropped.
pub fn set_sink(w: Box<dyn std::io::Write + Send>) {
    let mut guard = sink().lock().expect("log sink poisoned");
    let _ = guard.flush();
    *guard = w;
}

/// A cloneable in-memory sink for tests: install with
/// [`set_sink`]`(Box::new(buf.clone()))`, then read back what was logged.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemorySink {
    /// An empty shared buffer.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything written so far, as (lossy) UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.lock().expect("memory sink poisoned")).into_owned()
    }
}

impl std::io::Write for MemorySink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .expect("memory sink poisoned")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Sets the level filter explicitly (overrides any earlier value).
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as usize).unwrap_or(OFF), Ordering::Relaxed);
}

/// Initialises the filter from the environment: `TMFRT_LOG` wins when
/// set (and parseable or `off`); otherwise `quiet` selects `error`,
/// and the default is `info`.
pub fn init(quiet: bool) {
    let level = match std::env::var("TMFRT_LOG") {
        Ok(v) if v.trim().eq_ignore_ascii_case("off") => None,
        Ok(v) => match Level::parse(&v) {
            Some(l) => Some(l),
            None => Some(if quiet { Level::Error } else { Level::Info }),
        },
        Err(_) => Some(if quiet { Level::Error } else { Level::Info }),
    };
    set_level(level);
}

/// True when `level` passes the current filter — one relaxed atomic
/// load, the only cost a disabled log site pays.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    max != OFF && (level as usize) <= max
}

thread_local! {
    /// Job name installed around a job body (batch runner / serve).
    static JOB: RefCell<Option<String>> = const { RefCell::new(None) };
    /// Reusable line-format buffer.
    static LINE: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Installs `job` as the current thread's job context for the lifetime
/// of the returned guard (the previous context is restored on drop), so
/// every log line emitted by the job body carries its name.
pub fn with_job(job: impl Into<String>) -> JobGuard {
    let prev = JOB.with(|j| j.replace(Some(job.into())));
    JobGuard { prev }
}

/// RAII guard returned by [`with_job`].
#[derive(Debug)]
pub struct JobGuard {
    prev: Option<String>,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        JOB.with(|j| *j.borrow_mut() = prev);
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emits one structured event. Prefer the level helpers ([`error`],
/// [`warn`], [`info`], [`debug`], [`trace`]); this is the common
/// implementation they share.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    if !enabled(level) {
        return;
    }
    let micros = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    LINE.with(|line| {
        let mut out = line.borrow_mut();
        out.clear();
        let _ = write!(
            out,
            "{{\"ts_micros\":{micros},\"level\":\"{}\",",
            level.as_str()
        );
        out.push_str("\"target\":");
        write_json_str(&mut out, target);
        out.push_str(",\"msg\":");
        write_json_str(&mut out, msg);
        JOB.with(|j| {
            if let Some(job) = j.borrow().as_deref() {
                out.push_str(",\"job\":");
                write_json_str(&mut out, job);
            }
        });
        if let Some(span) = crate::trace::current_span() {
            out.push_str(",\"span\":");
            write_json_str(&mut out, span);
            let _ = write!(out, ",\"span_seq\":{}", crate::trace::current_span_seq());
        }
        if !fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_str(&mut out, k);
                out.push(':');
                out.push_str(&v.render());
            }
            out.push('}');
        }
        out.push_str("}\n");
        let mut sink = sink().lock().expect("log sink poisoned");
        let _ = sink.write_all(out.as_bytes());
        let _ = sink.flush();
    });
}

/// Logs at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    log(Level::Error, target, msg, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    log(Level::Warn, target, msg, fields);
}

/// Logs at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    log(Level::Info, target, msg, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    log(Level::Debug, target, msg, fields);
}

/// Logs at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, JsonValue)]) {
    log(Level::Trace, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink and level filter are global; run the whole suite as one
    // test so parallel test threads cannot race on them.
    #[test]
    fn log_lines_are_json_with_context() {
        let mem = MemorySink::new();
        set_sink(Box::new(mem.clone()));
        set_level(Some(Level::Debug));

        info("engine::test", "plain line", &[]);
        {
            let _job = with_job("s27");
            warn(
                "engine::test",
                "with fields \"quoted\"\n",
                &[
                    ("phi", JsonValue::UInt(7)),
                    ("note", JsonValue::str("a\tb")),
                ],
            );
        }
        trace("engine::test", "filtered out", &[]);
        info("engine::test", "after job", &[]);

        // Other tests in this binary may log concurrently (the sink is
        // global); only lines from this test's target count.
        let ours = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.contains("\"target\":\"engine::test\""))
                .map(str::to_string)
                .collect()
        };
        let text = mem.contents();
        let lines = ours(&text);
        assert_eq!(lines.len(), 3, "trace line must be filtered: {text}");
        for line in &lines {
            let v = JsonValue::parse(line).expect("every log line parses as JSON");
            assert!(v.get("ts_micros").is_some());
            assert_eq!(
                v.get("target").and_then(|t| t.as_str()),
                Some("engine::test")
            );
        }
        let warn_line = JsonValue::parse(&lines[1]).unwrap();
        assert_eq!(
            warn_line.get("level").and_then(|l| l.as_str()),
            Some("warn")
        );
        assert_eq!(warn_line.get("job").and_then(|j| j.as_str()), Some("s27"));
        let fields = warn_line.get("fields").expect("fields object");
        assert_eq!(fields.get("phi").and_then(|p| p.as_u64()), Some(7));
        assert_eq!(fields.get("note").and_then(|n| n.as_str()), Some("a\tb"));
        // Job context is scoped: the line after the guard has no job.
        let after = JsonValue::parse(&lines[2]).unwrap();
        assert!(after.get("job").is_none());

        // Level parsing and the off switch.
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        set_level(None);
        assert!(!enabled(Level::Error));
        error("engine::test", "dropped", &[]);
        assert_eq!(ours(&mem.contents()).len(), 3);
        set_level(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }
}
