//! Parallel batch-execution engine for the TurboMap-frt reproduction.
//!
//! The repo's flows — the 18-circuit Table-1 suite, the ablation driver
//! and the `tmfrt` CLI — are batch jobs over independent circuits. This
//! crate executes such batches concurrently with production-grade
//! plumbing, using **only the standard library**:
//!
//! * [`pool`] — a work-stealing thread pool (per-worker deques plus a
//!   shared injector; idle workers steal from their siblings),
//! * [`batch`] — the job runner: per-job panic isolation
//!   (`catch_unwind` turns a crash into [`batch::JobOutcome::Panicked`]),
//!   soft deadlines enforced by a watchdog thread through cooperative
//!   [`cancel`] tokens, and **deterministic result ordering** regardless
//!   of worker count,
//! * [`cancel`] — cancellation tokens installed thread-locally so deep
//!   algorithm loops (the Φ binary search, the FRTcheck sweeps) can poll
//!   [`cancel::cancelled`] without threading a token through every call,
//! * [`telemetry`] — lock-free per-job counters, monotonic phase
//!   timers and streaming [`hist`] histograms accumulated in
//!   thread-locals and merged at job end,
//! * [`trace`] — span/event tracing into bounded per-thread ring
//!   buffers with Chrome-trace/Perfetto JSON export; zero-cost when
//!   disabled (one atomic branch per record site),
//! * [`mem`] — heap accounting: a counting `GlobalAlloc` wrapper the
//!   binaries install, per-phase [`mem::MemScope`]s feeding
//!   [`telemetry`], and the `VmHWM` peak-RSS probe; gated like [`trace`]
//!   (one atomic load per allocation when off),
//! * [`profile`] — offline Chrome-trace analysis for `tmfrt profile`:
//!   self/total span aggregation, folded-stack export, and A/B
//!   differentials with phase attribution,
//! * [`prom`] — a Prometheus text-exposition writer and validator for
//!   batch-level metrics summaries,
//! * [`http`] — a dependency-free HTTP/1.1 server (thread-per-connection
//!   with a bounded handler pool, graceful shutdown through [`cancel`]
//!   tokens, streaming responses for SSE) backing `tmfrt serve`,
//! * [`log`] — structured JSON-lines logging with a `TMFRT_LOG` level
//!   filter; events carry the current job and trace span so log lines
//!   correlate with Chrome traces,
//! * [`json`] — a small deterministic JSON writer for versioned result
//!   artifacts (`BENCH_table1.json`),
//! * [`rng`] — a seeded splitmix64 generator backing the workload
//!   generators and randomized tests (replaces the external `rand`
//!   dependency, which is unresolvable offline).
//!
//! # Examples
//!
//! ```
//! use engine::batch::{run_batch, BatchOptions, JobOutcome, JobSpec};
//!
//! let jobs: Vec<JobSpec<u64>> = (0..8u64)
//!     .map(|i| JobSpec::new(format!("job{i}"), move || Ok(i * i)))
//!     .collect();
//! let reports = run_batch(jobs, &BatchOptions::with_jobs(4));
//! assert_eq!(reports.len(), 8);
//! // Results come back in submission order, whatever the thread count.
//! for (i, r) in reports.iter().enumerate() {
//!     assert!(matches!(r.outcome, JobOutcome::Completed(v) if v == (i * i) as u64));
//! }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is
// `mem`'s `GlobalAlloc` wrapper, which opts back in locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cancel;
pub mod hist;
pub mod http;
pub mod json;
pub mod log;
pub mod mem;
pub mod pool;
pub mod profile;
pub mod prom;
pub mod rng;
pub mod telemetry;
pub mod trace;

pub use batch::{run_batch, BatchOptions, JobOutcome, JobReport, JobSpec};
pub use cancel::CancelToken;
pub use hist::{Histogram, Metric};
pub use json::JsonValue;
pub use mem::{CountingAlloc, MemPhase, MemScope, MemStats};
pub use pool::{scoped_workers, Pool};
pub use prom::PromWriter;
pub use rng::Rng64;
pub use telemetry::{Counter, Phase, Telemetry};
pub use trace::{SpanGuard, TraceBuffer};
