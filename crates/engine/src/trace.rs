//! Span/event tracing: bounded per-thread ring buffers with
//! Chrome-trace export (std-only, lock-free on the hot path).
//!
//! The flat telemetry counters say *how much* algorithmic work a job did;
//! traces say *when* and *under which Φ probe*. Each worker thread
//! records [`Event`]s into a fixed-capacity ring buffer
//! (drop-oldest, counted in `dropped_events` — no allocation and no
//! locking once the buffer exists). Spans are hierarchical —
//! `phi_search` → `phi_probe{phi}` → `frtcheck_sweep{n}` →
//! `min_cut{node}` — with enter/exit timestamps from a monotonic clock
//! anchored once per job, and events carry up to two static key/value
//! payloads (cut size, Φ bound, requeue count, …).
//!
//! **Zero-cost when disabled**: every record site is guarded by a single
//! relaxed load of one atomic flag ([`enabled`]); with tracing off no
//! clock is read, no buffer is touched and `--canonical` artifacts are
//! byte-identical to a tracing-enabled binary's (proven by
//! `crates/bench/tests/determinism.rs`).
//!
//! Harvesting is a job-boundary operation: the batch runner calls
//! [`job_start`] before the job body and [`take_thread`] after it, so a
//! [`TraceBuffer`] never spans two jobs. A completed span's duration is
//! also recorded into the [`crate::hist::Metric::SpanNanos`] histogram.

use crate::hist::Metric;
use crate::json::JsonValue;
use crate::telemetry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when tracing is globally enabled. One relaxed atomic load — the
/// single branch guarding every record site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables tracing. Threads observe the flag on
/// their next record attempt; buffers are not cleared.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span enter (Chrome `"B"`).
    Enter,
    /// Span exit (Chrome `"E"`).
    Exit,
    /// Point event (Chrome `"i"`).
    Instant,
}

/// Up to two static key/value payload slots.
pub type Payload = [Option<(&'static str, u64)>; 2];

/// One trace record: fixed-size, `Copy`, no heap.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Enter / exit / instant.
    pub kind: EventKind,
    /// Static span or event name.
    pub name: &'static str,
    /// Nanoseconds since the job's clock anchor.
    pub nanos: u64,
    /// Small static key/value payload.
    pub args: Payload,
}

/// A harvested per-job event sequence.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    /// Events in record order (oldest first).
    pub events: Vec<Event>,
    /// Events discarded because the ring was full (oldest-dropped).
    pub dropped: u64,
}

struct Ring {
    slots: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event when the ring is full.
    head: usize,
    dropped: u64,
    anchor: Instant,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            anchor: Instant::now(),
        }
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.slots.len() < self.capacity {
            self.slots.push(ev);
        } else {
            // Full: overwrite the oldest slot (drop-oldest).
            self.slots[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.dropped = 0;
        self.anchor = Instant::now();
    }

    fn take(&mut self) -> TraceBuffer {
        let mut events = Vec::with_capacity(self.slots.len());
        // Oldest-first: [head..] then [..head].
        events.extend_from_slice(&self.slots[self.head..]);
        events.extend_from_slice(&self.slots[..self.head]);
        let dropped = self.dropped;
        self.slots.clear();
        self.head = 0;
        self.dropped = 0;
        TraceBuffer { events, dropped }
    }
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring::new(DEFAULT_CAPACITY));
    /// Stack of open spans: `(name, seq)`, innermost last. Maintained
    /// only while tracing is enabled; read by `engine::log` so log lines
    /// can name the span they were emitted under.
    static SPAN_STACK: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    static SPAN_SEQ: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The innermost open span's name on this thread, when tracing is
/// enabled and a span is open (log correlation; `None` otherwise).
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().map(|&(name, _)| name))
}

/// The innermost open span's per-thread sequence number (1-based;
/// 0 when no span is open). Paired with the span name this identifies
/// one specific span instance within a job's trace.
pub fn current_span_seq() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().map(|&(_, seq)| seq).unwrap_or(0))
}

/// Nanoseconds since this thread's job anchor.
#[inline]
fn now_nanos() -> u64 {
    RING.with(|r| r.borrow().anchor.elapsed().as_nanos() as u64)
}

#[inline]
fn push(ev: Event) {
    RING.with(|r| r.borrow_mut().push(ev));
}

/// Re-anchors this thread's monotonic clock and clears its ring — the
/// job-start boundary. Cheap no-op when tracing is disabled.
pub fn job_start() {
    if enabled() {
        RING.with(|r| r.borrow_mut().reset());
        // Guards open across a job boundary (there should be none) must
        // not leak context into the next job's log lines.
        SPAN_STACK.with(|s| s.borrow_mut().clear());
    }
}

/// Resizes this thread's ring buffer (tests and tools; clears it).
pub fn set_thread_capacity(capacity: usize) {
    RING.with(|r| *r.borrow_mut() = Ring::new(capacity));
}

/// Harvests this thread's events (oldest first) and drop count,
/// clearing the ring.
pub fn take_thread() -> TraceBuffer {
    RING.with(|r| r.borrow_mut().take())
}

/// [`take_thread`] when tracing is enabled, `None` otherwise — the shape
/// the batch runner stores in each job report.
pub fn take_if_enabled() -> Option<TraceBuffer> {
    if enabled() {
        Some(take_thread())
    } else {
        None
    }
}

/// RAII span: records `Enter` at creation and `Exit` (plus a
/// [`Metric::SpanNanos`] histogram sample) on drop. Inactive (a true
/// no-op) when tracing was disabled at creation.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    enter_nanos: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let nanos = now_nanos();
        push(Event {
            kind: EventKind::Exit,
            name: self.name,
            nanos,
            args: [None, None],
        });
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        telemetry::record(Metric::SpanNanos, nanos.saturating_sub(self.enter_nanos));
    }
}

/// Opens a span with a payload. The single `enabled()` branch is the
/// only cost when tracing is off.
#[inline]
pub fn span_with(name: &'static str, args: Payload) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            enter_nanos: 0,
            active: false,
        };
    }
    let nanos = now_nanos();
    push(Event {
        kind: EventKind::Enter,
        name,
        nanos,
        args,
    });
    let seq = SPAN_SEQ.with(|c| {
        let next = c.get() + 1;
        c.set(next);
        next
    });
    SPAN_STACK.with(|s| s.borrow_mut().push((name, seq)));
    SpanGuard {
        name,
        enter_nanos: nanos,
        active: true,
    }
}

/// Opens a payload-less span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, [None, None])
}

/// Opens a span with one key/value payload.
#[inline]
pub fn span1(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    span_with(name, [Some((key, value)), None])
}

/// Records a point event with a payload.
#[inline]
pub fn event_with(name: &'static str, args: Payload) {
    if !enabled() {
        return;
    }
    let nanos = now_nanos();
    push(Event {
        kind: EventKind::Instant,
        name,
        nanos,
        args,
    });
}

/// Records a payload-less point event.
#[inline]
pub fn event(name: &'static str) {
    event_with(name, [None, None]);
}

/// Records a point event with one key/value payload.
#[inline]
pub fn event1(name: &'static str, key: &'static str, value: u64) {
    event_with(name, [Some((key, value)), None]);
}

fn args_json(args: &Payload) -> JsonValue {
    JsonValue::Object(
        args.iter()
            .flatten()
            .map(|&(k, v)| (k.to_string(), JsonValue::UInt(v)))
            .collect(),
    )
}

/// Renders a harvested buffer as a Chrome trace-event JSON document
/// (loadable in Perfetto / `chrome://tracing`).
///
/// Spans become `"B"`/`"E"` duration events, instants become `"i"`.
/// Exits whose enters were dropped from the ring are **skipped** (no
/// orphaned `"E"`), and any span still open at the end of the buffer is
/// closed at the last timestamp, so the exported event stream is always
/// balanced. Timestamps are microseconds from the job anchor.
pub fn chrome_trace(buffer: &TraceBuffer, process_name: &str) -> JsonValue {
    let mut events: Vec<JsonValue> = Vec::with_capacity(buffer.events.len() + 2);
    events.push(JsonValue::object(vec![
        ("name", JsonValue::str("process_name")),
        ("ph", JsonValue::str("M")),
        ("pid", JsonValue::UInt(1)),
        ("tid", JsonValue::UInt(1)),
        (
            "args",
            JsonValue::object(vec![("name", JsonValue::str(process_name))]),
        ),
    ]));
    let mut stack: Vec<&'static str> = Vec::new();
    let mut last_ts = 0u64;
    for ev in &buffer.events {
        let ts = ev.nanos / 1_000;
        last_ts = last_ts.max(ts);
        let ph = match ev.kind {
            EventKind::Enter => {
                stack.push(ev.name);
                "B"
            }
            EventKind::Exit => {
                // An exit with no live enter means the enter was dropped
                // from the ring — skip it to keep the export balanced.
                if stack.last() != Some(&ev.name) {
                    continue;
                }
                stack.pop();
                "E"
            }
            EventKind::Instant => "i",
        };
        let mut pairs = vec![
            ("name", JsonValue::str(ev.name)),
            ("cat", JsonValue::str("tmfrt")),
            ("ph", JsonValue::str(ph)),
            ("ts", JsonValue::UInt(ts)),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(1)),
        ];
        if ph == "i" {
            pairs.push(("s", JsonValue::str("t")));
        }
        if ph != "E" {
            pairs.push(("args", args_json(&ev.args)));
        }
        events.push(JsonValue::object(pairs));
    }
    // Close any span left open (cannot happen after a clean job, but the
    // export must stay balanced even on partial buffers).
    while let Some(name) = stack.pop() {
        events.push(JsonValue::object(vec![
            ("name", JsonValue::str(name)),
            ("cat", JsonValue::str("tmfrt")),
            ("ph", JsonValue::str("E")),
            ("ts", JsonValue::UInt(last_ts)),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(1)),
        ]));
    }
    JsonValue::object(vec![
        ("traceEvents", JsonValue::Array(events)),
        ("displayTimeUnit", JsonValue::str("ms")),
        ("dropped_events", JsonValue::UInt(buffer.dropped)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests that toggle the global flag or inspect the
    /// thread-local ring: `cargo test` may run them concurrently, and the
    /// enable flag is process-wide.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        set_thread_capacity(DEFAULT_CAPACITY);
        job_start();
        let r = f();
        set_enabled(false);
        set_thread_capacity(DEFAULT_CAPACITY);
        r
    }

    #[test]
    fn spans_nest_and_balance() {
        let buffer = with_tracing(|| {
            let _outer = span1("phi_search", "upper", 7);
            {
                let _probe = span1("phi_probe", "phi", 4);
                event1("augment", "unit", 1);
            }
            drop(_outer);
            take_thread()
        });
        assert_eq!(buffer.dropped, 0);
        let kinds: Vec<(EventKind, &str)> =
            buffer.events.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Enter, "phi_search"),
                (EventKind::Enter, "phi_probe"),
                (EventKind::Instant, "augment"),
                (EventKind::Exit, "phi_probe"),
                (EventKind::Exit, "phi_search"),
            ]
        );
        // Timestamps are monotone.
        for w in buffer.events.windows(2) {
            assert!(w[0].nanos <= w[1].nanos);
        }
        assert_eq!(buffer.events[0].args[0], Some(("upper", 7)));
    }

    #[test]
    fn disabled_records_nothing() {
        // Outside with_tracing the flag is off; record sites are no-ops.
        set_enabled(false);
        job_start();
        let _s = span("never");
        event("nothing");
        drop(_s);
        let buffer = take_thread();
        assert!(buffer.events.is_empty());
        assert_eq!(buffer.dropped, 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_exactly() {
        let buffer = with_tracing(|| {
            set_thread_capacity(1000);
            job_start();
            // 1500 instants: the first 500 must be dropped, one by one.
            for i in 0..1500u64 {
                event1("tick", "i", i);
            }
            take_thread()
        });
        assert_eq!(buffer.dropped, 500);
        assert_eq!(buffer.events.len(), 1000);
        // Oldest-dropped: the survivors are exactly ticks 500..1500, in order.
        for (slot, ev) in buffer.events.iter().enumerate() {
            assert_eq!(ev.args[0], Some(("i", slot as u64 + 500)));
        }
    }

    #[test]
    fn span_pairing_survives_drops() {
        let buffer = with_tracing(|| {
            set_thread_capacity(8);
            job_start();
            // Two full spans, then enough noise to drop both enters (and
            // one exit) out of an 8-slot ring.
            {
                let _a = span("early_a");
            }
            {
                let _b = span("early_b");
            }
            for _ in 0..7 {
                event("noise");
            }
            {
                let _c = span("late");
            }
            take_thread()
        });
        assert!(buffer.dropped > 0);
        // The export must contain no orphaned "E": every E follows its B.
        let doc = chrome_trace(&buffer, "test").render();
        let b_count = doc.matches("\"ph\":\"B\"").count();
        let e_count = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(b_count, e_count, "unbalanced export: {doc}");
        assert_eq!(b_count, 1, "only the late span survived whole: {doc}");
        assert!(doc.contains("\"late\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let buffer = with_tracing(|| {
            let _s = span1("min_cut", "node", 42);
            event("augment");
            drop(_s);
            take_thread()
        });
        let doc = chrome_trace(&buffer, "job1");
        let text = doc.render_pretty();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"B\""));
        assert!(text.contains("\"ph\": \"E\""));
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"node\": 42"));
        assert!(text.contains("\"displayTimeUnit\": \"ms\""));
        assert!(text.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn open_span_is_closed_by_export() {
        // A hand-built buffer with a dangling Enter (harvested mid-span
        // never happens in the runner, but the export must stay balanced).
        let buffer = TraceBuffer {
            events: vec![Event {
                kind: EventKind::Enter,
                name: "open",
                nanos: 10_000,
                args: [None, None],
            }],
            dropped: 0,
        };
        let doc = chrome_trace(&buffer, "x").render();
        assert_eq!(doc.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(doc.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn span_durations_feed_histogram() {
        with_tracing(|| {
            telemetry::reset();
            {
                let _s = span("timed");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let t = telemetry::take();
            let h = &t.hists[Metric::SpanNanos as usize];
            assert_eq!(h.count, 1);
            assert!(h.sum >= 1_000_000, "span shorter than the sleep: {}", h.sum);
        });
    }
}
