//! Heap and RSS accounting: a counting allocator, per-phase memory
//! scopes, and the process peak-RSS probe.
//!
//! The ROADMAP's next structural swings (flat-arena/SoA core, partitioned
//! million-gate mapping) are memory-layout plays; this module gives them
//! gates to land behind. Three layers:
//!
//! * [`CountingAlloc`] — a `GlobalAlloc` wrapper over [`System`] that the
//!   binaries install with `#[global_allocator]`. When the accounting
//!   gate is **off** (the default) every allocation pays exactly one
//!   relaxed atomic load; when on, global and per-thread live/peak bytes
//!   and alloc/free events are counted.
//! * [`MemScope`] — RAII guards placed at the same sites (and under the
//!   same names) as the span tracer's phases (`expand`, `min_cut`,
//!   `frtcheck_sweep`, `apply_retiming`, `sim_step`, `verify`). A scope
//!   attributes wall time, allocation deltas and the within-scope heap
//!   high-water mark to its [`MemPhase`], accumulated into the job's
//!   [`Telemetry`](crate::telemetry::Telemetry) through the usual
//!   snapshot/merge/since protocol — so scoped sweep workers merge their
//!   phase memory back into the job exactly like counters do.
//! * [`peak_rss_kib`] — the `VmHWM` probe from `/proc/self/status`
//!   (previously private to `blifcheck`), plus [`current_rss_kib`].
//!
//! Like `trace`, scope sites nest: a `frtcheck_sweep` scope encloses the
//! `expand` and `min_cut` scopes it triggers, so per-phase numbers are
//! *inclusive* (they attribute to the innermost-opened site
//! independently; sweep totals overlap expand/min-cut totals). Peaks use
//! a save/restore watermark so nested scopes each observe their own
//! high-water without corrupting the enclosing scope's.
//!
//! Per-thread live bytes saturate at zero: a thread that frees memory
//! allocated elsewhere (arena hand-offs between sweep workers) cannot
//! underflow its own ledger.

#![allow(unsafe_code)] // the GlobalAlloc impl is the crate's only unsafe.

use crate::telemetry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Memory phases, named after the span tracer's sites so traces,
/// artifacts and `benchdiff` attribution all speak one vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum MemPhase {
    /// Expanded-circuit construction (`F_v^bound` build).
    Expand = 0,
    /// One max-flow min-cut query (cut search per node).
    MinCut = 1,
    /// One FRTcheck / general-check LabelUpdate sweep.
    LabelSweep = 2,
    /// Applying a retiming (register moves + initial states).
    Retime = 3,
    /// One simulation step of the sequential netlist.
    Sim = 4,
    /// Equivalence verification of a mapped result.
    Verify = 5,
    /// Partition-and-conquer work outside the per-block mapper runs:
    /// condensation, clustering, contracts, extraction, and stitching.
    Partition = 6,
}

/// Number of [`MemPhase`] variants.
pub const NUM_MEM_PHASES: usize = 7;

/// Stable phase names, indexed by `MemPhase as usize` — identical to the
/// corresponding trace span names (JSON keys in the v3 artifact).
pub const MEM_PHASE_NAMES: [&str; NUM_MEM_PHASES] = [
    "expand",
    "min_cut",
    "frtcheck_sweep",
    "apply_retiming",
    "sim_step",
    "verify",
    "partition",
];

impl MemPhase {
    /// The phase with index `i` (`MemPhase as usize`), if in range.
    pub fn from_index(i: usize) -> Option<MemPhase> {
        match i {
            0 => Some(MemPhase::Expand),
            1 => Some(MemPhase::MinCut),
            2 => Some(MemPhase::LabelSweep),
            3 => Some(MemPhase::Retime),
            4 => Some(MemPhase::Sim),
            5 => Some(MemPhase::Verify),
            6 => Some(MemPhase::Partition),
            _ => None,
        }
    }

    /// The stable name (trace span name / JSON key) of this phase.
    pub fn name(self) -> &'static str {
        MEM_PHASE_NAMES[self as usize]
    }
}

/// Accumulated memory activity attributed to one [`MemPhase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemPhaseStats {
    /// Wall time spent inside scopes of this phase, in nanoseconds
    /// (inclusive of nested scopes of other phases).
    pub wall_nanos: u64,
    /// Allocation events inside scopes of this phase.
    pub allocs: u64,
    /// Free events inside scopes of this phase.
    pub frees: u64,
    /// Bytes allocated inside scopes of this phase.
    pub alloc_bytes: u64,
    /// Largest within-scope heap growth (high-water minus bytes live at
    /// scope entry) observed by any single scope of this phase.
    pub peak_bytes: u64,
}

impl MemPhaseStats {
    /// A zeroed accumulation (`const` form of `Default`).
    pub const fn zeroed() -> MemPhaseStats {
        MemPhaseStats {
            wall_nanos: 0,
            allocs: 0,
            frees: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Adds another accumulation into this one (peaks take the max).
    pub fn merge(&mut self, other: &MemPhaseStats) {
        self.wall_nanos = self.wall_nanos.wrapping_add(other.wall_nanos);
        self.allocs = self.allocs.wrapping_add(other.allocs);
        self.frees = self.frees.wrapping_add(other.frees);
        self.alloc_bytes = self.alloc_bytes.wrapping_add(other.alloc_bytes);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }

    /// This accumulation minus an earlier one (saturating). The peak is
    /// a running max, so the delta is the current peak when it grew
    /// during the interval and zero otherwise.
    pub fn since(&self, earlier: &MemPhaseStats) -> MemPhaseStats {
        MemPhaseStats {
            wall_nanos: self.wall_nanos.saturating_sub(earlier.wall_nanos),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            peak_bytes: if self.peak_bytes > earlier.peak_bytes {
                self.peak_bytes
            } else {
                0
            },
        }
    }

    /// True when every field is zero (the phase never ran, or the
    /// accounting gate was off).
    pub fn is_empty(&self) -> bool {
        *self == MemPhaseStats::default()
    }
}

/// Per-job memory telemetry: phase attributions plus the job thread's
/// own allocation ledger, carried inside
/// [`Telemetry`](crate::telemetry::Telemetry) through snapshot/merge/
/// since like counters and phase timers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Per-phase attribution, indexed by `MemPhase as usize`.
    pub phases: [MemPhaseStats; NUM_MEM_PHASES],
    /// Allocation events on the job's threads since the job started.
    pub allocs: u64,
    /// Free events on the job's threads since the job started.
    pub frees: u64,
    /// Bytes allocated on the job's threads since the job started.
    pub alloc_bytes: u64,
    /// Bytes freed on the job's threads since the job started.
    pub free_bytes: u64,
    /// Heap high-water mark (bytes live on a single thread) observed
    /// since the job started; merged across threads as a max.
    pub peak_bytes: u64,
}

impl MemStats {
    /// A zeroed snapshot (`const` form of `Default`).
    pub const fn new() -> MemStats {
        MemStats {
            phases: [MemPhaseStats::zeroed(); NUM_MEM_PHASES],
            allocs: 0,
            frees: 0,
            alloc_bytes: 0,
            free_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Adds another snapshot into this one (peaks take the max).
    pub fn merge(&mut self, other: &MemStats) {
        for i in 0..NUM_MEM_PHASES {
            self.phases[i].merge(&other.phases[i]);
        }
        self.allocs = self.allocs.wrapping_add(other.allocs);
        self.frees = self.frees.wrapping_add(other.frees);
        self.alloc_bytes = self.alloc_bytes.wrapping_add(other.alloc_bytes);
        self.free_bytes = self.free_bytes.wrapping_add(other.free_bytes);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }

    /// This snapshot minus an earlier one (saturating; see
    /// [`MemPhaseStats::since`] for peak semantics).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        let mut out = MemStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            free_bytes: self.free_bytes.saturating_sub(earlier.free_bytes),
            peak_bytes: if self.peak_bytes > earlier.peak_bytes {
                self.peak_bytes
            } else {
                0
            },
            ..MemStats::default()
        };
        for i in 0..NUM_MEM_PHASES {
            out.phases[i] = self.phases[i].since(&earlier.phases[i]);
        }
        out
    }

    /// Stats for one phase.
    pub fn phase(&self, p: MemPhase) -> &MemPhaseStats {
        &self.phases[p as usize]
    }

    /// True when nothing was recorded (accounting off, or no activity).
    pub fn is_empty(&self) -> bool {
        *self == MemStats::default()
    }
}

// ---------------------------------------------------------------------------
// Accounting gate + global ledger.

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes every test that toggles the process-wide gate — `ENABLED`
/// is a global, so such tests cannot overlap (also used from `pool`'s
/// scoped-worker accounting test).
#[cfg(test)]
pub(crate) static TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Process-wide monotone ledgers; live = alloc − free (saturating),
/// computed on read so the hot path never needs a CAS loop.
static G_ALLOCS: AtomicU64 = AtomicU64::new(0);
static G_FREES: AtomicU64 = AtomicU64::new(0);
static G_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_FREE_BYTES: AtomicU64 = AtomicU64::new(0);
static G_PEAK: AtomicU64 = AtomicU64::new(0);

/// Turns memory accounting on or off process-wide. Off (the default),
/// the installed [`CountingAlloc`] adds exactly one relaxed atomic load
/// per allocator call and [`scope`] returns inert guards.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// True when memory accounting is enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A point-in-time view of the process-wide allocation ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Allocation events since accounting was enabled.
    pub allocs: u64,
    /// Free events since accounting was enabled.
    pub frees: u64,
    /// Bytes allocated since accounting was enabled.
    pub alloc_bytes: u64,
    /// Bytes freed since accounting was enabled.
    pub free_bytes: u64,
    /// Bytes currently live (allocated − freed, saturating).
    pub live_bytes: u64,
    /// Highest live-bytes value observed (approximate under heavy
    /// cross-thread contention; never resets).
    pub peak_bytes: u64,
}

/// The process-wide ledger right now. All zeros until accounting is
/// enabled *and* a [`CountingAlloc`] is installed.
pub fn global_stats() -> GlobalStats {
    let alloc_bytes = G_ALLOC_BYTES.load(Ordering::Relaxed);
    let free_bytes = G_FREE_BYTES.load(Ordering::Relaxed);
    GlobalStats {
        allocs: G_ALLOCS.load(Ordering::Relaxed),
        frees: G_FREES.load(Ordering::Relaxed),
        alloc_bytes,
        free_bytes,
        live_bytes: alloc_bytes.saturating_sub(free_bytes),
        peak_bytes: G_PEAK.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Per-thread ledger.

/// Monotone per-thread totals (events and bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadTotals {
    /// Allocation events on this thread.
    pub allocs: u64,
    /// Free events on this thread.
    pub frees: u64,
    /// Bytes allocated on this thread.
    pub alloc_bytes: u64,
    /// Bytes freed on this thread.
    pub free_bytes: u64,
}

impl ThreadTotals {
    fn since(&self, earlier: &ThreadTotals) -> ThreadTotals {
        ThreadTotals {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            free_bytes: self.free_bytes.saturating_sub(earlier.free_bytes),
        }
    }
}

struct ThreadCells {
    allocs: Cell<u64>,
    frees: Cell<u64>,
    alloc_bytes: Cell<u64>,
    free_bytes: Cell<u64>,
    live: Cell<u64>,
    peak: Cell<u64>,
    /// Baseline for the current job ([`job_mark`]).
    base: Cell<ThreadTotals>,
}

thread_local! {
    static LOCAL: ThreadCells = const {
        ThreadCells {
            allocs: Cell::new(0),
            frees: Cell::new(0),
            alloc_bytes: Cell::new(0),
            free_bytes: Cell::new(0),
            live: Cell::new(0),
            peak: Cell::new(0),
            base: Cell::new(ThreadTotals {
                allocs: 0,
                frees: 0,
                alloc_bytes: 0,
                free_bytes: 0,
            }),
        }
    };
}

/// Records one allocation of `bytes` into the ledgers. Called by the
/// installed [`CountingAlloc`] when accounting is enabled; public so
/// tests (whose harness does not install the allocator) can drive the
/// counting machinery directly. Never allocates.
#[inline]
pub fn on_alloc(bytes: u64) {
    let a = G_ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let f = G_FREE_BYTES.load(Ordering::Relaxed);
    G_PEAK.fetch_max(a.saturating_sub(f), Ordering::Relaxed);
    G_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // try_with: the allocator may run during TLS teardown, where the
    // per-thread ledger is gone — drop the sample rather than abort.
    let _ = LOCAL.try_with(|t| {
        t.allocs.set(t.allocs.get().wrapping_add(1));
        t.alloc_bytes.set(t.alloc_bytes.get().wrapping_add(bytes));
        let live = t.live.get().wrapping_add(bytes);
        t.live.set(live);
        if live > t.peak.get() {
            t.peak.set(live);
        }
    });
}

/// Records one free of `bytes` into the ledgers (see [`on_alloc`]).
/// Per-thread live bytes saturate at zero, so freeing memory another
/// thread allocated cannot underflow.
#[inline]
pub fn on_dealloc(bytes: u64) {
    G_FREE_BYTES.fetch_add(bytes, Ordering::Relaxed);
    G_FREES.fetch_add(1, Ordering::Relaxed);
    let _ = LOCAL.try_with(|t| {
        t.frees.set(t.frees.get().wrapping_add(1));
        t.free_bytes.set(t.free_bytes.get().wrapping_add(bytes));
        t.live.set(t.live.get().saturating_sub(bytes));
    });
}

/// Monotone totals for the current thread.
pub fn thread_totals() -> ThreadTotals {
    LOCAL.with(|t| ThreadTotals {
        allocs: t.allocs.get(),
        frees: t.frees.get(),
        alloc_bytes: t.alloc_bytes.get(),
        free_bytes: t.free_bytes.get(),
    })
}

/// Bytes currently live on this thread's ledger.
pub fn thread_live() -> u64 {
    LOCAL.with(|t| t.live.get())
}

/// This thread's heap high-water mark since the last [`job_mark`] (or
/// thread start).
pub fn thread_peak() -> u64 {
    LOCAL.with(|t| t.peak.get())
}

/// Job-level deltas for this thread since the last [`job_mark`]: the
/// monotone totals minus their baseline, plus the current peak.
pub fn job_delta() -> (ThreadTotals, u64) {
    LOCAL.with(|t| {
        let now = ThreadTotals {
            allocs: t.allocs.get(),
            frees: t.frees.get(),
            alloc_bytes: t.alloc_bytes.get(),
            free_bytes: t.free_bytes.get(),
        };
        (now.since(&t.base.get()), t.peak.get())
    })
}

/// Marks a job boundary on this thread: future [`job_delta`]s count from
/// here, and the thread peak restarts from the bytes currently live.
pub fn job_mark() {
    LOCAL.with(|t| {
        t.base.set(ThreadTotals {
            allocs: t.allocs.get(),
            frees: t.frees.get(),
            alloc_bytes: t.alloc_bytes.get(),
            free_bytes: t.free_bytes.get(),
        });
        t.peak.set(t.live.get());
    });
}

// ---------------------------------------------------------------------------
// Phase scopes.

/// RAII guard from [`scope`]: on drop, attributes the wall time,
/// allocation deltas and within-scope heap high-water to its phase in
/// the current thread's telemetry. Inert when accounting is disabled.
#[derive(Debug)]
pub struct MemScope {
    inner: Option<ScopeInner>,
}

#[derive(Debug)]
struct ScopeInner {
    phase: MemPhase,
    start: Instant,
    entry: ThreadTotals,
    entry_live: u64,
    /// The thread peak at entry; the scope lowers the watermark to its
    /// entry live bytes to observe its own high-water, and restores
    /// `max(saved, observed)` on drop so enclosing scopes stay correct.
    saved_peak: u64,
}

/// Opens a memory scope attributing activity until drop to `phase`.
/// One relaxed atomic load when accounting is disabled.
#[inline]
pub fn scope(phase: MemPhase) -> MemScope {
    if !enabled() {
        return MemScope { inner: None };
    }
    let (entry, entry_live, saved_peak) = LOCAL.with(|t| {
        let entry = ThreadTotals {
            allocs: t.allocs.get(),
            frees: t.frees.get(),
            alloc_bytes: t.alloc_bytes.get(),
            free_bytes: t.free_bytes.get(),
        };
        let live = t.live.get();
        let saved = t.peak.get();
        t.peak.set(live);
        (entry, live, saved)
    });
    MemScope {
        inner: Some(ScopeInner {
            phase,
            start: Instant::now(),
            entry,
            entry_live,
            saved_peak,
        }),
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let wall_nanos = inner.start.elapsed().as_nanos() as u64;
        let (delta, scope_peak) = LOCAL.with(|t| {
            let now = ThreadTotals {
                allocs: t.allocs.get(),
                frees: t.frees.get(),
                alloc_bytes: t.alloc_bytes.get(),
                free_bytes: t.free_bytes.get(),
            };
            let observed = t.peak.get();
            t.peak.set(observed.max(inner.saved_peak));
            (now.since(&inner.entry), observed)
        });
        let stats = MemPhaseStats {
            wall_nanos,
            allocs: delta.allocs,
            frees: delta.frees,
            alloc_bytes: delta.alloc_bytes,
            peak_bytes: scope_peak.saturating_sub(inner.entry_live),
        };
        telemetry::mem_phase_add(inner.phase, &stats, thread_peak());
    }
}

// ---------------------------------------------------------------------------
// The allocator.

/// A `GlobalAlloc` wrapper over [`System`] feeding [`on_alloc`] /
/// [`on_dealloc`] when accounting is enabled. Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: engine::mem::CountingAlloc = engine::mem::CountingAlloc::new();
/// ```
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// The wrapper (stateless; all ledgers are module statics).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

// SAFETY: every method delegates to `System`, which upholds the
// GlobalAlloc contract; the accounting hooks never allocate, never
// unwind across the allocator boundary (they are panic-free arithmetic
// on atomics and Cells), and do not touch the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && enabled() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && enabled() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if enabled() {
            on_dealloc(layout.size() as u64);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && enabled() {
            // One alloc event for the new block, one free for the old:
            // a grow-in-place still retires the old extent logically.
            on_alloc(new_size as u64);
            on_dealloc(layout.size() as u64);
        }
        p
    }
}

// ---------------------------------------------------------------------------
// RSS probes.

fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb = rest.trim().trim_end_matches("kB").trim();
            return kb.parse().ok();
        }
    }
    None
}

/// Peak resident set size in KiB (`VmHWM` from `/proc/self/status`);
/// `None` off Linux or when the field is absent.
pub fn peak_rss_kib() -> Option<u64> {
    proc_status_kib("VmHWM:")
}

/// Current resident set size in KiB (`VmRSS` from `/proc/self/status`);
/// `None` off Linux or when the field is absent.
pub fn current_rss_kib() -> Option<u64> {
    proc_status_kib("VmRSS:")
}

/// Peak resident set size in bytes (see [`peak_rss_kib`]).
pub fn peak_rss() -> Option<u64> {
    peak_rss_kib().map(|k| k * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_GATE as GATE;

    /// Serializes tests that toggle the process-wide gate.
    fn with_gate<R>(f: impl FnOnce() -> R) -> R {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        telemetry::reset();
        job_mark();
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn gate_off_scopes_are_inert_and_hooks_unused() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        telemetry::reset();
        job_mark();
        let before = thread_totals();
        {
            let _s = scope(MemPhase::Expand);
            // The allocator hooks are behind `enabled()`; with the gate
            // off nothing in this block records anything.
            let v: Vec<u64> = (0..64).collect();
            assert_eq!(v.len(), 64);
        }
        assert_eq!(thread_totals(), before);
        let t = telemetry::snapshot();
        assert!(t.mem.is_empty(), "gate off must leave MemStats zeroed");
    }

    #[test]
    fn counting_tracks_live_and_peak() {
        with_gate(|| {
            let t0 = thread_totals();
            on_alloc(1000);
            on_alloc(500);
            on_dealloc(300);
            let t1 = thread_totals();
            assert_eq!(t1.allocs - t0.allocs, 2);
            assert_eq!(t1.frees - t0.frees, 1);
            assert_eq!(t1.alloc_bytes - t0.alloc_bytes, 1500);
            assert_eq!(t1.free_bytes - t0.free_bytes, 300);
            let g = global_stats();
            assert!(g.peak_bytes >= 1500);
            assert!(g.alloc_bytes >= 1500);
        });
    }

    #[test]
    fn dealloc_without_alloc_saturates() {
        with_gate(|| {
            // Freeing bytes this thread never allocated (cross-thread
            // hand-off) must clamp live at zero, not wrap to u64::MAX.
            let live0 = thread_live();
            on_dealloc(u64::MAX / 2);
            assert!(thread_live() <= live0);
            on_alloc(64);
            assert!(thread_peak() >= thread_live());
        });
    }

    #[test]
    fn scope_attributes_phase_delta_and_peak() {
        with_gate(|| {
            {
                let _s = scope(MemPhase::MinCut);
                on_alloc(4096);
                on_alloc(4096);
                on_dealloc(4096);
            }
            let t = telemetry::snapshot();
            let p = t.mem.phase(MemPhase::MinCut);
            assert_eq!(p.allocs, 2);
            assert_eq!(p.frees, 1);
            assert_eq!(p.alloc_bytes, 8192);
            assert_eq!(p.peak_bytes, 8192);
            assert!(p.wall_nanos > 0);
            assert!(t.mem.phase(MemPhase::Expand).is_empty());
        });
    }

    #[test]
    fn nested_scopes_restore_enclosing_watermark() {
        with_gate(|| {
            {
                let _outer = scope(MemPhase::LabelSweep);
                on_alloc(10_000);
                {
                    let _inner = scope(MemPhase::MinCut);
                    on_alloc(100);
                    on_dealloc(100);
                }
                on_dealloc(10_000);
            }
            let t = telemetry::snapshot();
            // Inner observed only its own 100-byte bump…
            assert_eq!(t.mem.phase(MemPhase::MinCut).peak_bytes, 100);
            // …while the outer (inclusive) saw the 10k base plus the
            // inner's 100 on top: the restore must not lose either.
            assert_eq!(t.mem.phase(MemPhase::LabelSweep).peak_bytes, 10_100);
            assert_eq!(t.mem.phase(MemPhase::LabelSweep).allocs, 2);
        });
    }

    #[test]
    fn job_mark_restarts_deltas_and_peak() {
        with_gate(|| {
            on_alloc(2048);
            job_mark();
            let (d, _) = job_delta();
            assert_eq!(d.allocs, 0);
            assert_eq!(d.alloc_bytes, 0);
            on_alloc(1);
            let (d, peak) = job_delta();
            assert_eq!(d.allocs, 1);
            assert_eq!(d.alloc_bytes, 1);
            assert!(peak >= thread_live());
            on_dealloc(2049);
        });
    }

    #[test]
    fn merge_and_since_roundtrip() {
        let mut a = MemStats::default();
        a.phases[0] = MemPhaseStats {
            wall_nanos: 10,
            allocs: 2,
            frees: 1,
            alloc_bytes: 100,
            peak_bytes: 80,
        };
        a.allocs = 2;
        a.peak_bytes = 80;
        let mut b = MemStats::default();
        b.phases[0] = MemPhaseStats {
            wall_nanos: 5,
            allocs: 1,
            frees: 0,
            alloc_bytes: 50,
            peak_bytes: 120,
        };
        b.allocs = 1;
        b.peak_bytes = 120;
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.phases[0].wall_nanos, 15);
        assert_eq!(m.phases[0].allocs, 3);
        assert_eq!(m.phases[0].peak_bytes, 120);
        assert_eq!(m.peak_bytes, 120);
        let d = m.since(&b);
        assert_eq!(d.phases[0].allocs, 2);
        // Peak did not grow past `b`'s, so the interval reports zero…
        assert_eq!(b.since(&m).phases[0].peak_bytes, 0);
        // …and a grown peak reports its absolute value.
        assert_eq!(d.phases[0].peak_bytes, 0);
        assert_eq!(m.since(&a).phases[0].peak_bytes, 120);
    }

    #[test]
    fn phase_names_cover_variants() {
        assert_eq!(MEM_PHASE_NAMES.len(), NUM_MEM_PHASES);
        for (i, &name) in MEM_PHASE_NAMES.iter().enumerate() {
            let p = MemPhase::from_index(i).expect("index in range");
            assert_eq!(p as usize, i);
            assert_eq!(p.name(), name);
        }
        assert_eq!(MemPhase::from_index(NUM_MEM_PHASES), None);
        let unique: std::collections::HashSet<&str> = MEM_PHASE_NAMES.iter().copied().collect();
        assert_eq!(unique.len(), NUM_MEM_PHASES);
    }

    #[test]
    fn rss_probe_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_kib().expect("VmHWM present on Linux");
            assert!(peak > 0);
            assert_eq!(peak_rss(), Some(peak * 1024));
            assert!(current_rss_kib().expect("VmRSS present") > 0);
        }
    }

    #[test]
    fn counting_allocator_delegates() {
        // Not installed as the global allocator here; exercise the
        // wrapper directly to prove delegation + accounting wiring.
        with_gate(|| {
            let a = CountingAlloc::new();
            let layout = Layout::from_size_align(256, 8).expect("layout");
            let t0 = thread_totals();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                let p2 = a.realloc(p, layout, 512);
                assert!(!p2.is_null());
                let grown = Layout::from_size_align(512, 8).expect("layout");
                a.dealloc(p2, grown);
                let z = a.alloc_zeroed(layout);
                assert!(!z.is_null());
                assert_eq!(std::slice::from_raw_parts(z, 256).iter().sum::<u8>(), 0);
                a.dealloc(z, layout);
            }
            let t1 = thread_totals().since(&t0);
            assert_eq!(t1.allocs, 3); // alloc + realloc + alloc_zeroed
            assert_eq!(t1.frees, 3); // realloc retire + two deallocs
            assert_eq!(t1.alloc_bytes, 256 + 512 + 256);
            assert_eq!(t1.free_bytes, 256 + 512 + 256);
        });
    }
}
