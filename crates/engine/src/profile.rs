//! Offline Chrome-trace analysis for `tmfrt profile`.
//!
//! Consumes the trace-event JSON documents [`crate::trace::chrome_trace`]
//! emits (`tmfrt map --trace-out`, `table1 --trace-dir`, the serve
//! `/jobs/<id>/trace` endpoint) and turns them into:
//!
//! * a **self/total per-span report** ([`Profile::render_report`]) —
//!   for every span name, how often it ran, the inclusive wall time and
//!   the self time (inclusive minus direct children), sorted by self;
//! * **folded stacks** ([`Profile::render_folded`]) — one
//!   `root;child;leaf <self_µs>` line per observed stack, the input
//!   format of `flamegraph.pl` and speedscope;
//! * a **differential** ([`diff`] / [`render_diff`]) — phase-attributed
//!   comparison of two runs naming the spans whose self time moved most.
//!
//! Parsing is strict: unbalanced enters/exits, timestamps running
//! backwards inside a stack, or malformed events are hard errors, so CI
//! can gate on `tmfrt profile` exiting zero.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// Aggregated timings for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed instances of the span.
    pub count: u64,
    /// Inclusive wall time (µs) summed over instances. Recursive
    /// re-entries of the same name each contribute their full duration.
    pub total_us: u64,
    /// Self time (µs): inclusive time minus direct children.
    pub self_us: u64,
}

/// An accumulating profile over one or more trace documents.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-span aggregates, keyed by span name (sorted: `BTreeMap` keeps
    /// every rendering deterministic).
    pub spans: BTreeMap<String, SpanAgg>,
    /// Folded stacks: `a;b;c` → accumulated self µs of `c` under that
    /// stack.
    pub folded: BTreeMap<String, u64>,
    /// Trace documents folded in.
    pub traces: u64,
    /// Duration events consumed (`B` + `E`).
    pub events: u64,
    /// Instant events seen (counted, not timed).
    pub instants: u64,
    /// Ring-buffer drops reported by the producing runs.
    pub dropped: u64,
}

/// One frame on the reconstruction stack.
struct Frame {
    name: String,
    start_us: u64,
    child_us: u64,
    /// `a;b;c` path including this frame.
    path: String,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Total self time across all spans (µs) — the instrumented wall
    /// time of the profile.
    pub fn total_self_us(&self) -> u64 {
        self.spans.values().map(|s| s.self_us).sum()
    }

    /// Folds one parsed Chrome-trace document into the profile.
    ///
    /// Accepts the `{"traceEvents": [...]}` object form the repo's
    /// tools emit, or a bare event array. Errors on malformed or
    /// unbalanced event streams.
    pub fn add_trace(&mut self, doc: &JsonValue) -> Result<(), String> {
        let events = match doc.get("traceEvents") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| "traceEvents is not an array".to_string())?,
            None => doc
                .as_array()
                .ok_or_else(|| "expected a traceEvents object or event array".to_string())?,
        };
        if let Some(d) = doc.get("dropped_events").and_then(JsonValue::as_u64) {
            self.dropped += d;
        }
        // Events carry (pid, tid); reconstruct one stack per pair.
        let mut stacks: BTreeMap<(u64, u64), Vec<Frame>> = BTreeMap::new();
        for (i, ev) in events.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
            match ph {
                "M" => continue, // metadata
                "i" | "I" => {
                    self.instants += 1;
                    continue;
                }
                "B" | "E" => {}
                other => return Err(format!("event {i}: unsupported phase {other:?}")),
            }
            let name = ev
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("event {i}: missing \"name\""))?;
            let ts = ev
                .get("ts")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event {i}: missing or negative \"ts\""))?;
            let pid = ev.get("pid").and_then(JsonValue::as_u64).unwrap_or(0);
            let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
            let stack = stacks.entry((pid, tid)).or_default();
            self.events += 1;
            if ph == "B" {
                let path = match stack.last() {
                    Some(top) => format!("{};{name}", top.path),
                    None => name.to_string(),
                };
                stack.push(Frame {
                    name: name.to_string(),
                    start_us: ts,
                    child_us: 0,
                    path,
                });
            } else {
                let frame = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: exit {name:?} with empty stack"))?;
                if frame.name != name {
                    return Err(format!(
                        "event {i}: exit {name:?} does not match open span {:?}",
                        frame.name
                    ));
                }
                let total = ts
                    .checked_sub(frame.start_us)
                    .ok_or_else(|| format!("event {i}: span {name:?} ends before it starts"))?;
                let self_us = total.saturating_sub(frame.child_us);
                let agg = self.spans.entry(frame.name).or_default();
                agg.count += 1;
                agg.total_us += total;
                agg.self_us += self_us;
                *self.folded.entry(frame.path).or_insert(0) += self_us;
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += total;
                }
            }
        }
        for (key, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!(
                    "unbalanced trace: span {:?} still open on pid/tid {key:?}",
                    stack.last().expect("non-empty").name
                ));
            }
        }
        self.traces += 1;
        Ok(())
    }

    /// Renders the self/total table: spans sorted by self time
    /// (descending, then by name), with a share-of-instrumented-time
    /// column and a trailer of totals.
    pub fn render_report(&self) -> String {
        let mut rows: Vec<(&String, &SpanAgg)> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then_with(|| a.0.cmp(b.0)));
        let total_self = self.total_self_us().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>10} {:>14} {:>14} {:>7}\n",
            "span", "count", "total_ms", "self_ms", "self%"
        ));
        for (name, agg) in rows {
            out.push_str(&format!(
                "{:<20} {:>10} {:>14.3} {:>14.3} {:>6.1}%\n",
                name,
                agg.count,
                agg.total_us as f64 / 1e3,
                agg.self_us as f64 / 1e3,
                agg.self_us as f64 * 100.0 / total_self as f64,
            ));
        }
        out.push_str(&format!(
            "traces={} events={} instants={} dropped={} instrumented_ms={:.3}\n",
            self.traces,
            self.events,
            self.instants,
            self.dropped,
            self.total_self_us() as f64 / 1e3,
        ));
        out
    }

    /// Renders folded stacks (`stack;path self_µs` per line), the input
    /// format of `flamegraph.pl` / speedscope. Lines are
    /// lexicographically sorted, so output is deterministic.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (path, us) in &self.folded {
            out.push_str(&format!("{path} {us}\n"));
        }
        out
    }
}

/// One span's movement between two profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Self µs in the baseline / candidate.
    pub base_self_us: u64,
    /// Self µs in the candidate.
    pub cand_self_us: u64,
    /// Inclusive µs in the baseline.
    pub base_total_us: u64,
    /// Inclusive µs in the candidate.
    pub cand_total_us: u64,
    /// Candidate minus baseline self time (µs, signed).
    pub delta_self_us: i64,
}

/// Compares two profiles span-by-span. Rows cover the union of span
/// names, sorted by descending self-time regression (then name), so the
/// first row *is* the attribution.
pub fn diff(base: &Profile, cand: &Profile) -> Vec<DiffRow> {
    let mut names: Vec<&String> = base.spans.keys().chain(cand.spans.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows: Vec<DiffRow> = names
        .into_iter()
        .map(|name| {
            let b = base.spans.get(name).copied().unwrap_or_default();
            let c = cand.spans.get(name).copied().unwrap_or_default();
            DiffRow {
                name: name.clone(),
                base_self_us: b.self_us,
                cand_self_us: c.self_us,
                base_total_us: b.total_us,
                cand_total_us: c.total_us,
                delta_self_us: c.self_us as i64 - b.self_us as i64,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta_self_us
            .cmp(&a.delta_self_us)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Renders a phase-attributed differential: per-span self/total deltas
/// plus a `top regression:` trailer naming the worst offender (or
/// `no self-time regression` when nothing got slower).
pub fn render_diff(rows: &[DiffRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>12} {:>12} {:>12} {:>8}\n",
        "span", "base_self_ms", "cand_self_ms", "delta_ms", "delta%"
    ));
    for r in rows {
        let pct = if r.base_self_us > 0 {
            r.delta_self_us as f64 * 100.0 / r.base_self_us as f64
        } else if r.delta_self_us != 0 {
            f64::INFINITY
        } else {
            0.0
        };
        let pct_str = if pct.is_infinite() {
            "new".to_string()
        } else {
            format!("{pct:+.1}%")
        };
        out.push_str(&format!(
            "{:<20} {:>12.3} {:>12.3} {:>+12.3} {:>8}\n",
            r.name,
            r.base_self_us as f64 / 1e3,
            r.cand_self_us as f64 / 1e3,
            r.delta_self_us as f64 / 1e3,
            pct_str,
        ));
    }
    match rows.first() {
        Some(top) if top.delta_self_us > 0 => {
            let pct = if top.base_self_us > 0 {
                format!(
                    " ({:+.1}%)",
                    top.delta_self_us as f64 * 100.0 / top.base_self_us as f64
                )
            } else {
                String::new()
            };
            out.push_str(&format!(
                "top regression: {} self {:.3}ms -> {:.3}ms{}\n",
                top.name,
                top.base_self_us as f64 / 1e3,
                top.cand_self_us as f64 / 1e3,
                pct,
            ));
        }
        _ => out.push_str("no self-time regression\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ph: &str, name: &str, ts: u64) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::str(name)),
            ("cat", JsonValue::str("tmfrt")),
            ("ph", JsonValue::str(ph)),
            ("ts", JsonValue::UInt(ts)),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(1)),
        ])
    }

    fn doc(events: Vec<JsonValue>) -> JsonValue {
        JsonValue::object(vec![
            ("traceEvents", JsonValue::Array(events)),
            ("displayTimeUnit", JsonValue::str("ms")),
            ("dropped_events", JsonValue::UInt(0)),
        ])
    }

    /// phi_search[0..100] wrapping frtcheck_sweep[10..10+sweep] wrapping
    /// min_cut[20..20+cut].
    fn nested(sweep_end: u64, cut_end: u64) -> JsonValue {
        doc(vec![
            ev("B", "phi_search", 0),
            ev("B", "frtcheck_sweep", 10),
            ev("B", "min_cut", 20),
            ev("E", "min_cut", cut_end),
            ev("E", "frtcheck_sweep", sweep_end),
            ev("E", "phi_search", sweep_end + 40),
        ])
    }

    #[test]
    fn self_total_aggregation() {
        let mut p = Profile::new();
        p.add_trace(&nested(60, 40)).expect("valid trace");
        let sweep = p.spans.get("frtcheck_sweep").expect("sweep present");
        assert_eq!(sweep.total_us, 50);
        assert_eq!(sweep.self_us, 30); // 50 minus min_cut's 20
        let cut = p.spans.get("min_cut").expect("cut present");
        assert_eq!(cut.total_us, 20);
        assert_eq!(cut.self_us, 20);
        let phi = p.spans.get("phi_search").expect("phi present");
        assert_eq!(phi.total_us, 100);
        assert_eq!(phi.self_us, 50);
        assert_eq!(p.total_self_us(), 100);
        let report = p.render_report();
        assert!(report.contains("frtcheck_sweep"));
        assert!(report.starts_with("span"));
    }

    #[test]
    fn folded_stacks_accumulate_self_time() {
        let mut p = Profile::new();
        p.add_trace(&nested(60, 40)).expect("valid trace");
        p.add_trace(&nested(60, 40)).expect("valid trace");
        let folded = p.render_folded();
        assert!(folded.contains("phi_search;frtcheck_sweep;min_cut 40"));
        assert!(folded.contains("phi_search;frtcheck_sweep 60"));
        assert!(folded.contains("phi_search 100"));
        assert_eq!(p.traces, 2);
    }

    #[test]
    fn unbalanced_and_malformed_are_errors() {
        let mut p = Profile::new();
        let open = doc(vec![ev("B", "phi_search", 0)]);
        assert!(p.add_trace(&open).unwrap_err().contains("still open"));
        let orphan = doc(vec![ev("E", "min_cut", 5)]);
        assert!(p.add_trace(&orphan).unwrap_err().contains("empty stack"));
        let crossed = doc(vec![
            ev("B", "a", 0),
            ev("B", "b", 1),
            ev("E", "a", 2),
            ev("E", "b", 3),
        ]);
        assert!(p
            .add_trace(&crossed)
            .unwrap_err()
            .contains("does not match"));
        let backwards = doc(vec![ev("B", "a", 10), ev("E", "a", 5)]);
        assert!(p
            .add_trace(&backwards)
            .unwrap_err()
            .contains("ends before it starts"));
        assert!(p
            .add_trace(&JsonValue::str("nope"))
            .unwrap_err()
            .contains("expected"));
    }

    #[test]
    fn instants_and_metadata_are_tolerated() {
        let mut p = Profile::new();
        let mut events = vec![JsonValue::object(vec![
            ("name", JsonValue::str("process_name")),
            ("ph", JsonValue::str("M")),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(1)),
        ])];
        events.push(ev("B", "expand", 0));
        events.push(ev("i", "cut_found", 3));
        events.push(ev("E", "expand", 7));
        p.add_trace(&doc(events)).expect("valid trace");
        assert_eq!(p.instants, 1);
        assert_eq!(p.spans.get("expand").expect("expand").total_us, 7);
    }

    #[test]
    fn diff_attributes_inflated_sweep() {
        // Baseline vs candidate with the LabelUpdate sweep self time
        // inflated 2× — attribution must name frtcheck_sweep.
        let mut base = Profile::new();
        base.add_trace(&nested(60, 40)).expect("valid");
        let mut cand = Profile::new();
        cand.add_trace(&nested(90, 40)).expect("valid"); // sweep self 30 → 60
        let rows = diff(&base, &cand);
        assert_eq!(rows[0].name, "frtcheck_sweep");
        assert_eq!(rows[0].delta_self_us, 30);
        let rendered = render_diff(&rows);
        assert!(rendered.contains("top regression: frtcheck_sweep"));
        // The other direction reports no regression on top.
        let rows = diff(&cand, &base);
        assert!(render_diff(&rows).contains("no self-time regression"));
    }

    #[test]
    fn dropped_events_counted() {
        let mut p = Profile::new();
        let d = JsonValue::object(vec![
            ("traceEvents", JsonValue::Array(vec![])),
            ("dropped_events", JsonValue::UInt(7)),
        ]);
        p.add_trace(&d).expect("valid");
        assert_eq!(p.dropped, 7);
    }
}
