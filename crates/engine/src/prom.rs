//! Prometheus text-exposition writer and line-format validator
//! (std-only).
//!
//! `tmfrt batch --metrics-out metrics.prom` summarises a whole batch —
//! job outcomes, phase timers, counters and histogram quantiles — in the
//! Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE`
//! comment lines followed by `name{label="value"} number` samples. The
//! writer keeps families in emission order (deterministic output, same
//! discipline as [`crate::json`]); [`validate_exposition`] is a strict
//! character-level line check used by the tests and the CI smoke job.

use crate::batch::JobReport;
use crate::hist::HIST_NAMES;
use crate::mem::MEM_PHASE_NAMES;
use crate::telemetry::{Telemetry, COUNTER_NAMES, PHASE_NAMES};
use std::fmt::Write as _;

/// Metric family kinds the writer supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// An in-order Prometheus text-exposition builder.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Starts a metric family: emits the `# HELP` and `# TYPE` lines.
    /// `name` must be a valid metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
        debug_assert!(is_metric_name(name), "bad metric name: {name}");
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    /// Emits one sample line. `labels` are `(key, value)` pairs; values
    /// are escaped per the exposition format.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        debug_assert!(is_metric_name(name), "bad metric name: {name}");
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                debug_assert!(is_label_name(k), "bad label name: {k}");
                if i > 0 {
                    self.out.push(',');
                }
                let v = v
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n");
                let _ = write!(self.out, "{k}=\"{v}\"");
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", render_value(value));
    }

    /// Emits an integer sample (rendered without a decimal point).
    pub fn sample_u64(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample(name, labels, value as f64);
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn render_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Job status keywords in the order the `tmfrt_jobs` family reports
/// them (the [`crate::batch::JobOutcome::status`] vocabulary).
pub const JOB_STATUSES: [&str; 4] = ["ok", "failed", "panicked", "deadline"];

/// Writes the telemetry-derived families — `tmfrt_phase_seconds`,
/// `tmfrt_events` and one quantile family per non-empty histogram —
/// into `w`. Shared by `tmfrt batch --metrics-out`, `tmfrt serve
/// /metrics` and the tests; output order is fixed, so a given snapshot
/// always renders to the same bytes.
pub fn write_telemetry_families(w: &mut PromWriter, agg: &Telemetry) {
    w.family(
        "tmfrt_phase_seconds",
        MetricKind::Counter,
        "CPU seconds per pipeline phase, summed over all jobs.",
    );
    for (i, phase) in PHASE_NAMES.iter().enumerate() {
        w.sample(
            "tmfrt_phase_seconds",
            &[("phase", phase)],
            agg.phase_nanos[i] as f64 / 1e9,
        );
    }

    w.family(
        "tmfrt_events",
        MetricKind::Counter,
        "Algorithmic counters summed over all jobs.",
    );
    for (i, counter) in COUNTER_NAMES.iter().enumerate() {
        w.sample_u64("tmfrt_events", &[("counter", counter)], agg.counters[i]);
    }

    // Memory accounting (engine::mem). The aggregate families are
    // always present — zeros when the gate is off — so dashboards can
    // rely on them; per-phase families appear once any scope recorded.
    w.family(
        "tmfrt_mem_allocs_total",
        MetricKind::Counter,
        "Heap allocation events recorded by the counting allocator.",
    );
    w.sample_u64("tmfrt_mem_allocs_total", &[], agg.mem.allocs);
    w.family(
        "tmfrt_mem_frees_total",
        MetricKind::Counter,
        "Heap free events recorded by the counting allocator.",
    );
    w.sample_u64("tmfrt_mem_frees_total", &[], agg.mem.frees);
    w.family(
        "tmfrt_mem_alloc_bytes_total",
        MetricKind::Counter,
        "Heap bytes allocated, summed over all jobs.",
    );
    w.sample_u64("tmfrt_mem_alloc_bytes_total", &[], agg.mem.alloc_bytes);
    w.family(
        "tmfrt_mem_peak_heap_bytes",
        MetricKind::Gauge,
        "Largest per-thread heap high-water mark across jobs.",
    );
    w.sample_u64("tmfrt_mem_peak_heap_bytes", &[], agg.mem.peak_bytes);

    if agg.mem.phases.iter().any(|p| !p.is_empty()) {
        w.family(
            "tmfrt_mem_phase_seconds",
            MetricKind::Counter,
            "Wall seconds inside memory scopes, per phase (inclusive).",
        );
        for (i, phase) in MEM_PHASE_NAMES.iter().enumerate() {
            w.sample(
                "tmfrt_mem_phase_seconds",
                &[("phase", phase)],
                agg.mem.phases[i].wall_nanos as f64 / 1e9,
            );
        }
        w.family(
            "tmfrt_mem_phase_allocs_total",
            MetricKind::Counter,
            "Allocation events inside memory scopes, per phase.",
        );
        for (i, phase) in MEM_PHASE_NAMES.iter().enumerate() {
            w.sample_u64(
                "tmfrt_mem_phase_allocs_total",
                &[("phase", phase)],
                agg.mem.phases[i].allocs,
            );
        }
        w.family(
            "tmfrt_mem_phase_peak_bytes",
            MetricKind::Gauge,
            "Largest within-scope heap growth, per phase.",
        );
        for (i, phase) in MEM_PHASE_NAMES.iter().enumerate() {
            w.sample_u64(
                "tmfrt_mem_phase_peak_bytes",
                &[("phase", phase)],
                agg.mem.phases[i].peak_bytes,
            );
        }
    }

    // One gauge family per non-empty histogram: quantile samples plus
    // explicit _count/_sum counters (summary-style naming without
    // claiming the summary type, which the writer does not model).
    for (i, hist_name) in HIST_NAMES.iter().enumerate() {
        let h = &agg.hists[i];
        if h.is_empty() {
            continue;
        }
        let name = format!("tmfrt_{hist_name}");
        w.family(
            &name,
            MetricKind::Gauge,
            "Upper bound of the log2 bucket holding the quantile.",
        );
        for q in ["0.5", "0.9", "0.99"] {
            let v = h.quantile(q.parse().unwrap()).unwrap_or(0);
            w.sample_u64(&name, &[("quantile", q)], v);
        }
        let count = format!("{name}_count");
        w.family(&count, MetricKind::Counter, "Samples recorded.");
        w.sample_u64(&count, &[], h.count);
        let sum = format!("{name}_sum");
        w.family(&sum, MetricKind::Counter, "Sum of recorded values.");
        w.sample_u64(&sum, &[], h.sum);
    }
}

/// Renders a finished batch's reports as one scrape-ready Prometheus
/// exposition: job outcomes, total wall time, then the telemetry
/// families of [`write_telemetry_families`]. Deterministic for a given
/// report set and always passes [`validate_exposition`].
pub fn render_job_metrics<T>(reports: &[JobReport<T>]) -> String {
    let mut agg = Telemetry::default();
    for r in reports {
        agg.merge(&r.telemetry);
    }

    let mut w = PromWriter::new();
    w.family(
        "tmfrt_jobs",
        MetricKind::Counter,
        "Batch jobs by final status.",
    );
    for status in JOB_STATUSES {
        let n = reports
            .iter()
            .filter(|r| r.outcome.status() == status)
            .count();
        w.sample_u64("tmfrt_jobs", &[("status", status)], n as u64);
    }

    w.family(
        "tmfrt_job_wall_seconds",
        MetricKind::Counter,
        "Wall-clock seconds summed over all jobs.",
    );
    w.sample(
        "tmfrt_job_wall_seconds",
        &[],
        reports.iter().map(|r| r.wall.as_secs_f64()).sum(),
    );

    write_telemetry_families(&mut w, &agg);
    w.finish()
}

/// Validates Prometheus text-exposition content line by line: every line
/// must be empty, a well-formed `# HELP`/`# TYPE` comment, or a sample
/// matching `name[{k="v",...}] value`. Returns the first offending line
/// (1-based) with a reason.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !is_metric_name(name) {
                        return Err(format!("line {lineno}: HELP names bad metric '{name}'"));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !is_metric_name(name) {
                        return Err(format!("line {lineno}: TYPE names bad metric '{name}'"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE '{kind}'"));
                    }
                }
                _ => return Err(format!("line {lineno}: unknown comment '{keyword}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: comment must start with '# '"));
        }
        validate_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
    }
    Ok(())
}

fn validate_sample(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len()
        && (bytes[pos].is_ascii_alphanumeric() || matches!(bytes[pos], b'_' | b':'))
    {
        pos += 1;
    }
    let name = &line[..pos];
    if !is_metric_name(name) {
        return Err(format!("bad metric name '{name}'"));
    }
    if bytes.get(pos) == Some(&b'{') {
        pos += 1;
        loop {
            let label_start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            if !is_label_name(&line[label_start..pos]) {
                return Err("bad label name".to_string());
            }
            if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
                return Err("label missing ='\"'".to_string());
            }
            pos += 2;
            while pos < bytes.len() && bytes[pos] != b'"' {
                if bytes[pos] == b'\\' {
                    pos += 1;
                }
                pos += 1;
            }
            if bytes.get(pos) != Some(&b'"') {
                return Err("unterminated label value".to_string());
            }
            pos += 1;
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' after label".to_string()),
            }
        }
    }
    if bytes.get(pos) != Some(&b' ') {
        return Err("expected space before value".to_string());
    }
    let value = &line[pos + 1..];
    if value.is_empty() {
        return Err("missing value".to_string());
    }
    if matches!(value, "NaN" | "+Inf" | "-Inf") {
        return Ok(());
    }
    value
        .parse::<f64>()
        .map(|_| ())
        .map_err(|_| format!("bad value '{value}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_valid_exposition() {
        let mut w = PromWriter::new();
        w.family("tmfrt_jobs_total", MetricKind::Counter, "Jobs by outcome.");
        w.sample_u64("tmfrt_jobs_total", &[("status", "completed")], 17);
        w.sample_u64("tmfrt_jobs_total", &[("status", "failed")], 0);
        w.family("tmfrt_phase_seconds", MetricKind::Gauge, "Phase wall time.");
        w.sample("tmfrt_phase_seconds", &[("phase", "label")], 1.25);
        w.family(
            "tmfrt_cut_size",
            MetricKind::Gauge,
            "Cut-size distribution.",
        );
        w.sample_u64("tmfrt_cut_size", &[("quantile", "0.5")], 4);
        let text = w.finish();
        validate_exposition(&text).expect("writer output must validate");
        assert!(text.contains("# TYPE tmfrt_jobs_total counter\n"));
        assert!(text.contains("tmfrt_jobs_total{status=\"completed\"} 17\n"));
        assert!(text.contains("tmfrt_phase_seconds{phase=\"label\"} 1.25\n"));
        assert!(text.contains("tmfrt_cut_size{quantile=\"0.5\"} 4\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut w = PromWriter::new();
        w.family("x_total", MetricKind::Counter, "multi\nline \\help");
        w.sample_u64("x_total", &[("file", "a\"b\\c\nd")], 1);
        let text = w.finish();
        validate_exposition(&text).expect("escaped output must validate");
        assert!(text.contains(r#"file="a\"b\\c\nd""#));
        assert!(text.contains("# HELP x_total multi\\nline \\\\help\n"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("1bad_name 3").is_err());
        assert!(validate_exposition("ok{unclosed=\"x\" 3").is_err());
        assert!(validate_exposition("ok 3 extra").is_err());
        assert!(validate_exposition("ok not_a_number").is_err());
        assert!(validate_exposition("# BOGUS x y").is_err());
        assert!(validate_exposition("# TYPE x widget").is_err());
        assert!(validate_exposition("#bad comment").is_err());
        assert!(validate_exposition("ok 3\nok{a=\"b\"} +Inf\n").is_ok());
    }

    #[test]
    fn job_metrics_validate_and_aggregate() {
        use crate::batch::JobOutcome;
        use crate::hist::Metric;
        use std::time::Duration;

        let report = |name: &str, outcome: JobOutcome<()>| {
            let mut t = Telemetry::default();
            t.counters[0] = 10;
            t.phase_nanos[0] = 250_000_000;
            for v in [2u64, 3, 5, 9] {
                t.hists[Metric::CutSize as usize].record(v);
            }
            JobReport {
                name: name.into(),
                outcome,
                wall: Duration::from_millis(500),
                telemetry: t,
                trace: None,
            }
        };
        let reports = vec![
            report("a", JobOutcome::Completed(())),
            report("b", JobOutcome::Completed(())),
            report("c", JobOutcome::Panicked("boom".into())),
        ];
        let text = render_job_metrics(&reports);
        validate_exposition(&text).expect("metrics must be valid exposition");
        assert!(text.contains("tmfrt_jobs{status=\"ok\"} 2\n"));
        assert!(text.contains("tmfrt_jobs{status=\"panicked\"} 1\n"));
        assert!(text.contains("tmfrt_jobs{status=\"deadline\"} 0\n"));
        assert!(text.contains("tmfrt_job_wall_seconds 1.5\n"));
        assert!(text.contains("tmfrt_events{counter=\"flow_augmentations\"} 30\n"));
        assert!(text.contains("tmfrt_phase_seconds{phase=\"label\"} 0.75\n"));
        // 12 merged samples of 2,3,5,9: p50 lands in bucket [2,3].
        assert!(text.contains("tmfrt_cut_size{quantile=\"0.5\"} 3\n"));
        assert!(text.contains("tmfrt_cut_size_count 12\n"));
        assert!(text.contains("tmfrt_cut_size_sum 57\n"));
        // Histograms never recorded stay out of the exposition.
        assert!(!text.contains("tmfrt_span_nanos"));

        // An empty batch still renders a valid, all-zero exposition.
        let empty = render_job_metrics::<()>(&[]);
        validate_exposition(&empty).expect("empty exposition must validate");
        assert!(empty.contains("tmfrt_jobs{status=\"ok\"} 0\n"));
    }

    #[test]
    fn mem_families_expose_and_validate() {
        use crate::mem::{MemPhase, MemPhaseStats};
        let mut agg = Telemetry::default();
        agg.mem.allocs = 42;
        agg.mem.frees = 40;
        agg.mem.alloc_bytes = 4096;
        agg.mem.peak_bytes = 2048;
        agg.mem.phases[MemPhase::LabelSweep as usize] = MemPhaseStats {
            wall_nanos: 1_500_000_000,
            allocs: 30,
            frees: 28,
            alloc_bytes: 3000,
            peak_bytes: 1024,
        };
        let mut w = PromWriter::new();
        write_telemetry_families(&mut w, &agg);
        let text = w.finish();
        validate_exposition(&text).expect("mem families must validate");
        assert!(text.contains("tmfrt_mem_allocs_total 42\n"));
        assert!(text.contains("tmfrt_mem_peak_heap_bytes 2048\n"));
        assert!(text.contains("tmfrt_mem_phase_seconds{phase=\"frtcheck_sweep\"} 1.5\n"));
        assert!(text.contains("tmfrt_mem_phase_allocs_total{phase=\"frtcheck_sweep\"} 30\n"));
        assert!(text.contains("tmfrt_mem_phase_peak_bytes{phase=\"frtcheck_sweep\"} 1024\n"));

        // With no scope activity the per-phase families stay out, but
        // the aggregate families are always present (zeros included).
        let mut w = PromWriter::new();
        write_telemetry_families(&mut w, &Telemetry::default());
        let text = w.finish();
        validate_exposition(&text).expect("zeroed exposition must validate");
        assert!(text.contains("tmfrt_mem_allocs_total 0\n"));
        assert!(!text.contains("tmfrt_mem_phase_seconds"));
    }

    #[test]
    fn value_rendering() {
        assert_eq!(render_value(17.0), "17");
        assert_eq!(render_value(1.25), "1.25");
        assert_eq!(render_value(f64::INFINITY), "+Inf");
        assert_eq!(render_value(f64::NAN), "NaN");
    }
}
