//! A minimal, deterministic JSON writer (std-only).
//!
//! Result artifacts (`BENCH_table1.json`, batch reports) need
//! machine-readable output but no external serialisation crates are
//! available offline. [`JsonValue`] covers the JSON data model; objects
//! preserve **insertion order**, so the same value always renders to the
//! same bytes — the property the `--jobs 1` vs `--jobs 8` byte-equality
//! guarantee rests on.
//!
//! Floats render via Rust's shortest-roundtrip `Display`, which is
//! deterministic across platforms; non-finite floats render as `null`
//! (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double (non-finite renders as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the format of the committed `BENCH_*.json` artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (strict, std-only recursive descent).
    ///
    /// Supports the full data model this writer emits; numbers parse as
    /// `UInt`/`Int` when integral and in range, `Float` otherwise.
    /// Returns a message with a byte offset on malformed input. Used by
    /// the `tracecheck` validator to read traces back.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are not produced by our writer; map
                        // them to the replacement character on read.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 scalar starting here.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(JsonValue::Int(i));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral floats render with a decimal point so the field stays
        // type-stable for consumers (`1.0`, not `1`).
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(
            JsonValue::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = JsonValue::object(vec![
            ("zebra", JsonValue::Int(1)),
            ("alpha", JsonValue::Int(2)),
        ]);
        assert_eq!(v.render(), r#"{"zebra":1,"alpha":2}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::str("x")),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.starts_with("{\n"));
        assert!(pretty.contains("\"items\": [\n"));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::str("s5378\n\"x\"")),
            ("phi", JsonValue::UInt(7)),
            ("delta", JsonValue::Int(-3)),
            ("cpu", JsonValue::Float(1.5)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::UInt(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a":3,"b":"x","c":[1]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            JsonValue::object(vec![
                ("phi", JsonValue::UInt(7)),
                ("cpu", JsonValue::Float(0.0)),
                ("name", JsonValue::str("s5378")),
            ])
        };
        assert_eq!(build().render_pretty(), build().render_pretty());
    }
}
