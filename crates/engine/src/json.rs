//! A minimal, deterministic JSON writer (std-only).
//!
//! Result artifacts (`BENCH_table1.json`, batch reports) need
//! machine-readable output but no external serialisation crates are
//! available offline. [`JsonValue`] covers the JSON data model; objects
//! preserve **insertion order**, so the same value always renders to the
//! same bytes — the property the `--jobs 1` vs `--jobs 8` byte-equality
//! guarantee rests on.
//!
//! Floats render via Rust's shortest-roundtrip `Display`, which is
//! deterministic across platforms; non-finite floats render as `null`
//! (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double (non-finite renders as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the format of the committed `BENCH_*.json` artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral floats render with a decimal point so the field stays
        // type-stable for consumers (`1.0`, not `1`).
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(
            JsonValue::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            JsonValue::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = JsonValue::object(vec![
            ("zebra", JsonValue::Int(1)),
            ("alpha", JsonValue::Int(2)),
        ]);
        assert_eq!(v.render(), r#"{"zebra":1,"alpha":2}"#);
    }

    #[test]
    fn pretty_round_trips_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::str("x")),
            (
                "items",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.starts_with("{\n"));
        assert!(pretty.contains("\"items\": [\n"));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            JsonValue::object(vec![
                ("phi", JsonValue::UInt(7)),
                ("cpu", JsonValue::Float(0.0)),
                ("name", JsonValue::str("s5378")),
            ])
        };
        assert_eq!(build().render_pretty(), build().render_pretty());
    }
}
