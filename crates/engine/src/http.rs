//! A dependency-free HTTP/1.1 server (std-only) for `tmfrt serve`.
//!
//! Deliberately small: thread-per-connection on a [`std::net::TcpListener`],
//! one request per connection (`Connection: close`), a **bounded handler
//! pool** (connections beyond [`ServerConfig::max_concurrent`] are
//! answered `503` immediately instead of queueing without bound), and
//! graceful shutdown through the crate's own [`CancelToken`]: trip the
//! token returned by [`Server::shutdown_token`], the accept loop stops,
//! and [`Server::serve`] returns once in-flight handlers drain (long
//! handlers such as SSE streams are expected to poll the same token).
//!
//! Responses either carry a byte body (with `Content-Length`) or a
//! **streaming** body ([`Body::Stream`]): the server writes the header
//! and then hands the raw connection to the stream closure — the shape
//! Server-Sent Events need. Every handled request emits one structured
//! access-log event through [`crate::log`] (stderr, never stdout).
//!
//! This is a service surface for trusted networks (localhost, a lab
//! subnet): no TLS, no keep-alive, no chunked request bodies.

use crate::cancel::CancelToken;
use crate::json::JsonValue;
use crate::log;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (`/jobs/3`).
    pub path: String,
    /// Raw query string after `?` (may be empty). Not percent-decoded —
    /// the serve API uses plain token values.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length`-delimited).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of a `key=value` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the request declared a body (`Content-Length` present).
    /// Body-consuming routes use this to answer `411 Length Required`
    /// rather than silently treating an unframed submission as empty —
    /// while bodyless control POSTs keep working without the header.
    pub fn declares_body(&self) -> bool {
        self.header("content-length").is_some()
    }
}

/// The boxed closure driving a [`Body::Stream`] response.
pub type StreamFn = Box<dyn FnOnce(&mut dyn Write) + Send>;

/// A response body: bytes (framed with `Content-Length`) or a streaming
/// writer (close-delimited; used for SSE).
pub enum Body {
    /// A complete in-memory body.
    Bytes(Vec<u8>),
    /// A closure that drives the open connection until it returns; the
    /// connection closes afterwards. The closure must poll the server's
    /// shutdown token to terminate promptly on drain.
    Stream(StreamFn),
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Bytes(b) => write!(f, "Body::Bytes({} bytes)", b.len()),
            Body::Stream(_) => write!(f, "Body::Stream"),
        }
    }
}

/// One response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers (`Cache-Control`, …).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            headers: Vec::new(),
            body: Body::Bytes(body.into().into_bytes()),
        }
    }

    /// A JSON response rendered from a [`JsonValue`].
    pub fn json(status: u16, value: &JsonValue) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            headers: Vec::new(),
            body: Body::Bytes(value.render_pretty().into_bytes()),
        }
    }

    /// A streaming response: the header is written with `content_type`,
    /// then `stream` drives the connection (SSE).
    pub fn stream(
        content_type: impl Into<String>,
        stream: impl FnOnce(&mut dyn Write) + Send + 'static,
    ) -> Response {
        Response {
            status: 200,
            content_type: content_type.into(),
            headers: Vec::new(),
            body: Body::Stream(Box::new(stream)),
        }
    }

    /// `404 Not Found` with a one-line text body.
    pub fn not_found() -> Response {
        Response::text(404, "not found\n")
    }

    /// `405 Method Not Allowed`.
    pub fn method_not_allowed() -> Response {
        Response::text(405, "method not allowed\n")
    }

    /// `400 Bad Request` with a reason.
    pub fn bad_request(reason: impl Into<String>) -> Response {
        Response::text(400, format!("bad request: {}\n", reason.into()))
    }

    /// `411 Length Required` — for routes that *need* a request body,
    /// when the request declared none. RFC 9112 §6.3 makes a request
    /// without `Content-Length`/`Transfer-Encoding` a zero-length body
    /// (so bodyless control POSTs like `/shutdown` stay one plain
    /// `curl -X POST`); a body-consuming route answers with this instead
    /// of treating the submission as empty — see
    /// [`Request::declares_body`].
    pub fn length_required() -> Response {
        Response::text(
            411,
            "length required: request must include Content-Length\n",
        )
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum concurrently handled connections; further accepts are
    /// answered `503` without queueing (the bounded accept queue).
    pub max_concurrent: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Cap on request head bytes (request line + headers).
    pub max_head_bytes: usize,
    /// Cap on request body bytes.
    pub max_body_bytes: usize,
    /// How long [`Server::serve`] waits for in-flight handlers after
    /// shutdown is requested before returning anyway.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_concurrent: 64,
            read_timeout: Duration::from_secs(10),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// The request handler: borrows the request, returns the response.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A bound, not-yet-serving HTTP server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    token: CancelToken,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port `0` for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            token: CancelToken::new(),
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A clone of the shutdown token: trip it (from a handler, another
    /// thread, or a signal bridge) and [`Server::serve`] drains and
    /// returns.
    pub fn shutdown_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Accepts and handles connections until the shutdown token trips,
    /// then waits up to [`ServerConfig::drain_timeout`] for in-flight
    /// handlers. Blocking — run on a dedicated thread.
    ///
    /// # Errors
    ///
    /// Returns setup errors (nonblocking-mode failure); per-connection
    /// errors are logged and absorbed.
    pub fn serve(self, handler: Handler) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let active = Arc::new(AtomicUsize::new(0));
        loop {
            if self.token.is_cancelled() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if active.load(Ordering::Acquire) >= self.config.max_concurrent {
                        reject_overloaded(stream);
                        continue;
                    }

                    active.fetch_add(1, Ordering::AcqRel);
                    let conn_active = Arc::clone(&active);
                    let handler = Arc::clone(&handler);
                    let config = self.config;
                    let spawned = std::thread::Builder::new()
                        .name("engine-http-conn".into())
                        .spawn(move || {
                            handle_connection(stream, peer, &handler, &config);
                            conn_active.fetch_sub(1, Ordering::AcqRel);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::AcqRel);
                        log::error("engine::http", "spawn connection thread failed", &[]);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    log::warn(
                        "engine::http",
                        "accept error",
                        &[("error", JsonValue::str(e.to_string()))],
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        // Drain: in-flight handlers (SSE streams poll the same token).
        let deadline = Instant::now() + self.config.drain_timeout;
        while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stragglers = active.load(Ordering::Acquire);
        if stragglers > 0 {
            log::warn(
                "engine::http",
                "drain timeout with connections still open",
                &[("connections", JsonValue::UInt(stragglers as u64))],
            );
        }
        Ok(())
    }
}

fn reject_overloaded(mut stream: TcpStream) {
    let _ = stream.write_all(
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 9\r\n\
          Content-Type: text/plain\r\nConnection: close\r\n\r\noverload\n",
    );
    log::warn(
        "engine::http",
        "connection rejected: handler pool full",
        &[],
    );
}

fn handle_connection(
    mut stream: TcpStream,
    peer: std::net::SocketAddr,
    handler: &Handler,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let started = Instant::now();
    let request = match read_request(&mut stream, config) {
        Ok(r) => r,
        Err(err) => {
            let reason = err;
            let _ = write_response(&mut stream, Response::bad_request(reason.clone()));
            log::warn(
                "engine::http",
                "malformed request",
                &[
                    ("peer", JsonValue::str(peer.to_string())),
                    ("reason", JsonValue::str(reason)),
                ],
            );
            return;
        }
    };
    let method = request.method.clone();
    let path = request.path.clone();
    let response = handler(request);
    let status = response.status;
    let streamed = matches!(response.body, Body::Stream(_));
    // Access-log a plain response after it is written, but a streaming
    // one before its closure runs (streams can outlive the connection's
    // useful logging window).
    let mut pending = Some(response);
    if !streamed {
        let _ = write_response(&mut stream, pending.take().unwrap());
    }
    log::info(
        "engine::http",
        "request",
        &[
            ("peer", JsonValue::str(peer.to_string())),
            ("method", JsonValue::str(method)),
            ("path", JsonValue::str(path)),
            ("status", JsonValue::UInt(status as u64)),
            (
                "micros",
                JsonValue::UInt(started.elapsed().as_micros() as u64),
            ),
        ],
    );
    if let Some(response) = pending {
        let _ = write_response(&mut stream, response);
    }
}

/// Reads and parses one request from `stream`; an `Err` is the reason
/// string for the `400 Bad Request` answer.
fn read_request(stream: &mut TcpStream, config: &ServerConfig) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > config.max_head_bytes {
            return Err("request head too large".into());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-head".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("bad request line `{request_line}`"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse().map_err(|_| format!("bad content-length `{v}`"))?,
        // No Content-Length (and this server never negotiates chunked
        // transfer) means a zero-length body per RFC 9112 §6.3. Routes
        // that *require* a body answer 411 through
        // [`Request::declares_body`]; rejecting here would break
        // bodyless control POSTs like `curl -X POST /shutdown`.
        None => 0,
    };
    if content_length > config.max_body_bytes {
        return Err("request body too large".into());
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".into()),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read body: {e}")),
        }
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes `response` to `stream`; streaming bodies run their closure.
fn write_response(stream: &mut TcpStream, response: Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type
    );
    for (k, v) in &response.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    match response.body {
        Body::Bytes(bytes) => {
            head.push_str(&format!("Content-Length: {}\r\n\r\n", bytes.len()));
            stream.write_all(head.as_bytes())?;
            stream.write_all(&bytes)?;
            stream.flush()
        }
        Body::Stream(f) => {
            // Close-delimited: no Content-Length; the stream closure
            // writes until it returns (SSE handlers poll the shutdown
            // token), then the connection closes.
            head.push_str("Cache-Control: no-store\r\n\r\n");
            stream.write_all(head.as_bytes())?;
            stream.flush()?;
            f(stream);
            stream.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn send(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn test_server(
        handler: impl Fn(Request) -> Response + Send + Sync + 'static,
    ) -> (
        std::net::SocketAddr,
        CancelToken,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let token = server.shutdown_token();
        let join = std::thread::spawn(move || server.serve(Arc::new(handler)));
        (addr, token, join)
    }

    #[test]
    fn serves_parses_and_shuts_down() {
        let (addr, token, join) =
            test_server(|req| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/hello") => {
                    let who = req.query_param("who").unwrap_or("world").to_string();
                    Response::text(200, format!("hello {who}\n"))
                }
                ("POST", "/echo") => {
                    assert_eq!(req.header("content-type"), Some("text/plain"));
                    Response::text(200, req.body_text())
                }
                _ => Response::not_found(),
            });

        let out = send(addr, "GET /hello?who=fpga HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.ends_with("hello fpga\n"), "{out}");
        assert!(out.contains("Connection: close\r\n"));

        let body = "round trip body";
        let out = send(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(out.ends_with(body), "{out}");

        let out = send(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 404"), "{out}");

        let out = send(addr, "BOGUS\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        token.cancel();
        join.join().unwrap().unwrap();
        // The listener is gone: connects now fail (eventually — the OS
        // may accept one backlogged connection, so poll briefly).
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match TcpStream::connect(addr) {
                Err(_) => break,
                Ok(_) if Instant::now() > deadline => panic!("listener still accepting"),
                Ok(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    #[test]
    fn streaming_response_delivers_chunks() {
        let (addr, token, join) = test_server(|req| {
            assert_eq!(req.path, "/events");
            Response::stream("text/event-stream", |w| {
                for i in 0..3 {
                    let _ = write!(w, "data: tick {i}\n\n");
                    let _ = w.flush();
                }
            })
        });
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /events HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(s);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut all = String::new();
        reader.read_to_string(&mut all).unwrap();
        assert!(all.contains("data: tick 0\n\n"), "{all}");
        assert!(all.contains("data: tick 2\n\n"), "{all}");
        token.cancel();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn post_without_content_length_is_a_zero_body_request() {
        // RFC 9112 §6.3: no Content-Length (and no chunked transfer)
        // means no body — the request reaches the handler with an empty
        // body and `declares_body() == false`, so body-consuming routes
        // can answer 411 while bodyless control POSTs keep working.
        let (addr, token, join) = test_server(|req| {
            if req.declares_body() {
                Response::text(200, "framed")
            } else {
                Response::length_required()
            }
        });
        let out = send(addr, "POST /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 411 Length Required\r\n"), "{out}");
        assert!(out.contains("length required"), "{out}");
        let out = send(addr, "POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        assert!(out.ends_with("framed"), "{out}");
        token.cancel();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn content_length_larger_than_body_is_rejected() {
        let (addr, token, join) = test_server(|_| Response::text(200, "ok"));
        // Claim 100 bytes, send 4, then half-close: the server must answer
        // 400 (connection closed mid-body), not fabricate a short body.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nabcd")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("mid-body"), "{out}");
        token.cancel();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_head_is_rejected() {
        let (addr, token, join) = test_server(|_| Response::text(200, "ok"));
        let huge = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(64 * 1024));
        // The server answers 400 and closes mid-upload, so the client
        // may observe a reset instead of the response; the contract is
        // that it never hangs and the server survives.
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(huge.as_bytes());
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 400"), "{out}");
        drop(s);
        let out = send(addr, "GET /after HTTP/1.1\r\n\r\n");
        assert!(
            out.starts_with("HTTP/1.1 200"),
            "server must survive: {out}"
        );
        token.cancel();
        join.join().unwrap().unwrap();
    }
}
