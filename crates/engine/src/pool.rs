//! A work-stealing thread pool built on the standard library.
//!
//! Each worker owns a deque protected by its own mutex; submissions are
//! distributed round-robin across the worker deques. A worker pops from
//! the **front** of its own deque, and when empty it *steals* from the
//! **back** of a sibling's deque (starting at the neighbour after
//! itself, so contention spreads). A shared condvar parks idle workers.
//!
//! Per-deque mutexes are uncontended in the common case (owner pops,
//! nobody steals), which is all the batch workloads here need; tasks are
//! coarse (whole mapping flows), so queue overhead is immaterial — the
//! stealing matters for *balance*, not throughput: circuit runtimes vary
//! by three orders of magnitude across the Table-1 suite.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Per-worker deques.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Count of queued-but-unclaimed tasks, guarded with the condvar.
    pending: Mutex<usize>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool waits for all queued tasks to finish.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next: usize,
}

impl Pool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
            next: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task; it runs on some worker thread.
    pub fn spawn(&mut self, task: impl FnOnce() + Send + 'static) {
        let slot = self.next % self.shared.queues.len();
        self.next = self.next.wrapping_add(1);
        self.shared.queues[slot]
            .lock()
            .expect("queue poisoned")
            .push_back(Box::new(task));
        let mut pending = self.shared.pending.lock().expect("pending poisoned");
        *pending += 1;
        drop(pending);
        self.shared.wakeup.notify_one();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let n = shared.queues.len();
    loop {
        // Own deque first (front), then steal from siblings (back).
        let mut task = shared.queues[me]
            .lock()
            .expect("queue poisoned")
            .pop_front();
        if task.is_none() {
            for off in 1..n {
                let victim = (me + off) % n;
                task = shared.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_back();
                if task.is_some() {
                    break;
                }
            }
        }
        match task {
            Some(task) => {
                let mut pending = shared.pending.lock().expect("pending poisoned");
                *pending -= 1;
                drop(pending);
                task();
            }
            None => {
                let mut pending = shared.pending.lock().expect("pending poisoned");
                loop {
                    if *pending > 0 {
                        break;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    pending = shared.wakeup.wait(pending).expect("pending poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let mut pool = Pool::new(4);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for completion
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_worker_is_fifo_for_own_queue() {
        let (tx, rx) = mpsc::channel();
        {
            let mut pool = Pool::new(1);
            for i in 0..10 {
                let tx = tx.clone();
                pool.spawn(move || tx.send(i).unwrap());
            }
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn workers_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn stealing_balances_a_blocked_worker() {
        // Two workers; the first task parks worker A on a channel until
        // every other task (queued round-robin to BOTH deques) is done —
        // possible only if worker B steals A's share.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let mut pool = Pool::new(2);
            pool.spawn(move || {
                release_rx.recv().unwrap();
            });
            for _ in 0..20 {
                let d = Arc::clone(&done);
                pool.spawn(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Busy-wait (bounded) for the stealing worker to drain all 20.
            let t0 = std::time::Instant::now();
            while done.load(Ordering::Relaxed) < 20 {
                assert!(
                    t0.elapsed() < std::time::Duration::from_secs(10),
                    "stealing failed: {} of 20 done",
                    done.load(Ordering::Relaxed)
                );
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }
}
