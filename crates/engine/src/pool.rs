//! A work-stealing thread pool built on the standard library.
//!
//! Each worker owns a deque protected by its own mutex; submissions are
//! distributed round-robin across the worker deques. A worker pops from
//! the **front** of its own deque, and when empty it *steals* from the
//! **back** of a sibling's deque (starting at the neighbour after
//! itself, so contention spreads). A shared condvar parks idle workers.
//!
//! Per-deque mutexes are uncontended in the common case (owner pops,
//! nobody steals), which is all the batch workloads here need; tasks are
//! coarse (whole mapping flows), so queue overhead is immaterial — the
//! stealing matters for *balance*, not throughput: circuit runtimes vary
//! by three orders of magnitude across the Table-1 suite.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// Per-worker deques.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Count of queued-but-unclaimed tasks, guarded with the condvar.
    pending: Mutex<usize>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool waits for all queued tasks to finish.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next: usize,
}

impl Pool {
    /// Spawns a pool with `workers` threads (at least one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        Pool {
            shared,
            workers: handles,
            next: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Submits a task; it runs on some worker thread.
    pub fn spawn(&mut self, task: impl FnOnce() + Send + 'static) {
        let slot = self.next % self.shared.queues.len();
        self.next = self.next.wrapping_add(1);
        self.shared.queues[slot]
            .lock()
            .expect("queue poisoned")
            .push_back(Box::new(task));
        let mut pending = self.shared.pending.lock().expect("pending poisoned");
        *pending += 1;
        drop(pending);
        self.shared.wakeup.notify_one();
    }
}

/// Runs `main` on the calling thread while `workers` scoped helper threads
/// run `work(worker_index)` alongside it — the intra-job counterpart of
/// [`Pool`], used to parallelise *within* one job (e.g. the per-level cut
/// queries of a label sweep) without stealing threads from the job-level
/// pool.
///
/// Each helper thread inherits the caller's execution context:
///
/// * the caller's installed [`crate::cancel::CancelToken`] (so deadline
///   and shutdown trips reach the helpers),
/// * the caller's [`crate::telemetry::LiveTelemetry`] mirror (so counters
///   stay visible live while the job runs),
///
/// and when a helper returns, its thread-local telemetry (counters and
/// histograms it accumulated) is merged back into the caller via
/// [`crate::telemetry::merge_local`], keeping per-job totals exact and
/// independent of how work was divided.
///
/// **Contract:** `main` must cause every `work(i)` call to return (for
/// example by tripping a shared stop flag) — the calling thread joins the
/// helpers after `main` returns and will otherwise block forever. With
/// `workers == 0` no threads are spawned and `main` runs alone.
pub fn scoped_workers<R>(
    workers: usize,
    work: impl Fn(usize) + Sync,
    main: impl FnOnce() -> R,
) -> R {
    if workers == 0 {
        return main();
    }
    let token = crate::cancel::current();
    let mirror = crate::telemetry::current_mirror();
    let collected: Mutex<Vec<crate::telemetry::Telemetry>> = Mutex::new(Vec::new());
    let work = &work;
    let token = &token;
    let mirror = &mirror;
    let collected_ref = &collected;
    let result = std::thread::scope(|s| {
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("engine-sweep-{i}"))
                .spawn_scoped(s, move || {
                    let _cancel_guard = token.clone().map(crate::cancel::install);
                    let _mirror_guard = mirror.clone().map(crate::telemetry::install_mirror);
                    work(i);
                    let t = crate::telemetry::take();
                    collected_ref
                        .lock()
                        .expect("telemetry collection poisoned")
                        .push(t);
                })
                .expect("spawn scoped worker");
        }
        main()
    });
    for t in collected
        .into_inner()
        .expect("telemetry collection poisoned")
    {
        crate::telemetry::merge_local(&t);
    }
    result
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    let n = shared.queues.len();
    loop {
        // Own deque first (front), then steal from siblings (back).
        let mut task = shared.queues[me]
            .lock()
            .expect("queue poisoned")
            .pop_front();
        if task.is_none() {
            for off in 1..n {
                let victim = (me + off) % n;
                task = shared.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_back();
                if task.is_some() {
                    break;
                }
            }
        }
        match task {
            Some(task) => {
                let mut pending = shared.pending.lock().expect("pending poisoned");
                *pending -= 1;
                drop(pending);
                task();
            }
            None => {
                let mut pending = shared.pending.lock().expect("pending poisoned");
                loop {
                    if *pending > 0 {
                        break;
                    }
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    pending = shared.wakeup.wait(pending).expect("pending poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_all_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let mut pool = Pool::new(4);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for completion
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_worker_is_fifo_for_own_queue() {
        let (tx, rx) = mpsc::channel();
        {
            let mut pool = Pool::new(1);
            for i in 0..10 {
                let tx = tx.clone();
                pool.spawn(move || tx.send(i).unwrap());
            }
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn workers_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn scoped_workers_merge_telemetry_and_inherit_cancel() {
        use crate::telemetry::{self, Counter};
        telemetry::reset();
        let token = crate::cancel::CancelToken::new();
        let _g = crate::cancel::install(token.clone());
        let stop = AtomicBool::new(false);
        let result = scoped_workers(
            3,
            |i| {
                // Every helper sees the caller's (live) token...
                assert!(!crate::cancel::cancelled());
                // ...and its counts merge back into the caller afterwards.
                telemetry::count(Counter::FlowAugmentations, i as u64 + 1);
                while !stop.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            },
            || {
                stop.store(true, Ordering::Release);
                42
            },
        );
        assert_eq!(result, 42);
        // 1 + 2 + 3 from the three helpers.
        assert_eq!(
            telemetry::take().counter(Counter::FlowAugmentations),
            6,
            "helper telemetry must merge into the caller"
        );
    }

    #[test]
    fn scoped_workers_merge_memory_accounting() {
        use crate::mem::{self, MemPhase};
        use crate::telemetry;
        // Workers attribute allocations to phases on their own threads;
        // after the scope, the caller's telemetry holds the exact sums
        // (and the max of the per-thread peaks).
        let _gate = mem::TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        mem::set_enabled(true);
        telemetry::reset();
        let stop = AtomicBool::new(false);
        scoped_workers(
            2,
            |i| {
                let _s = mem::scope(MemPhase::LabelSweep);
                // Worker 0 books 1000 bytes in 1 event, worker 1 books
                // 2000 in 2: distinct shapes so the merge is checkable.
                for _ in 0..=i {
                    mem::on_alloc(1000);
                }
                for _ in 0..=i {
                    mem::on_dealloc(1000);
                }
                while !stop.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            },
            || {
                stop.store(true, Ordering::Release);
            },
        );
        mem::set_enabled(false);
        let t = telemetry::take();
        let sweep = t.mem.phase(MemPhase::LabelSweep);
        assert_eq!(sweep.allocs, 3, "1 + 2 events from the two workers");
        assert_eq!(sweep.alloc_bytes, 3000);
        assert_eq!(sweep.frees, 3);
        // Peak merges as a max across threads: worker 1 held 2000 live.
        assert_eq!(sweep.peak_bytes, 2000);
        assert_eq!(t.mem.allocs, 3, "job ledger covers worker threads");
        assert_eq!(t.mem.peak_bytes, 2000);
    }

    #[test]
    fn scoped_workers_zero_runs_main_alone() {
        let r = scoped_workers(0, |_| panic!("no workers expected"), || 7);
        assert_eq!(r, 7);
    }

    #[test]
    fn scoped_workers_see_cancellation_trips() {
        let token = crate::cancel::CancelToken::new();
        let _g = crate::cancel::install(token.clone());
        let observed = AtomicBool::new(false);
        scoped_workers(
            1,
            |_| {
                while !crate::cancel::cancelled() {
                    std::thread::yield_now();
                }
                observed.store(true, Ordering::Release);
            },
            || token.cancel(),
        );
        assert!(observed.load(Ordering::Acquire));
    }

    #[test]
    fn stealing_balances_a_blocked_worker() {
        // Two workers; the first task parks worker A on a channel until
        // every other task (queued round-robin to BOTH deques) is done —
        // possible only if worker B steals A's share.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let mut pool = Pool::new(2);
            pool.spawn(move || {
                release_rx.recv().unwrap();
            });
            for _ in 0..20 {
                let d = Arc::clone(&done);
                pool.spawn(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Busy-wait (bounded) for the stealing worker to drain all 20.
            let t0 = std::time::Instant::now();
            while done.load(Ordering::Relaxed) < 20 {
                assert!(
                    t0.elapsed() < std::time::Duration::from_secs(10),
                    "stealing failed: {} of 20 done",
                    done.load(Ordering::Relaxed)
                );
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }
}
