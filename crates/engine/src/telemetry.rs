//! Structured per-job telemetry: counters and phase timers.
//!
//! Hot paths increment plain thread-local [`Cell`]s — no locks, no
//! atomics — and the batch runner snapshots and resets them around each
//! job ([`take`]), merging the result into the job's report. A job runs
//! entirely on one worker thread, so thread-local accumulation is exact.
//!
//! Counters cover the algorithmic work the paper reports on: max-flow
//! augmentations (`graphalgo::flow`), FRTcheck sweeps and re-queued
//! gates (`turbomap::frtcheck`), expanded-circuit node-cache hits and
//! misses (`turbomap::expand`), and unit register moves
//! (`retiming::moves`). Phase timers split wall time into the pipeline's
//! four stages: label / search / generate / verify.

use crate::hist::{Histogram, Metric, NUM_HISTS};
use crate::mem::{self, MemPhase, MemPhaseStats, MemStats};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Algorithmic event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Augmenting paths found by `graphalgo::flow::NodeCutNetwork`.
    FlowAugmentations = 0,
    /// FRTcheck label sweeps executed (the paper's 5–15 per Φ).
    FrtSweeps = 1,
    /// Gates re-queued (marked dirty) during FRTcheck sweeps.
    FrtRequeuedGates = 2,
    /// Expanded-circuit node-cache hits (`(node, weight)` already built).
    ExpandCacheHits = 3,
    /// Expanded-circuit node-cache misses (fresh expanded node).
    ExpandCacheMisses = 4,
    /// Forward unit register moves applied by `retiming::moves`.
    ForwardMoves = 5,
    /// Backward unit register moves (each required justification).
    BackwardMoves = 6,
    /// Gates whose expansion window `F_v^{frt(v)}` was truncated by the
    /// `weight_horizon` cap — the mapped result may be suboptimal.
    FrtCapped = 7,
    /// Label sweeps skipped thanks to warm-started Φ probes (estimated as
    /// the previous feasible probe's sweep count minus this probe's).
    SweepsSaved = 8,
    /// Fuzz cases executed to completion by the differential oracle
    /// (`crates/fuzz`): generated, mapped by all three flows, and judged.
    CasesRun = 9,
    /// Individual oracle-check failures recorded by the fuzzer (one per
    /// violated invariant, so a single case can contribute several).
    OracleFailures = 10,
    /// Accepted shrinker reductions while minimizing failing fuzz cases.
    ShrinkSteps = 11,
    /// Mapping reports generated (`crates/report`): witness extraction
    /// plus timing attribution for one run.
    ReportsGenerated = 12,
}

/// Number of [`Counter`] variants.
pub const NUM_COUNTERS: usize = 13;

/// Stable snake_case names, indexed by `Counter as usize` (used as JSON
/// keys — part of the `BENCH_table1.json` schema).
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "flow_augmentations",
    "frt_sweeps",
    "frt_requeued_gates",
    "expand_cache_hits",
    "expand_cache_misses",
    "forward_moves",
    "backward_moves",
    "frt_capped",
    "sweeps_saved",
    "cases_run",
    "oracle_failures",
    "shrink_steps",
    "reports_generated",
];

/// Pipeline phases timed per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Label computation (FRTcheck / general check / FlowMap labels).
    Label = 0,
    /// Structure search: expanded-circuit construction and final cuts.
    Search = 1,
    /// Mapping generation, retiming and initial-state computation.
    Generate = 2,
    /// Equivalence verification of the result.
    Verify = 3,
}

/// Number of [`Phase`] variants.
pub const NUM_PHASES: usize = 4;

/// Stable phase names, indexed by `Phase as usize` (JSON keys).
pub const PHASE_NAMES: [&str; NUM_PHASES] = ["label", "search", "generate", "verify"];

impl Phase {
    /// The phase with index `i` (`Phase as usize`), if in range.
    pub fn from_index(i: usize) -> Option<Phase> {
        match i {
            0 => Some(Phase::Label),
            1 => Some(Phase::Search),
            2 => Some(Phase::Generate),
            3 => Some(Phase::Verify),
            _ => None,
        }
    }
}

/// A merged telemetry snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; NUM_COUNTERS],
    /// Accumulated phase durations in nanoseconds, indexed by
    /// `Phase as usize`.
    pub phase_nanos: [u64; NUM_PHASES],
    /// Streaming distribution histograms, indexed by
    /// `hist::Metric as usize`.
    pub hists: [Histogram; NUM_HISTS],
    /// Memory accounting: per-phase attributions from
    /// [`mem::MemScope`]s plus the job's allocation ledger. All zeros
    /// unless [`mem::set_enabled`] turned accounting on.
    pub mem: MemStats,
}

impl Telemetry {
    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Accumulated seconds spent in one phase.
    pub fn phase_secs(&self, p: Phase) -> f64 {
        self.phase_nanos[p as usize] as f64 / 1e9
    }

    /// Total seconds across all phases.
    pub fn total_phase_secs(&self) -> f64 {
        self.phase_nanos.iter().sum::<u64>() as f64 / 1e9
    }

    /// One distribution histogram.
    pub fn hist(&self, m: Metric) -> &Histogram {
        &self.hists[m as usize]
    }

    /// Adds another snapshot into this one.
    pub fn merge(&mut self, other: &Telemetry) {
        for i in 0..NUM_COUNTERS {
            self.counters[i] += other.counters[i];
        }
        for i in 0..NUM_PHASES {
            self.phase_nanos[i] += other.phase_nanos[i];
        }
        for i in 0..NUM_HISTS {
            self.hists[i].merge(&other.hists[i]);
        }
        self.mem.merge(&other.mem);
    }

    /// This snapshot minus an earlier one (saturating).
    pub fn since(&self, earlier: &Telemetry) -> Telemetry {
        let mut out = Telemetry::default();
        for i in 0..NUM_COUNTERS {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..NUM_PHASES {
            out.phase_nanos[i] = self.phase_nanos[i].saturating_sub(earlier.phase_nanos[i]);
        }
        for i in 0..NUM_HISTS {
            out.hists[i] = self.hists[i].since(&earlier.hists[i]);
        }
        out.mem = self.mem.since(&earlier.mem);
        out
    }
}

/// A cross-thread live view of one running job's telemetry.
///
/// The worker thread installs an `Arc<LiveTelemetry>` as a *mirror*
/// ([`install_mirror`]): every [`count`] and every finished
/// [`PhaseTimer`] segment then also lands in these atomics, so another
/// thread — the `tmfrt serve` `/jobs/<id>` handler — can read a running
/// job's counters-so-far without touching the worker's thread-locals.
/// Histograms are **not** mirrored (64 atomic buckets per sample would
/// tax the hot paths); they arrive with the final [`Telemetry`] at job
/// end. `current_phase` tracks the innermost open phase timer, feeding
/// the serve monitor's phase-transition events.
#[derive(Debug, Default)]
pub struct LiveTelemetry {
    counters: [AtomicU64; NUM_COUNTERS],
    phase_nanos: [AtomicU64; NUM_PHASES],
    /// `Phase as usize`, or `NUM_PHASES` when no phase timer is open.
    current_phase: AtomicUsize,
    /// Heap high-water so far (bytes), max-merged from closing
    /// [`mem::MemScope`]s on the mirrored threads.
    mem_peak_bytes: AtomicU64,
    /// Allocation events so far inside memory scopes on the mirrored
    /// threads.
    mem_allocs: AtomicU64,
}

impl LiveTelemetry {
    /// A zeroed live view with no open phase.
    pub fn new() -> LiveTelemetry {
        let live = LiveTelemetry::default();
        live.current_phase.store(NUM_PHASES, Ordering::Relaxed);
        live
    }

    /// A point-in-time copy of the mirrored counters and phase timers
    /// (histogram slots stay empty — see the type docs).
    pub fn snapshot(&self) -> Telemetry {
        let mut t = Telemetry::default();
        for i in 0..NUM_COUNTERS {
            t.counters[i] = self.counters[i].load(Ordering::Relaxed);
        }
        for i in 0..NUM_PHASES {
            t.phase_nanos[i] = self.phase_nanos[i].load(Ordering::Relaxed);
        }
        t.mem.peak_bytes = self.mem_peak_bytes.load(Ordering::Relaxed);
        t.mem.allocs = self.mem_allocs.load(Ordering::Relaxed);
        t
    }

    /// Heap high-water mark mirrored so far, in bytes (zero when memory
    /// accounting is off).
    pub fn mem_peak_bytes(&self) -> u64 {
        self.mem_peak_bytes.load(Ordering::Relaxed)
    }

    /// The phase whose timer is currently open on the mirrored job, if
    /// any.
    pub fn current_phase(&self) -> Option<Phase> {
        Phase::from_index(self.current_phase.load(Ordering::Relaxed))
    }

    fn add_count(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn add_phase(&self, p: Phase, nanos: u64) {
        self.phase_nanos[p as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    fn note_mem(&self, allocs: u64, thread_peak: u64) {
        self.mem_allocs.fetch_add(allocs, Ordering::Relaxed);
        self.mem_peak_bytes
            .fetch_max(thread_peak, Ordering::Relaxed);
    }

    /// Marks `p` open, returning the previous marker for restoration.
    fn enter_phase(&self, p: Phase) -> usize {
        self.current_phase.swap(p as usize, Ordering::Relaxed)
    }

    fn restore_phase(&self, prev: usize) {
        self.current_phase.store(prev, Ordering::Relaxed);
    }
}

thread_local! {
    static COUNTERS: [Cell<u64>; NUM_COUNTERS] = const {
        [const { Cell::new(0) }; NUM_COUNTERS]
    };
    static PHASES: [Cell<u64>; NUM_PHASES] = const {
        [const { Cell::new(0) }; NUM_PHASES]
    };
    static HISTS: RefCell<[Histogram; NUM_HISTS]> =
        const { RefCell::new([Histogram::zeroed(); NUM_HISTS]) };
    static MIRROR: RefCell<Option<Arc<LiveTelemetry>>> = const { RefCell::new(None) };
    /// Memory telemetry accumulated on this thread: phase attributions
    /// from closing [`mem::MemScope`]s plus worker snapshots folded in
    /// by [`merge_local`]. The job-thread allocator ledger
    /// ([`mem::job_delta`]) is added at [`snapshot`] time, not here.
    static MEM_ACC: Cell<MemStats> = const { Cell::new(MemStats::new()) };
}

/// The `Arc<LiveTelemetry>` mirror currently installed on this thread, if
/// any — lets a parent thread hand its mirror to scoped workers so their
/// counts stay visible live (e.g. in `tmfrt serve`'s `/jobs/<id>`).
pub fn current_mirror() -> Option<Arc<LiveTelemetry>> {
    MIRROR.with(|m| m.borrow().clone())
}

/// Merges a snapshot into the current thread's **local** accumulators
/// only — the installed mirror (if any) is deliberately not updated,
/// because the usual source of `t` is a scoped worker that mirrored its
/// counts live while running; re-mirroring here would double-count them.
pub fn merge_local(t: &Telemetry) {
    COUNTERS.with(|cs| {
        for (i, cell) in cs.iter().enumerate() {
            cell.set(cell.get().wrapping_add(t.counters[i]));
        }
    });
    PHASES.with(|ps| {
        for (i, cell) in ps.iter().enumerate() {
            cell.set(cell.get().wrapping_add(t.phase_nanos[i]));
        }
    });
    HISTS.with(|hs| {
        let mut hists = hs.borrow_mut();
        for i in 0..NUM_HISTS {
            hists[i].merge(&t.hists[i]);
        }
    });
    MEM_ACC.with(|m| {
        let mut acc = m.get();
        acc.merge(&t.mem);
        m.set(acc);
    });
}

/// Accumulates one closing [`mem::MemScope`]'s attribution into the
/// current thread's telemetry and, when a mirror is installed, its
/// live aggregates (`thread_peak` is the thread heap high-water for the
/// mirror's max-merge). Called by `mem`, not user code.
pub(crate) fn mem_phase_add(phase: MemPhase, stats: &MemPhaseStats, thread_peak: u64) {
    MEM_ACC.with(|m| {
        let mut acc = m.get();
        acc.phases[phase as usize].merge(stats);
        m.set(acc);
    });
    with_mirror(|live| live.note_mem(stats.allocs, thread_peak));
}

/// Installs `live` as the current thread's telemetry mirror for the
/// lifetime of the returned guard (the previous mirror is restored on
/// drop). Counters and phase-timer segments recorded on this thread are
/// duplicated into the mirror's atomics.
pub fn install_mirror(live: Arc<LiveTelemetry>) -> MirrorGuard {
    let prev = MIRROR.with(|m| m.replace(Some(live)));
    MirrorGuard { prev }
}

/// RAII guard returned by [`install_mirror`].
#[derive(Debug)]
pub struct MirrorGuard {
    prev: Option<Arc<LiveTelemetry>>,
}

impl Drop for MirrorGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        MIRROR.with(|m| *m.borrow_mut() = prev);
    }
}

#[inline]
fn with_mirror(f: impl FnOnce(&LiveTelemetry)) {
    MIRROR.with(|m| {
        if let Some(live) = m.borrow().as_ref() {
            f(live);
        }
    });
}

/// Adds `n` to a counter on the current thread. Lock-free: one
/// thread-local access and a `Cell` read-modify-write (plus one relaxed
/// atomic add when a [`LiveTelemetry`] mirror is installed).
#[inline]
pub fn count(c: Counter, n: u64) {
    COUNTERS.with(|cs| {
        let cell = &cs[c as usize];
        cell.set(cell.get().wrapping_add(n));
    });
    with_mirror(|live| live.add_count(c, n));
}

/// Records one sample into a distribution histogram on the current
/// thread. Lock-free: one thread-local access, no allocation.
#[inline]
pub fn record(m: Metric, value: u64) {
    HISTS.with(|hs| hs.borrow_mut()[m as usize].record(value));
}

/// Snapshots the current thread's telemetry without resetting it.
pub fn snapshot() -> Telemetry {
    let mut t = Telemetry::default();
    COUNTERS.with(|cs| {
        for (i, cell) in cs.iter().enumerate() {
            t.counters[i] = cell.get();
        }
    });
    PHASES.with(|ps| {
        for (i, cell) in ps.iter().enumerate() {
            t.phase_nanos[i] = cell.get();
        }
    });
    HISTS.with(|hs| t.hists = *hs.borrow());
    t.mem = MEM_ACC.with(|m| m.get());
    // Fold in this thread's allocator ledger since the last job mark —
    // scoped workers contribute theirs through merge_local instead.
    let (delta, peak) = mem::job_delta();
    t.mem.allocs = t.mem.allocs.wrapping_add(delta.allocs);
    t.mem.frees = t.mem.frees.wrapping_add(delta.frees);
    t.mem.alloc_bytes = t.mem.alloc_bytes.wrapping_add(delta.alloc_bytes);
    t.mem.free_bytes = t.mem.free_bytes.wrapping_add(delta.free_bytes);
    t.mem.peak_bytes = t.mem.peak_bytes.max(peak);
    t
}

/// Snapshots **and resets** the current thread's telemetry (job boundary).
pub fn take() -> Telemetry {
    let t = snapshot();
    COUNTERS.with(|cs| cs.iter().for_each(|c| c.set(0)));
    PHASES.with(|ps| ps.iter().for_each(|p| p.set(0)));
    HISTS.with(|hs| *hs.borrow_mut() = [Histogram::zeroed(); NUM_HISTS]);
    MEM_ACC.with(|m| m.set(MemStats::new()));
    mem::job_mark();
    t
}

/// Resets the current thread's telemetry to zero.
pub fn reset() {
    let _ = take();
}

/// RAII timer: created by [`time_phase`], adds the elapsed monotonic time
/// to the phase's thread-local accumulator (and the installed mirror, if
/// any) on drop.
#[derive(Debug)]
pub struct PhaseTimer {
    phase: Phase,
    start: Instant,
    /// The mirror's previous `current_phase` marker, restored on drop
    /// (`None` when no mirror was installed at creation).
    mirror_prev: Option<usize>,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        PHASES.with(|ps| {
            let cell = &ps[self.phase as usize];
            cell.set(cell.get().wrapping_add(nanos));
        });
        if let Some(prev) = self.mirror_prev {
            with_mirror(|live| {
                live.add_phase(self.phase, nanos);
                live.restore_phase(prev);
            });
        }
    }
}

/// Starts timing `phase` until the returned guard drops.
#[inline]
pub fn time_phase(phase: Phase) -> PhaseTimer {
    let mut mirror_prev = None;
    with_mirror(|live| mirror_prev = Some(live.enter_phase(phase)));
    PhaseTimer {
        phase,
        start: Instant::now(),
        mirror_prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_take_roundtrip() {
        reset();
        count(Counter::FlowAugmentations, 3);
        count(Counter::FlowAugmentations, 2);
        count(Counter::FrtSweeps, 1);
        let t = take();
        assert_eq!(t.counter(Counter::FlowAugmentations), 5);
        assert_eq!(t.counter(Counter::FrtSweeps), 1);
        // take() reset everything.
        assert_eq!(take(), Telemetry::default());
    }

    #[test]
    fn phase_timer_accumulates() {
        reset();
        {
            let _t = time_phase(Phase::Label);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let t = take();
        assert!(t.phase_nanos[Phase::Label as usize] > 0);
        assert_eq!(t.phase_nanos[Phase::Verify as usize], 0);
        assert!(t.phase_secs(Phase::Label) > 0.0);
    }

    #[test]
    fn merge_and_since() {
        let mut a = Telemetry::default();
        a.counters[0] = 2;
        a.phase_nanos[1] = 10;
        let mut b = Telemetry::default();
        b.counters[0] = 3;
        b.phase_nanos[1] = 5;
        a.merge(&b);
        assert_eq!(a.counters[0], 5);
        assert_eq!(a.phase_nanos[1], 15);
        let d = a.since(&b);
        assert_eq!(d.counters[0], 2);
        assert_eq!(d.phase_nanos[1], 10);
    }

    #[test]
    fn names_cover_variants() {
        assert_eq!(COUNTER_NAMES.len(), NUM_COUNTERS);
        assert_eq!(PHASE_NAMES.len(), NUM_PHASES);
        assert_eq!(
            COUNTER_NAMES[Counter::BackwardMoves as usize],
            "backward_moves"
        );
        assert_eq!(PHASE_NAMES[Phase::Verify as usize], "verify");
        // Every counter (0..=12 = FlowAugmentations..ReportsGenerated) has
        // a distinct JSON key — a duplicate would silently shadow a column
        // in the artifact.
        let unique: std::collections::HashSet<&str> = COUNTER_NAMES.iter().copied().collect();
        assert_eq!(unique.len(), NUM_COUNTERS);
        assert_eq!(Counter::FlowAugmentations as usize, 0);
        assert_eq!(COUNTER_NAMES[Counter::FrtCapped as usize], "frt_capped");
        assert_eq!(COUNTER_NAMES[Counter::SweepsSaved as usize], "sweeps_saved");
        assert_eq!(COUNTER_NAMES[Counter::CasesRun as usize], "cases_run");
        assert_eq!(
            COUNTER_NAMES[Counter::OracleFailures as usize],
            "oracle_failures"
        );
        assert_eq!(COUNTER_NAMES[Counter::ShrinkSteps as usize], "shrink_steps");
        assert_eq!(
            COUNTER_NAMES[Counter::ReportsGenerated as usize],
            "reports_generated"
        );
        assert_eq!(Counter::ReportsGenerated as usize, NUM_COUNTERS - 1);
    }

    #[test]
    fn merge_local_accumulates_without_mirror() {
        reset();
        count(Counter::FrtSweeps, 2);
        record(Metric::CutSize, 4);
        let live = Arc::new(LiveTelemetry::new());
        let _g = install_mirror(Arc::clone(&live));
        let mut worker = Telemetry::default();
        worker.counters[Counter::FrtSweeps as usize] = 5;
        worker.hists[Metric::CutSize as usize].record(9);
        merge_local(&worker);
        // Thread-local view has both; the mirror saw nothing from the merge.
        assert_eq!(snapshot().counter(Counter::FrtSweeps), 7);
        assert_eq!(snapshot().hist(Metric::CutSize).count, 2);
        assert_eq!(live.snapshot().counter(Counter::FrtSweeps), 0);
        reset();
    }

    #[test]
    fn current_mirror_roundtrips() {
        assert!(current_mirror().is_none());
        let live = Arc::new(LiveTelemetry::new());
        {
            let _g = install_mirror(Arc::clone(&live));
            let seen = current_mirror().expect("mirror installed");
            assert!(Arc::ptr_eq(&seen, &live));
        }
        assert!(current_mirror().is_none());
    }

    #[test]
    fn histograms_ride_the_job_boundary() {
        reset();
        record(Metric::CutSize, 3);
        record(Metric::CutSize, 9);
        record(Metric::SweepsPerPhi, 7);
        let t = take();
        assert_eq!(t.hist(Metric::CutSize).count, 2);
        assert_eq!(t.hist(Metric::CutSize).sum, 12);
        assert_eq!(t.hist(Metric::SweepsPerPhi).count, 1);
        // take() reset the histograms too.
        assert!(take().hist(Metric::CutSize).is_empty());
    }

    #[test]
    fn mirror_sees_live_counts_and_phases() {
        reset();
        let live = Arc::new(LiveTelemetry::new());
        assert_eq!(live.current_phase(), None);
        {
            let _g = install_mirror(Arc::clone(&live));
            count(Counter::FlowAugmentations, 4);
            {
                let _t = time_phase(Phase::Search);
                assert_eq!(live.current_phase(), Some(Phase::Search));
                {
                    let _inner = time_phase(Phase::Label);
                    assert_eq!(live.current_phase(), Some(Phase::Label));
                }
                // Nested timer restored the outer phase marker.
                assert_eq!(live.current_phase(), Some(Phase::Search));
            }
            assert_eq!(live.current_phase(), None);
        }
        // Mirror uninstalled: further counts stay local.
        count(Counter::FlowAugmentations, 10);
        let snap = live.snapshot();
        assert_eq!(snap.counter(Counter::FlowAugmentations), 4);
        assert!(snap.phase_nanos[Phase::Search as usize] > 0);
        assert!(snap.phase_nanos[Phase::Label as usize] > 0);
        // The thread-local view kept everything.
        assert_eq!(take().counter(Counter::FlowAugmentations), 14);
    }

    #[test]
    fn phase_from_index_roundtrips() {
        for i in 0..NUM_PHASES {
            assert_eq!(Phase::from_index(i).map(|p| p as usize), Some(i));
        }
        assert_eq!(Phase::from_index(NUM_PHASES), None);
    }

    #[test]
    fn telemetry_is_thread_local() {
        reset();
        count(Counter::FrtSweeps, 7);
        let handle = std::thread::spawn(take);
        let other = handle.join().unwrap();
        assert_eq!(other, Telemetry::default());
        assert_eq!(take().counter(Counter::FrtSweeps), 7);
    }
}
