//! Cooperative cancellation tokens with thread-local installation.
//!
//! A [`CancelToken`] is a shared flag plus the *reason* it was tripped
//! (external request or deadline). The batch runner installs the current
//! job's token into a thread-local before running the job body, so deep
//! algorithm loops — the Φ binary search in `turbomap::driver`, the
//! FRTcheck sweep loop — can poll [`cancelled`] without every function in
//! between carrying a token parameter.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const LIVE: u8 = 0;
const EXTERNAL: u8 = 1;
const DEADLINE: u8 = 2;

/// Why a token was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// An explicit [`CancelToken::cancel`] call.
    External,
    /// The batch watchdog fired the job's deadline.
    Deadline,
}

/// A shared, cheaply clonable cancellation flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// Creates a live (uncancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token with [`CancelReason::External`].
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, EXTERNAL, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Trips the token with [`CancelReason::Deadline`] (used by the batch
    /// watchdog; the first trip wins).
    pub fn cancel_deadline(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, DEADLINE, Ordering::AcqRel, Ordering::Acquire);
    }

    /// True when the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) != LIVE
    }

    /// The reason the token was tripped, if it was.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Acquire) {
            EXTERNAL => Some(CancelReason::External),
            DEADLINE => Some(CancelReason::Deadline),
            _ => None,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs `token` as the current thread's token for the lifetime of the
/// returned guard (the previous token is restored on drop).
pub fn install(token: CancelToken) -> InstallGuard {
    let prev = CURRENT.with(|c| c.replace(Some(token)));
    InstallGuard { prev }
}

/// RAII guard returned by [`install`].
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<CancelToken>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// True when the current thread's installed token (if any) is tripped.
///
/// Cheap enough for per-sweep polling: one thread-local read and one
/// atomic load; returns `false` when no token is installed.
pub fn cancelled() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

/// The currently installed token's trip reason, if any.
pub fn current_reason() -> Option<CancelReason> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(CancelToken::reason))
}

/// A clone of the token installed on the current thread, if any — lets a
/// parent thread hand its job's token to scoped workers so they observe
/// the same cancellation and deadline trips.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_with_first_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel_deadline();
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn install_is_scoped_and_nested() {
        assert!(!cancelled());
        let outer = CancelToken::new();
        let _g1 = install(outer.clone());
        assert!(!cancelled());
        {
            let inner = CancelToken::new();
            let _g2 = install(inner.clone());
            inner.cancel();
            assert!(cancelled());
            assert_eq!(current_reason(), Some(CancelReason::External));
        }
        // Inner guard dropped: back to the (live) outer token.
        assert!(!cancelled());
        outer.cancel();
        assert!(cancelled());
    }

    #[test]
    fn no_token_means_not_cancelled() {
        assert!(!cancelled());
        assert_eq!(current_reason(), None);
    }

    #[test]
    fn current_returns_installed_token() {
        assert!(current().is_none());
        let t = CancelToken::new();
        {
            let _g = install(t.clone());
            let seen = current().expect("token installed");
            t.cancel();
            assert!(seen.is_cancelled());
        }
        assert!(current().is_none());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }
}
