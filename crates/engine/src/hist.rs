//! Streaming log-bucketed histograms (HDR-style, std-only).
//!
//! A [`Histogram`] sorts `u64` samples into power-of-2 buckets: bucket 0
//! holds the value 0 and bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i)` (the value's bit length). Recording is one branch,
//! one `leading_zeros` and three integer adds — cheap enough for the
//! mapping hot paths — and every field is a monotone counter, so
//! histograms merge by addition and diff by subtraction exactly like the
//! scalar telemetry counters they ride along with.
//!
//! Quantiles are estimated from the bucket boundaries: `quantile(q)`
//! returns the upper bound of the bucket containing the `⌈q·count⌉`-th
//! smallest sample (so the estimate errs high by at most 2×, the bucket
//! width). This is the classic HDR trade: bounded relative error, fixed
//! memory, O(1) recording, mergeable across jobs and threads.

/// Number of buckets: bucket 0 plus one per possible bit length.
pub const NUM_BUCKETS: usize = 64;

/// Process-wide count of out-of-order [`Histogram::since`] calls.
///
/// Deliberately *not* a telemetry [`crate::Counter`] variant: the counter
/// names are JSON keys of the benchmark artifact schema, and a
/// diagnostics-only counter must not perturb byte-identical canonical
/// artifacts. Read it with [`snapshot_inversions`].
static SNAPSHOT_INVERSIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of [`Histogram::since`] calls (since process start) that observed
/// an inverted snapshot pair — `earlier` taken *after* `self`. Any nonzero
/// value means some phase report silently truncated a window to zero.
pub fn snapshot_inversions() -> u64 {
    SNAPSHOT_INVERSIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Histogram metrics recorded by the mapping pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Signals per K-cut extracted by `turbomap::cutsearch::find_cut`.
    CutSize = 0,
    /// Augmenting paths per completed max-flow run (one per min-cut).
    AugmentationsPerCut = 1,
    /// FRTcheck / general-check label sweeps per probed Φ.
    SweepsPerPhi = 2,
    /// Span durations in nanoseconds (recorded when tracing is enabled;
    /// a timing field — canonical artifacts zero it).
    SpanNanos = 3,
    /// Cut queries per Φ probe answered from the probe-invariant expansion
    /// cache (one sample per label-check call).
    CacheHitsPerProbe = 4,
    /// Dirty-task count of each topological level large enough for the
    /// parallel LabelUpdate path. Recorded from the level size alone, so
    /// the distribution is identical for every worker count.
    ParallelBatchSize = 5,
    /// Gate count of each generated fuzz case (`crates/fuzz`), recorded
    /// after generation so the campaign's size distribution is visible.
    FuzzCaseGates = 6,
    /// Wall-clock nanoseconds per completed fuzz case (generation through
    /// oracle verdict; a timing field — canonical artifacts zero it).
    FuzzCaseNanos = 7,
    /// Per-LUT timing slack (period − depth) of each mapped gate, recorded
    /// when a mapping report is generated (`crates/report`).
    NodeSlack = 8,
    /// Derivation-log length of each Φ−1 infeasibility witness.
    WitnessSteps = 9,
    /// Node count of the critical cycle found on the mapped network at
    /// Φ−1 (recorded only when a cycle exists).
    WitnessCycleLen = 10,
    /// Gate count of each block mapped by the partition-and-conquer
    /// pipeline (`crates/partition`), recorded once per block.
    PartitionBlockGates = 11,
    /// Flip-flops frozen on each block's seam (cut registers charged to
    /// the block that consumes them), recorded once per block.
    PartitionCutFfs = 12,
}

/// Number of [`Metric`] variants.
pub const NUM_HISTS: usize = 13;

/// Stable snake_case metric names, indexed by `Metric as usize` (JSON
/// keys in the `turbomap-bench/table1/v2` artifact).
pub const HIST_NAMES: [&str; NUM_HISTS] = [
    "cut_size",
    "augmentations_per_cut",
    "sweeps_per_phi",
    "span_nanos",
    "cache_hits_per_probe",
    "parallel_batch_size",
    "fuzz_case_gates",
    "fuzz_case_nanos",
    "node_slack",
    "witness_steps",
    "witness_cycle_len",
    "partition_block_gates",
    "partition_cut_ffs",
];

/// A streaming log-bucketed histogram. All fields are monotone counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow, like the counters).
    pub sum: u64,
    /// Per-bucket sample counts; see the module docs for the layout.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise its bit length (capped at
/// the last bucket).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (the quantile estimate it yields).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Inclusive lower bound of a bucket: 0, then `2^(i-1)`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Midpoint of a bucket's value range (the deterministic single-bucket
/// estimate used by [`Histogram::percentile`]).
pub fn bucket_midpoint(index: usize) -> u64 {
    let lo = bucket_lower_bound(index);
    let hi = bucket_upper_bound(index);
    // Average without overflow (lo ≤ hi always).
    lo + (hi - lo) / 2
}

impl Histogram {
    /// An empty histogram (`const`, so it can seed thread-local state).
    pub const fn zeroed() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        for i in 0..NUM_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
    }

    /// This histogram minus an earlier snapshot: valid because every
    /// field is monotone *when the snapshots are taken in order*.
    ///
    /// Passing snapshots out of order (`earlier` newer than `self`) used
    /// to zero the affected fields silently via saturating subtraction,
    /// which reads as "no samples in this window" — a lie. The inversion
    /// is now detected: debug builds panic at the call site, release
    /// builds still saturate (a phase report is better truncated than
    /// lost mid-run) but bump the process-wide
    /// [`snapshot_inversions`] counter so the corruption is visible.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let inverted = self.count < earlier.count
            || self.sum < earlier.sum
            || (0..NUM_BUCKETS).any(|i| self.buckets[i] < earlier.buckets[i]);
        if inverted {
            SNAPSHOT_INVERSIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            debug_assert!(
                false,
                "Histogram::since called with an out-of-order snapshot \
                 (earlier count={}/sum={} vs self count={}/sum={})",
                earlier.count, earlier.sum, self.count, self.sum
            );
        }
        let mut out = Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..Histogram::default()
        };
        for i in 0..NUM_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ≤ q ≤ 1.0`), or
    /// `None` when empty. `quantile(1.0)` is the max's bucket bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(bucket_upper_bound(i));
            }
        }
        // Unreachable when count equals the bucket total, but stay safe.
        Some(bucket_upper_bound(NUM_BUCKETS - 1))
    }

    /// Deterministic percentile for reports and dashboards, defined on
    /// **every** histogram:
    ///
    /// * empty → `0` (not an error, not a stale bound),
    /// * all samples in one bucket → that bucket's midpoint (the bucket
    ///   is the entire information the histogram has; the midpoint is
    ///   the minimum-worst-case point estimate, and it is the same for
    ///   p50, p90 and p99, as it must be when n=1),
    /// * otherwise → the upper bound of the bucket holding the
    ///   `⌈q·count⌉`-th sample, exactly like [`Histogram::quantile`].
    ///
    /// [`Histogram::quantile`] keeps its `Option` shape for callers that
    /// must distinguish "no data"; this is the total function the serve
    /// metrics and `benchdiff` build on.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let nonzero = self.nonzero_buckets();
        if let [(only, _)] = nonzero.as_slice() {
            return bucket_midpoint(*only);
        }
        self.quantile(q).unwrap_or(0)
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending — the
    /// compact form the JSON artifact stores.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 1, 2, 3, 5, 8, 13, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 133);
        // Median lands in the bucket of 2..=3.
        assert_eq!(h.quantile(0.5), Some(3));
        // The top sample (100) is in bucket [64, 127].
        assert_eq!(h.quantile(1.0), Some(127));
        assert!((h.mean() - 133.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_since_are_inverse() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..10 {
            a.record(v);
        }
        for v in 100..105 {
            b.record(v);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count, 15);
        assert_eq!(merged.since(&a), b);
        assert_eq!(merged.since(&b), a);
    }

    #[test]
    fn since_in_order_does_not_bump_inversion_counter() {
        let before = snapshot_inversions();
        let mut early = Histogram::new();
        early.record(3);
        let mut late = early;
        late.record(9);
        let diff = late.since(&early);
        assert_eq!(diff.count, 1);
        assert_eq!(diff.sum, 9);
        assert_eq!(snapshot_inversions(), before);
    }

    #[test]
    fn since_out_of_order_is_detected() {
        let mut early = Histogram::new();
        early.record(3);
        let mut late = early;
        late.record(9);
        let before = snapshot_inversions();
        // Arguments swapped: `earlier` is the newer snapshot.
        let result = std::panic::catch_unwind(|| early.since(&late));
        assert_eq!(snapshot_inversions(), before + 1);
        if cfg!(debug_assertions) {
            // Debug builds fail fast at the call site.
            assert!(result.is_err());
        } else {
            // Release builds keep the (truncated) saturating behaviour.
            let diff = result.unwrap();
            assert_eq!(diff.count, 0);
            assert_eq!(diff.sum, 0);
        }
    }

    #[test]
    fn percentile_is_total_and_deterministic() {
        // Empty: every percentile is exactly 0, twice in a row.
        let empty = Histogram::new();
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(empty.percentile(q), 0);
            assert_eq!(empty.percentile(q), 0);
        }
        // Single-bucket: the bucket midpoint, for every percentile.
        // Samples 4..=7 land in bucket 3 → midpoint of [4,7] is 5.
        let mut single = Histogram::new();
        for v in [4u64, 5, 6, 7, 4] {
            single.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(single.percentile(q), 5, "q={q}");
        }
        // Single-bucket at zero: midpoint of [0,0] is 0.
        let mut zeros = Histogram::new();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0);
        // Multi-bucket: agrees with `quantile`'s upper-bound estimate.
        let mut multi = Histogram::new();
        for v in [1u64, 1, 2, 3, 5, 8, 13, 100] {
            multi.record(v);
        }
        assert_eq!(multi.percentile(0.5), multi.quantile(0.5).unwrap());
        assert_eq!(multi.percentile(0.5), 3);
        assert_eq!(multi.percentile(1.0), 127);
    }

    #[test]
    fn bucket_bounds_and_midpoints() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(3), 4);
        assert_eq!(bucket_midpoint(0), 0);
        assert_eq!(bucket_midpoint(1), 1);
        assert_eq!(bucket_midpoint(3), 5); // [4,7] → 5
        assert_eq!(bucket_midpoint(4), 11); // [8,15] → 11
                                            // The top bucket's midpoint stays finite and in range.
        assert!(bucket_midpoint(NUM_BUCKETS - 1) >= bucket_lower_bound(NUM_BUCKETS - 1));
    }

    #[test]
    fn nonzero_buckets_compact() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (3, 1)]);
    }

    #[test]
    fn names_cover_metrics() {
        assert_eq!(HIST_NAMES.len(), NUM_HISTS);
        assert_eq!(HIST_NAMES[Metric::SpanNanos as usize], "span_nanos");
        assert_eq!(HIST_NAMES[Metric::NodeSlack as usize], "node_slack");
        assert_eq!(
            HIST_NAMES[Metric::WitnessCycleLen as usize],
            "witness_cycle_len"
        );
        assert_eq!(
            HIST_NAMES[Metric::PartitionBlockGates as usize],
            "partition_block_gates"
        );
        assert_eq!(
            HIST_NAMES[Metric::PartitionCutFfs as usize],
            "partition_cut_ffs"
        );
        assert_eq!(Metric::PartitionCutFfs as usize, NUM_HISTS - 1);
        let unique: std::collections::HashSet<&str> = HIST_NAMES.iter().copied().collect();
        assert_eq!(unique.len(), NUM_HISTS);
    }
}
