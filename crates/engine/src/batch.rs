//! Batch job runner: isolation, deadlines, telemetry, stable ordering.
//!
//! [`run_batch`] executes a vector of [`JobSpec`]s on a [`Pool`](crate::Pool):
//!
//! * **Panic isolation** — each job body runs under
//!   [`std::panic::catch_unwind`]; a panicking job becomes
//!   [`JobOutcome::Panicked`] with the panic message, and its siblings
//!   (and the suite) keep running.
//! * **Soft deadlines** — a watchdog thread trips the job's
//!   [`CancelToken`](crate::CancelToken) when its deadline passes; the
//!   job observes the token cooperatively (deep loops poll
//!   [`cancel::cancelled`](crate::cancel::cancelled)) and unwinds with an
//!   error, reported as [`JobOutcome::DeadlineExceeded`].
//! * **Telemetry** — counters and phase timers are reset when the job
//!   starts on its worker and harvested into the report when it ends.
//! * **Deterministic ordering** — reports come back in submission order
//!   regardless of worker count or completion order.

use crate::cancel::{self, CancelReason, CancelToken};
use crate::pool::Pool;
use crate::telemetry::{self, Telemetry};
use crate::trace::{self, TraceBuffer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One job: a name, an optional per-job deadline, and the work closure.
pub struct JobSpec<T> {
    /// Display name (circuit name, file path, …).
    pub name: String,
    /// Per-job soft deadline; `None` falls back to
    /// [`BatchOptions::timeout`].
    pub timeout: Option<Duration>,
    work: Box<dyn FnOnce() -> Result<T, String> + Send + 'static>,
}

impl<T> JobSpec<T> {
    /// Creates a job with the batch-default deadline.
    pub fn new(
        name: impl Into<String>,
        work: impl FnOnce() -> Result<T, String> + Send + 'static,
    ) -> JobSpec<T> {
        JobSpec {
            name: name.into(),
            timeout: None,
            work: Box::new(work),
        }
    }

    /// Sets a per-job deadline overriding the batch default.
    pub fn with_timeout(mut self, timeout: Duration) -> JobSpec<T> {
        self.timeout = Some(timeout);
        self
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job returned a value.
    Completed(T),
    /// The job returned an error.
    Failed(String),
    /// The job panicked; the payload message is preserved.
    Panicked(String),
    /// The watchdog fired the job's deadline and the job observed it.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        limit: Duration,
    },
}

impl<T> JobOutcome<T> {
    /// True for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// A short status keyword: `ok`, `failed`, `panicked`, `deadline`.
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "ok",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::Panicked(_) => "panicked",
            JobOutcome::DeadlineExceeded { .. } => "deadline",
        }
    }
}

/// One job's report.
#[derive(Debug, Clone)]
pub struct JobReport<T> {
    /// The job's name, as given in its [`JobSpec`].
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome<T>,
    /// Wall-clock time the job spent on its worker.
    pub wall: Duration,
    /// Telemetry harvested from the job's worker thread.
    pub telemetry: Telemetry,
    /// Trace events harvested from the job's worker thread, when
    /// tracing was enabled ([`trace::set_enabled`]); `None` otherwise.
    pub trace: Option<TraceBuffer>,
}

/// Batch execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads (0 → one worker).
    pub jobs: usize,
    /// Default per-job deadline (`None` → no deadline).
    pub timeout: Option<Duration>,
}

impl BatchOptions {
    /// Options with `jobs` workers and no deadline.
    pub fn with_jobs(jobs: usize) -> BatchOptions {
        BatchOptions {
            jobs,
            timeout: None,
        }
    }

    /// Sets the default per-job deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> BatchOptions {
        self.timeout = Some(timeout);
        self
    }
}

/// A deadline registered with the watchdog.
struct Watch {
    deadline: Instant,
    token: CancelToken,
}

#[derive(Default)]
struct WatchdogState {
    watches: Vec<Watch>,
    closed: bool,
}

struct Watchdog {
    state: Mutex<WatchdogState>,
    changed: Condvar,
}

impl Watchdog {
    fn new() -> Arc<Watchdog> {
        Arc::new(Watchdog {
            state: Mutex::new(WatchdogState::default()),
            changed: Condvar::new(),
        })
    }

    /// Registers a deadline for `token`; returns after noting it.
    fn register(&self, deadline: Instant, token: CancelToken) {
        let mut st = self.state.lock().expect("watchdog poisoned");
        st.watches.push(Watch { deadline, token });
        drop(st);
        self.changed.notify_one();
    }

    fn close(&self) {
        self.state.lock().expect("watchdog poisoned").closed = true;
        self.changed.notify_one();
    }

    /// The watchdog loop: sleep until the earliest pending deadline,
    /// trip expired tokens, drop entries whose token is already tripped
    /// or whose job finished (finished jobs leave tokens live forever,
    /// so entries are also pruned once expired).
    fn run(&self) {
        let mut st = self.state.lock().expect("watchdog poisoned");
        loop {
            let now = Instant::now();
            st.watches.retain(|w| {
                if w.token.is_cancelled() {
                    return false;
                }
                if w.deadline <= now {
                    w.token.cancel_deadline();
                    return false;
                }
                true
            });
            if st.closed && st.watches.is_empty() {
                return;
            }
            let next = st.watches.iter().map(|w| w.deadline).min();
            st = match next {
                Some(when) => {
                    let wait = when.saturating_duration_since(Instant::now());
                    self.changed
                        .wait_timeout(st, wait)
                        .expect("watchdog poisoned")
                        .0
                }
                None => self.changed.wait(st).expect("watchdog poisoned"),
            };
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `specs` on `opts.jobs` workers and returns one report per job,
/// **in submission order**.
pub fn run_batch<T: Send + 'static>(
    specs: Vec<JobSpec<T>>,
    opts: &BatchOptions,
) -> Vec<JobReport<T>> {
    let total = specs.len();
    let results: Arc<Mutex<Vec<Option<JobReport<T>>>>> =
        Arc::new(Mutex::new((0..total).map(|_| None).collect()));
    let watchdog = Watchdog::new();
    let watchdog_thread = {
        let wd = Arc::clone(&watchdog);
        std::thread::Builder::new()
            .name("engine-watchdog".into())
            .spawn(move || wd.run())
            .expect("spawn watchdog")
    };

    {
        let mut pool = Pool::new(opts.jobs);
        for (index, spec) in specs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let watchdog = Arc::clone(&watchdog);
            let timeout = spec.timeout.or(opts.timeout);
            let name = spec.name;
            let work = spec.work;
            pool.spawn(move || {
                let token = CancelToken::new();
                let limit = timeout;
                if let Some(t) = limit {
                    watchdog.register(Instant::now() + t, token.clone());
                }
                let guard = cancel::install(token.clone());
                telemetry::reset();
                trace::job_start();
                // Log lines emitted inside the job body carry its name.
                let log_guard = crate::log::with_job(name.clone());
                let start = Instant::now();
                let caught = catch_unwind(AssertUnwindSafe(work));
                let wall = start.elapsed();
                drop(log_guard);
                let telemetry = telemetry::take();
                let trace = trace::take_if_enabled();
                drop(guard);
                let deadline_hit = token.reason() == Some(CancelReason::Deadline);
                // A tripped deadline that the job outran is still a
                // success; only jobs that bailed out report it.
                let outcome = match caught {
                    Ok(Ok(v)) => JobOutcome::Completed(v),
                    Ok(Err(_)) if deadline_hit => JobOutcome::DeadlineExceeded {
                        limit: limit.unwrap_or(Duration::ZERO),
                    },
                    Ok(Err(e)) => JobOutcome::Failed(e),
                    Err(_) if deadline_hit => JobOutcome::DeadlineExceeded {
                        limit: limit.unwrap_or(Duration::ZERO),
                    },
                    Err(payload) => JobOutcome::Panicked(panic_message(payload)),
                };
                // Outrun deadlines leave the token tripped; cancel()ing
                // here is a no-op either way, so nothing to unwind.
                results.lock().expect("results poisoned")[index] = Some(JobReport {
                    name,
                    outcome,
                    wall,
                    telemetry,
                    trace,
                });
            });
        }
        // Pool drop waits for all jobs.
    }
    watchdog.close();
    let _ = watchdog_thread.join();

    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("batch results still shared"))
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|r| r.expect("every job reports"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order_any_job_count() {
        for jobs in [1, 2, 8] {
            let specs: Vec<JobSpec<usize>> = (0..16)
                .map(|i| JobSpec::new(format!("j{i}"), move || Ok(i)))
                .collect();
            let reports = run_batch(specs, &BatchOptions::with_jobs(jobs));
            let values: Vec<usize> = reports
                .iter()
                .map(|r| *r.outcome.completed().unwrap())
                .collect();
            assert_eq!(values, (0..16).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        let specs: Vec<JobSpec<u32>> = vec![
            JobSpec::new("ok1", || Ok(1)),
            JobSpec::new("boom", || panic!("deliberate test panic")),
            JobSpec::new("ok2", || Ok(2)),
        ];
        let reports = run_batch(specs, &BatchOptions::with_jobs(2));
        assert!(matches!(reports[0].outcome, JobOutcome::Completed(1)));
        match &reports[1].outcome {
            JobOutcome::Panicked(msg) => assert!(msg.contains("deliberate test panic")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(matches!(reports[2].outcome, JobOutcome::Completed(2)));
        assert_eq!(reports[1].outcome.status(), "panicked");
    }

    #[test]
    fn failing_job_reports_error() {
        let specs: Vec<JobSpec<u32>> =
            vec![JobSpec::new("bad", || Err("no such file".to_string()))];
        let reports = run_batch(specs, &BatchOptions::with_jobs(1));
        assert!(matches!(&reports[0].outcome, JobOutcome::Failed(e) if e == "no such file"));
    }

    #[test]
    fn deadline_fires_on_cooperative_slow_job() {
        let specs: Vec<JobSpec<u32>> = vec![
            JobSpec::new("slow", || {
                // A cooperative loop that polls its cancellation token,
                // the way the Φ search and FRTcheck sweeps do.
                let t0 = Instant::now();
                while !cancel::cancelled() {
                    if t0.elapsed() > Duration::from_secs(30) {
                        return Err("watchdog never fired".into());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err("cancelled".into())
            })
            .with_timeout(Duration::from_millis(50)),
            JobSpec::new("fast", || Ok(7)),
        ];
        let reports = run_batch(specs, &BatchOptions::with_jobs(2));
        match reports[0].outcome {
            JobOutcome::DeadlineExceeded { limit } => {
                assert_eq!(limit, Duration::from_millis(50));
            }
            ref other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(reports[0].wall >= Duration::from_millis(50));
        assert!(matches!(reports[1].outcome, JobOutcome::Completed(7)));
    }

    #[test]
    fn job_that_outruns_deadline_still_completes() {
        // Deadline trips, but the job finishes with Ok anyway.
        let specs: Vec<JobSpec<u32>> = vec![JobSpec::new("outrun", || {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(40) {
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(9)
        })
        .with_timeout(Duration::from_millis(10))];
        let reports = run_batch(specs, &BatchOptions::with_jobs(1));
        assert!(matches!(reports[0].outcome, JobOutcome::Completed(9)));
    }

    #[test]
    fn batch_default_timeout_applies() {
        let opts = BatchOptions::with_jobs(1).with_timeout(Duration::from_millis(30));
        let specs: Vec<JobSpec<u32>> = vec![JobSpec::new("slow", || {
            let t0 = Instant::now();
            while !cancel::cancelled() {
                if t0.elapsed() > Duration::from_secs(30) {
                    return Err("watchdog never fired".into());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err("cancelled".into())
        })];
        let reports = run_batch(specs, &opts);
        assert_eq!(reports[0].outcome.status(), "deadline");
    }

    #[test]
    fn telemetry_is_per_job() {
        use crate::telemetry::Counter;
        let specs: Vec<JobSpec<u32>> = vec![
            JobSpec::new("a", || {
                telemetry::count(Counter::FrtSweeps, 5);
                Ok(0)
            }),
            JobSpec::new("b", || {
                telemetry::count(Counter::FrtSweeps, 11);
                Ok(0)
            }),
        ];
        // Single worker: both jobs share a thread; counts must not bleed.
        let reports = run_batch(specs, &BatchOptions::with_jobs(1));
        assert_eq!(reports[0].telemetry.counter(Counter::FrtSweeps), 5);
        assert_eq!(reports[1].telemetry.counter(Counter::FrtSweeps), 11);
    }

    #[test]
    fn empty_batch_is_fine() {
        let reports = run_batch(Vec::<JobSpec<u32>>::new(), &BatchOptions::with_jobs(4));
        assert!(reports.is_empty());
    }
}
