//! A small deterministic PRNG (splitmix64), std-only.
//!
//! Replaces the external `rand` crate for workload generation and
//! randomized tests: the container has no registry access, and the
//! generators only need reproducible, well-mixed streams — not
//! cryptographic strength. Splitmix64 passes BigCrush and, unlike raw
//! xorshift, has no weak low bits, so `below`/`chance` can use simple
//! reductions.

/// A 64-bit splitmix64 generator. `Clone` copies the stream state.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator seeded with `seed` (any value, including 0,
    /// yields a full-quality stream — splitmix64 has no bad seeds).
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is
    /// at most 2⁻⁶⁴·n — irrelevant for workload generation.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below(0)");
        let wide = u128::from(self.next_u64()) * (n as u128);
        (wide >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng64::range_usize: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng64::range_i64: empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo.wrapping_add((wide >> 64) as i64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare the top 53 bits against p scaled to the same lattice.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = Rng64::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_bounds() {
        let mut rng = Rng64::new(9);
        for _ in 0..500 {
            let v = rng.range_usize(10, 20);
            assert!((10..20).contains(&v));
            let w = rng.range_i64(-4, 4);
            assert!((-4..4).contains(&w));
        }
    }

    #[test]
    fn chance_extremes_and_rough_frequency() {
        let mut rng = Rng64::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng64::new(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Rng64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
