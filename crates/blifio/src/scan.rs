//! Streaming logical-line scanner.
//!
//! Reads the input through a fixed-size chunk buffer (never the whole
//! file), strips `#` comments, folds `\`-newline continuations — which
//! may fall anywhere, including across chunk boundaries — and yields one
//! *logical line* at a time as a reused token buffer. Every token
//! remembers its original (line, column), so diagnostics stay precise
//! through continuations; the physical source lines feeding the current
//! logical line are retained (bounded) for caret rendering.

use std::io::Read;

/// Default chunk size for streaming reads.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// Cap on the retained text of one physical line (diagnostics only).
const SRC_LINE_CAP: usize = 240;

/// Cap on retained physical lines per logical line (diagnostics only).
const SRC_LINES_CAP: usize = 8;

/// One token's position inside a [`LineBuf`].
#[derive(Debug, Clone, Copy)]
pub struct TokSpan {
    start: u32,
    len: u32,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A reusable logical-line buffer: token text plus per-token positions.
#[derive(Debug, Default)]
pub struct LineBuf {
    text: String,
    toks: Vec<TokSpan>,
    src_lines: Vec<(u32, String)>,
}

impl LineBuf {
    fn clear(&mut self) {
        self.text.clear();
        self.toks.clear();
        self.src_lines.clear();
    }

    /// Number of tokens on the logical line.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// True when the line has no tokens.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        let t = self.toks[i];
        &self.text[t.start as usize..(t.start + t.len) as usize]
    }

    /// (line, col) of token `i`.
    pub fn pos(&self, i: usize) -> (usize, usize) {
        let t = self.toks[i];
        (t.line as usize, t.col as usize)
    }

    /// Source line of the first token (the logical line's anchor).
    pub fn line(&self) -> usize {
        self.toks.first().map_or(0, |t| t.line as usize)
    }

    /// The retained physical source line numbered `line`, if any.
    pub fn source_line(&self, line: usize) -> Option<&str> {
        self.src_lines
            .iter()
            .find(|(n, _)| *n as usize == line)
            .map(|(_, s)| s.as_str())
    }

    /// A positioned diagnostic anchored at token `i`, with the source
    /// excerpt attached when retained.
    pub fn diag_at(&self, i: usize, message: impl Into<String>) -> crate::Diag {
        let (line, col) = if i < self.toks.len() {
            self.pos(i)
        } else {
            (self.line(), 0)
        };
        let d = crate::Diag::new(line, col, message);
        match self.source_line(line) {
            Some(src) => d.with_source(src),
            None => d,
        }
    }

    /// Joins the tokens with single spaces (used to hand embedded KISS
    /// lines to the KISS parser).
    pub fn joined(&self) -> String {
        let mut out = String::new();
        for i in 0..self.len() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.tok(i));
        }
        out
    }
}

/// Streaming scanner over any `Read`.
pub struct Scanner<R: Read> {
    src: R,
    chunk: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    /// 1-based current line/column.
    line: u32,
    col: u32,
    /// Raw text of the current physical line (capped, for diagnostics).
    recent: String,
    recent_line: u32,
    /// Total bytes consumed (for progress/metrics).
    consumed: u64,
}

impl<R: Read> Scanner<R> {
    /// A scanner with the default chunk size.
    pub fn new(src: R) -> Scanner<R> {
        Scanner::with_chunk(src, DEFAULT_CHUNK)
    }

    /// A scanner with an explicit chunk size (tests use tiny chunks to
    /// exercise tokens and continuations spanning buffer boundaries).
    pub fn with_chunk(src: R, chunk: usize) -> Scanner<R> {
        Scanner {
            src,
            chunk: vec![0; chunk.max(1)],
            pos: 0,
            len: 0,
            eof: false,
            line: 1,
            col: 1,
            recent: String::new(),
            recent_line: 1,
            consumed: 0,
        }
    }

    /// Total bytes consumed so far.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    fn fill(&mut self) -> std::io::Result<()> {
        if self.pos < self.len || self.eof {
            return Ok(());
        }
        let n = self.src.read(&mut self.chunk)?;
        self.pos = 0;
        self.len = n;
        if n == 0 {
            self.eof = true;
        }
        Ok(())
    }

    fn next_byte(&mut self) -> std::io::Result<Option<u8>> {
        self.fill()?;
        if self.pos >= self.len {
            return Ok(None);
        }
        let b = self.chunk[self.pos];
        self.pos += 1;
        self.consumed += 1;
        Ok(Some(b))
    }

    fn peek_byte(&mut self) -> std::io::Result<Option<u8>> {
        self.fill()?;
        Ok(if self.pos < self.len {
            Some(self.chunk[self.pos])
        } else {
            None
        })
    }

    /// Scans the next non-empty logical line into `out` (reusing its
    /// buffers). Returns `false` at end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader.
    pub fn next_line(&mut self, out: &mut LineBuf) -> std::io::Result<bool> {
        out.clear();
        let mut tok_open = false;
        let mut in_comment = false;
        loop {
            let Some(b) = self.next_byte()? else {
                // EOF: flush whatever is pending.
                if !out.is_empty() {
                    self.end_physical_line(out, true);
                    return Ok(true);
                }
                return Ok(false);
            };
            match b {
                b'\n' => {
                    let had_content = !out.is_empty();
                    self.end_physical_line(out, had_content);
                    in_comment = false;
                    tok_open = false;
                    if had_content {
                        return Ok(true);
                    }
                }
                b'\r' => {}
                _ if in_comment => {
                    self.push_recent(b);
                    self.col += 1;
                }
                b'#' => {
                    self.push_recent(b);
                    self.col += 1;
                    in_comment = true;
                    tok_open = false;
                }
                b'\\' => {
                    self.push_recent(b);
                    // `\` immediately before the newline is a continuation:
                    // the newline is swallowed, the logical line goes on.
                    // (A `\r` between them is tolerated.)
                    let mut nl = matches!(self.peek_byte()?, Some(b'\n') | None);
                    if matches!(self.peek_byte()?, Some(b'\r')) {
                        // Consume the \r and look again.
                        self.next_byte()?;
                        nl = matches!(self.peek_byte()?, Some(b'\n') | None);
                    }
                    if nl {
                        if self.next_byte()?.is_some() {
                            self.end_physical_line(out, !out.is_empty());
                        }
                        tok_open = false;
                    } else {
                        // Literal backslash inside a name.
                        self.extend_token(out, b, &mut tok_open);
                        self.col += 1;
                    }
                }
                b' ' | b'\t' => {
                    self.push_recent(b);
                    self.col += 1;
                    tok_open = false;
                }
                _ => {
                    self.push_recent(b);
                    self.extend_token(out, b, &mut tok_open);
                    self.col += 1;
                }
            }
        }
    }

    fn extend_token(&mut self, out: &mut LineBuf, b: u8, tok_open: &mut bool) {
        if !*tok_open {
            out.toks.push(TokSpan {
                start: out.text.len() as u32,
                len: 0,
                line: self.line,
                col: self.col,
            });
            *tok_open = true;
        }
        out.text.push(b as char);
        out.toks.last_mut().expect("token open").len += 1;
    }

    fn push_recent(&mut self, b: u8) {
        if self.recent.len() < SRC_LINE_CAP {
            self.recent.push(b as char);
        }
    }

    /// Ends the current physical line: records its text for diagnostics
    /// (when the logical line in progress has content) and advances the
    /// position counters.
    fn end_physical_line(&mut self, out: &mut LineBuf, record: bool) {
        if record && out.src_lines.len() < SRC_LINES_CAP {
            out.src_lines
                .push((self.recent_line, std::mem::take(&mut self.recent)));
        } else {
            self.recent.clear();
        }
        self.line += 1;
        self.col = 1;
        self.recent_line = self.line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(text: &str, chunk: usize) -> Vec<Vec<(String, usize, usize)>> {
        let mut sc = Scanner::with_chunk(text.as_bytes(), chunk);
        let mut lb = LineBuf::default();
        let mut all = Vec::new();
        while sc.next_line(&mut lb).unwrap() {
            let mut row = Vec::new();
            for i in 0..lb.len() {
                let (l, c) = lb.pos(i);
                row.push((lb.tok(i).to_string(), l, c));
            }
            all.push(row);
        }
        all
    }

    #[test]
    fn tokens_and_positions() {
        let got = lines(".model top\n.inputs a bb\n", 4096);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0][0], (".model".into(), 1, 1));
        assert_eq!(got[0][1], ("top".into(), 1, 8));
        assert_eq!(got[1][2], ("bb".into(), 2, 11));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let got = lines("# header\n\n.model m # trailing\n", 4096);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].len(), 2);
    }

    #[test]
    fn continuation_joins_lines() {
        let got = lines(".inputs a \\\nb c\n.outputs z\n", 4096);
        assert_eq!(got.len(), 2);
        let toks: Vec<&str> = got[0].iter().map(|(t, _, _)| t.as_str()).collect();
        assert_eq!(toks, [".inputs", "a", "b", "c"]);
        // `b` keeps its real position on line 2.
        assert_eq!(got[0][2].1, 2);
        assert_eq!(got[0][2].2, 1);
    }

    #[test]
    fn continuation_spans_chunk_boundaries() {
        // Exercise every chunk size down to one byte: the continuation
        // backslash+newline and multi-byte tokens straddle boundaries.
        let text = ".names alpha \\\r\nbeta gamma\n# c\n.latch p q 0\n";
        let want = lines(text, 4096);
        for chunk in 1..16 {
            assert_eq!(lines(text, chunk), want, "chunk={chunk}");
        }
    }

    #[test]
    fn backslash_inside_name_is_literal() {
        let got = lines(".names a\\b z\n", 4096);
        assert_eq!(got[0][1].0, "a\\b");
    }

    #[test]
    fn eof_without_newline_flushes() {
        let got = lines(".end", 3);
        assert_eq!(got[0][0].0, ".end");
    }

    #[test]
    fn diag_carries_source_excerpt() {
        let mut sc = Scanner::new(".model m\n.latch a b zz\n".as_bytes());
        let mut lb = LineBuf::default();
        sc.next_line(&mut lb).unwrap();
        sc.next_line(&mut lb).unwrap();
        let d = lb.diag_at(3, "bad latch init `zz`");
        let r = d.render();
        assert!(r.contains("line 2, col 12"), "{r}");
        assert!(r.contains(".latch a b zz"), "{r}");
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'), "{r}");
    }
}
