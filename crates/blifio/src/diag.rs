//! Precise parse/link diagnostics: line + column, the offending source
//! line, and a caret rendering.
//!
//! [`Diag`] is the shared error currency of the front-end. It converts
//! into [`netlist::NetlistError::Parse`] (keeping the stable `line` +
//! `message` shape callers of the old parser rely on) while the richer
//! [`Diag::render`] form — source excerpt plus a `^` caret under the
//! offending column — is what the CLI shows users.

use netlist::NetlistError;

/// One diagnostic: where, what, and (when available) the source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// 1-based source line (0 when unknown, e.g. I/O errors).
    pub line: usize,
    /// 1-based column of the offending token (0 when unknown).
    pub col: usize,
    /// What went wrong.
    pub message: String,
    /// The offending physical source line, when the scanner still had it.
    pub source: Option<String>,
}

impl Diag {
    /// A diagnostic with a position but no source excerpt.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Diag {
        Diag {
            line,
            col,
            message: message.into(),
            source: None,
        }
    }

    /// Attaches the offending source line (for the caret rendering).
    #[must_use]
    pub fn with_source(mut self, source: impl Into<String>) -> Diag {
        self.source = Some(source.into());
        self
    }

    /// Multi-line rendering with the source excerpt and a caret:
    ///
    /// ```text
    /// line 3, col 8: bad latch init `q`
    ///   .latch a b q
    ///          ^
    /// ```
    pub fn render(&self) -> String {
        let mut out = self.to_string();
        if let Some(src) = &self.source {
            out.push_str("\n  ");
            out.push_str(src.trim_end());
            if self.col > 0 {
                out.push_str("\n  ");
                // The excerpt is byte-for-byte what the scanner saw, so a
                // byte-column caret lines up for ASCII BLIF (the format is
                // ASCII; multibyte names shift the caret, never panic).
                let pad = src
                    .chars()
                    .take(self.col.saturating_sub(1))
                    .map(|ch| if ch == '\t' { '\t' } else { ' ' })
                    .collect::<String>();
                out.push_str(&pad);
                out.push('^');
            }
        }
        out
    }
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 && self.col > 0 {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        } else if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for Diag {}

impl From<Diag> for NetlistError {
    fn from(d: Diag) -> NetlistError {
        NetlistError::Parse {
            line: d.line,
            message: d.message,
        }
    }
}

/// Front-end errors: a positioned diagnostic, an I/O failure, or a
/// circuit-construction error bubbled up from `netlist`.
#[derive(Debug)]
pub enum BlifError {
    /// Positioned syntax/semantics problem.
    Diag(Diag),
    /// I/O failure while streaming the input.
    Io(std::io::Error),
    /// Circuit construction rejected the flattened netlist.
    Build(NetlistError),
}

impl BlifError {
    /// Caret-rendered form (falls back to `Display` for non-diagnostics).
    pub fn render(&self) -> String {
        match self {
            BlifError::Diag(d) => d.render(),
            other => other.to_string(),
        }
    }
}

impl std::fmt::Display for BlifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlifError::Diag(d) => write!(f, "{d}"),
            BlifError::Io(e) => write!(f, "I/O error: {e}"),
            BlifError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BlifError {}

impl From<Diag> for BlifError {
    fn from(d: Diag) -> BlifError {
        BlifError::Diag(d)
    }
}

impl From<std::io::Error> for BlifError {
    fn from(e: std::io::Error) -> BlifError {
        BlifError::Io(e)
    }
}

impl From<NetlistError> for BlifError {
    fn from(e: NetlistError) -> BlifError {
        BlifError::Build(e)
    }
}

impl From<BlifError> for NetlistError {
    fn from(e: BlifError) -> NetlistError {
        match e {
            BlifError::Diag(d) => d.into(),
            BlifError::Io(io) => NetlistError::Parse {
                line: 0,
                message: format!("I/O error: {io}"),
            },
            BlifError::Build(n) => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_places_caret() {
        let d = Diag::new(3, 8, "bad latch init `q`").with_source(".latch a b q");
        let r = d.render();
        assert!(r.contains("line 3, col 8"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1], "  .latch a b q");
        assert_eq!(lines[2], "         ^");
    }

    #[test]
    fn converts_to_stable_netlist_parse() {
        let d = Diag::new(7, 2, "boom");
        let n: NetlistError = d.into();
        match n {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 7);
                assert_eq!(message, "boom");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
