//! Name-insensitive structural equality between circuits.
//!
//! Flattening gives hierarchical instances path-prefixed names, so
//! comparing a linked circuit against a hand-flattened equivalent must
//! ignore node names. The check pairs the circuits' PIs and POs by
//! position and walks fanin cones in lockstep, requiring matching node
//! kinds, truth tables, fanin arity/order, and per-edge FF chains, with
//! a consistent (bijective) node correspondence throughout.

use netlist::{Circuit, NodeId};
use std::collections::HashMap;

/// Returns `None` when the circuits are structurally identical, or a
/// human-readable description of the first mismatch found.
pub fn structural_diff(a: &Circuit, b: &Circuit) -> Option<String> {
    if a.inputs().len() != b.inputs().len() {
        return Some(format!(
            "PI count {} vs {}",
            a.inputs().len(),
            b.inputs().len()
        ));
    }
    if a.outputs().len() != b.outputs().len() {
        return Some(format!(
            "PO count {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        ));
    }
    if a.num_gates() != b.num_gates() {
        return Some(format!("gate count {} vs {}", a.num_gates(), b.num_gates()));
    }
    if a.num_edges() != b.num_edges() {
        return Some(format!("edge count {} vs {}", a.num_edges(), b.num_edges()));
    }

    let mut ab: HashMap<NodeId, NodeId> = HashMap::new();
    let mut ba: HashMap<NodeId, NodeId> = HashMap::new();
    let mut stack: Vec<(NodeId, NodeId)> = Vec::new();
    let mut pair = |x: NodeId, y: NodeId, stack: &mut Vec<(NodeId, NodeId)>| -> Option<String> {
        match (ab.get(&x), ba.get(&y)) {
            (Some(&py), _) if py != y => Some(format!(
                "node `{}` maps to both `{}` and `{}`",
                a.node(x).name(),
                b.node(py).name(),
                b.node(y).name()
            )),
            (_, Some(&px)) if px != x => Some(format!(
                "node `{}` matched by both `{}` and `{}`",
                b.node(y).name(),
                a.node(px).name(),
                a.node(x).name()
            )),
            (Some(_), _) => None, // already paired consistently
            _ => {
                ab.insert(x, y);
                ba.insert(y, x);
                stack.push((x, y));
                None
            }
        }
    };

    for (&x, &y) in a.inputs().iter().zip(b.inputs().iter()) {
        if let Some(d) = pair(x, y, &mut stack) {
            return Some(d);
        }
    }
    for (&x, &y) in a.outputs().iter().zip(b.outputs().iter()) {
        if let Some(d) = pair(x, y, &mut stack) {
            return Some(d);
        }
    }

    while let Some((x, y)) = stack.pop() {
        let (nx, ny) = (a.node(x), b.node(y));
        // Kind compares the discriminant only; gate functions (which
        // `NodeKind::Gate` embeds) get their own message below.
        if std::mem::discriminant(nx.kind()) != std::mem::discriminant(ny.kind()) {
            return Some(format!(
                "kind mismatch at `{}` vs `{}`",
                nx.name(),
                ny.name()
            ));
        }
        if nx.function() != ny.function() {
            return Some(format!(
                "function mismatch at `{}` vs `{}`",
                nx.name(),
                ny.name()
            ));
        }
        if nx.fanin().len() != ny.fanin().len() {
            return Some(format!(
                "fanin arity mismatch at `{}` ({}) vs `{}` ({})",
                nx.name(),
                nx.fanin().len(),
                ny.name(),
                ny.fanin().len()
            ));
        }
        if nx.fanout().len() != ny.fanout().len() {
            return Some(format!(
                "fanout arity mismatch at `{}` vs `{}`",
                nx.name(),
                ny.name()
            ));
        }
        for (&ea, &eb) in nx.fanin().iter().zip(ny.fanin().iter()) {
            if a.edge(ea).ffs() != b.edge(eb).ffs() {
                return Some(format!(
                    "FF chain mismatch on fanin of `{}` vs `{}`",
                    nx.name(),
                    ny.name()
                ));
            }
            if let Some(d) = pair(a.edge(ea).from(), b.edge(eb).from(), &mut stack) {
                return Some(d);
            }
        }
    }
    None
}

/// True when [`structural_diff`] finds no mismatch.
pub fn structurally_equal(a: &Circuit, b: &Circuit) -> bool {
    structural_diff(a, b).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Bit, TruthTable};

    fn counter(name: &str, gate: &str) -> Circuit {
        let mut c = Circuit::new(name);
        let en = c.add_input("en").unwrap();
        let x = c.add_gate(gate, TruthTable::xor(2)).unwrap();
        let q = c.add_output("q").unwrap();
        c.connect(en, x, vec![]).unwrap();
        c.connect(x, x, vec![Bit::Zero]).unwrap();
        c.connect(x, q, vec![]).unwrap();
        c
    }

    #[test]
    fn equal_up_to_names() {
        let a = counter("a", "x");
        let b = counter("b", "completely.different$name");
        assert!(structurally_equal(&a, &b));
    }

    #[test]
    fn detects_init_difference() {
        let a = counter("a", "x");
        let mut b = Circuit::new("b");
        let en = b.add_input("en").unwrap();
        let x = b.add_gate("x", TruthTable::xor(2)).unwrap();
        let q = b.add_output("q").unwrap();
        b.connect(en, x, vec![]).unwrap();
        b.connect(x, x, vec![Bit::One]).unwrap();
        b.connect(x, q, vec![]).unwrap();
        let d = structural_diff(&a, &b).unwrap();
        assert!(d.contains("FF chain"), "{d}");
    }

    #[test]
    fn detects_function_difference() {
        let a = counter("a", "x");
        let mut b = Circuit::new("b");
        let en = b.add_input("en").unwrap();
        let x = b.add_gate("x", TruthTable::or(2)).unwrap();
        let q = b.add_output("q").unwrap();
        b.connect(en, x, vec![]).unwrap();
        b.connect(x, x, vec![Bit::Zero]).unwrap();
        b.connect(x, q, vec![]).unwrap();
        let d = structural_diff(&a, &b).unwrap();
        assert!(d.contains("function"), "{d}");
    }
}
