//! Industrial BLIF front-end: a streaming, full-spec reader with yosys
//! extensions, hierarchy flattening, and a round-tripping writer.
//!
//! The old `netlist::blif` reader covers the flat structural subset
//! (`.model/.inputs/.outputs/.names/.latch`) and is kept as the
//! conformance oracle. This crate is the production front-end:
//!
//! * **Streaming** — input is scanned through a fixed 64 KiB chunk
//!   buffer ([`scan`]); names are interned into a single arena
//!   ([`intern`]); the raw text is never held whole, so peak memory is
//!   proportional to the netlist, not the file.
//! * **Full 1992 spec** — multi-model files, `.subckt` hierarchy,
//!   `.latch` trigger types (`fe/re/ah/al/as`) and clock signals,
//!   `.gate`/`.mlatch` library cells ([`lib_cells`]), embedded KISS FSMs
//!   (`.start_kiss`..`.end_kiss`, synthesised via `workloads::kiss`),
//!   `.clock` and delay directives (carried as metadata).
//! * **yosys extensions** — `.attr`, `.param`, `.cname`, `.blackbox`,
//!   `.conn`.
//! * **Precise diagnostics** — every error carries line + column and,
//!   when available, the offending source line with a caret ([`diag`]).
//! * **Flattening** — [`link`] elaborates the hierarchy into the
//!   retiming-graph [`Circuit`](netlist::Circuit) used by the
//!   mapping/retiming stack, with the old reader's latch-folding
//!   semantics.
//! * **Round-tripping writer** — [`write`] serialises everything the
//!   reader accepts, and converts circuits back to BLIF byte-identically
//!   with the old `netlist::write_blif`.
//!
//! # Examples
//!
//! ```
//! let src = "\
//! .model top
//! .inputs a b
//! .outputs z
//! .subckt and2m x=a y=b o=z
//! .end
//! .model and2m
//! .inputs x y
//! .outputs o
//! .names x y o
//! 11 1
//! .end
//! ";
//! let c = blifio::read_circuit_str(src).unwrap();
//! assert_eq!(c.name(), "top");
//! assert_eq!(c.num_gates(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compare;
pub mod diag;
pub mod intern;
pub mod lib_cells;
pub mod link;
pub mod parse;
pub mod scan;
pub mod write;

pub use ast::{BlifFile, Command, InitVal, LatchType, Model};
pub use compare::{structural_diff, structurally_equal};
pub use diag::{BlifError, Diag};
pub use intern::{Interner, Symbol};
pub use link::{flatten, LinkOptions};
pub use parse::{parse_path, parse_reader, parse_str, ParseOptions};
pub use scan::{LineBuf, Scanner, DEFAULT_CHUNK};
pub use write::{from_circuit, model_from_circuit, write_circuit, write_file};

use netlist::Circuit;
use std::path::Path;

/// Parses and flattens BLIF text with default link options.
///
/// # Errors
///
/// See [`parse_str`] and [`flatten`].
pub fn read_circuit_str(text: &str) -> Result<Circuit, BlifError> {
    read_circuit_str_opts(text, &LinkOptions::default())
}

/// Parses and flattens BLIF text with explicit link options.
///
/// # Errors
///
/// See [`parse_str`] and [`flatten`].
pub fn read_circuit_str_opts(text: &str, opts: &LinkOptions) -> Result<Circuit, BlifError> {
    flatten(&parse_str(text)?, opts)
}

/// Streams, parses and flattens a BLIF file with default link options.
///
/// # Errors
///
/// See [`parse_path`] and [`flatten`].
pub fn read_circuit_path(path: impl AsRef<Path>) -> Result<Circuit, BlifError> {
    read_circuit_path_opts(path, &LinkOptions::default())
}

/// Streams, parses and flattens a BLIF file with explicit link options.
///
/// # Errors
///
/// See [`parse_path`] and [`flatten`].
pub fn read_circuit_path_opts(
    path: impl AsRef<Path>,
    opts: &LinkOptions,
) -> Result<Circuit, BlifError> {
    flatten(&parse_path(path)?, opts)
}
