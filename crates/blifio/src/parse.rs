//! The streaming BLIF parser: logical lines → [`BlifFile`].
//!
//! Grammar coverage (see DESIGN.md "Front-end & ingestion" for the full
//! table): the 1992 spec's logic/latch/hierarchy/FSM sections plus the
//! yosys extensions. `.exdc` and `.search` are rejected with a
//! diagnostic — don't-care networks and file inclusion are out of scope
//! for a mapping front-end.

use crate::ast::*;
use crate::diag::{BlifError, Diag};
use crate::intern::Interner;
use crate::scan::{LineBuf, Scanner, DEFAULT_CHUNK};
use netlist::MAX_INPUTS;
use std::io::Read;
use std::path::Path;

/// Parser tuning.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Streaming chunk size in bytes.
    pub chunk: usize,
}

impl Default for ParseOptions {
    fn default() -> ParseOptions {
        ParseOptions {
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// Parses BLIF from any reader, streaming through a fixed-size buffer.
///
/// # Errors
///
/// Returns a positioned [`Diag`] on malformed input, or an I/O error.
pub fn parse_reader<R: Read>(src: R, opts: &ParseOptions) -> Result<BlifFile, BlifError> {
    let mut sc = Scanner::with_chunk(src, opts.chunk);
    let mut lb = LineBuf::default();
    let mut p = Parser::default();
    while sc.next_line(&mut lb)? {
        p.line(&lb)?;
    }
    p.finish()
}

/// Parses BLIF from an in-memory string.
///
/// # Errors
///
/// See [`parse_reader`].
pub fn parse_str(text: &str) -> Result<BlifFile, BlifError> {
    parse_reader(text.as_bytes(), &ParseOptions::default())
}

/// Parses BLIF from a file path (streaming; the file is never read
/// whole).
///
/// # Errors
///
/// See [`parse_reader`]; additionally I/O errors opening the file.
pub fn parse_path(path: impl AsRef<Path>) -> Result<BlifFile, BlifError> {
    let f = std::fs::File::open(path)?;
    parse_reader(f, &ParseOptions::default())
}

#[derive(Default)]
struct Parser {
    interner: Interner,
    models: Vec<Model>,
    cur: Option<Model>,
    names_open: bool,
    kiss: Option<KissBlock>,
    ended: bool,
}

impl Parser {
    fn model_mut(&mut self, line: u32) -> &mut Model {
        if self.cur.is_none() {
            // Directives before any `.model` open an implicit model, as
            // the old reader did.
            self.cur = Some(Model::new("unnamed", line));
        }
        self.cur.as_mut().expect("just set")
    }

    fn close_model(&mut self) {
        self.names_open = false;
        if let Some(m) = self.cur.take() {
            self.models.push(m);
        }
    }

    fn line(&mut self, lb: &LineBuf) -> Result<(), Diag> {
        debug_assert!(!lb.is_empty());
        let line = lb.line() as u32;
        let kw = lb.tok(0);

        // Inside an embedded KISS block everything until `.end_kiss` is
        // FSM text, kept verbatim (one source line per logical line).
        if let Some(block) = &mut self.kiss {
            if kw == ".end_kiss" {
                let block = self.kiss.take().expect("in kiss");
                self.model_mut(line).commands.push(Command::Kiss(block));
            } else {
                block.text.push_str(&lb.joined());
                block.text.push('\n');
            }
            return Ok(());
        }

        if !kw.starts_with('.') {
            return self.cube_line(lb);
        }
        if self.ended && kw != ".model" {
            return Err(lb.diag_at(0, "content after .end"));
        }

        // Any dot-directive terminates an open `.names` cube list.
        self.names_open = false;

        match kw {
            ".model" => {
                self.close_model();
                self.ended = false;
                let name = if lb.len() > 1 { lb.tok(1) } else { "unnamed" };
                if self.models.iter().any(|m| m.name == name) {
                    return Err(lb.diag_at(1, format!("duplicate model `{name}`")));
                }
                self.cur = Some(Model::new(name, line));
            }
            ".inputs" => {
                let syms: Vec<_> = (1..lb.len())
                    .map(|i| self.interner.intern(lb.tok(i)))
                    .collect();
                self.model_mut(line).inputs.extend(syms);
            }
            ".outputs" => {
                let syms: Vec<(_, u32)> = (1..lb.len())
                    .map(|i| (self.interner.intern(lb.tok(i)), lb.pos(i).0 as u32))
                    .collect();
                let m = self.model_mut(line);
                for (s, l) in syms {
                    m.outputs.push(s);
                    m.output_lines.push(l);
                }
            }
            ".clock" => {
                let syms: Vec<_> = (1..lb.len())
                    .map(|i| self.interner.intern(lb.tok(i)))
                    .collect();
                self.model_mut(line).clocks.extend(syms);
            }
            ".names" => {
                if lb.len() < 2 {
                    return Err(lb.diag_at(0, ".names needs an output signal"));
                }
                if lb.len() - 2 > MAX_INPUTS {
                    return Err(lb.diag_at(
                        0,
                        format!(
                            ".names with {} inputs exceeds limit {MAX_INPUTS}",
                            lb.len() - 2
                        ),
                    ));
                }
                let inputs: Vec<_> = (1..lb.len() - 1)
                    .map(|i| self.interner.intern(lb.tok(i)))
                    .collect();
                let output = self.interner.intern(lb.tok(lb.len() - 1));
                self.model_mut(line).commands.push(Command::Names(Names {
                    inputs,
                    output,
                    pattern_blob: Vec::new(),
                    values: Vec::new(),
                    line,
                }));
                self.names_open = true;
            }
            ".latch" => {
                let latch = self.parse_latch(lb, line)?;
                self.model_mut(line).commands.push(Command::Latch(latch));
            }
            ".subckt" => {
                if lb.len() < 2 {
                    return Err(lb.diag_at(0, ".subckt needs a model name"));
                }
                let model = self.interner.intern(lb.tok(1));
                let conns = self.parse_conns(lb, 2, lb.len())?;
                self.model_mut(line)
                    .commands
                    .push(Command::Subckt(Subckt { model, conns, line }));
            }
            ".gate" => {
                if lb.len() < 2 {
                    return Err(lb.diag_at(0, ".gate needs a cell name"));
                }
                let cell = self.interner.intern(lb.tok(1));
                let conns = self.parse_conns(lb, 2, lb.len())?;
                self.model_mut(line)
                    .commands
                    .push(Command::Gate(LibGate { cell, conns, line }));
            }
            ".mlatch" => {
                let ml = self.parse_mlatch(lb, line)?;
                self.model_mut(line).commands.push(Command::Mlatch(ml));
            }
            ".start_kiss" => {
                self.model_mut(line);
                self.kiss = Some(KissBlock {
                    text: String::new(),
                    line,
                });
            }
            ".end_kiss" => return Err(lb.diag_at(0, ".end_kiss without .start_kiss")),
            ".conn" => {
                if lb.len() != 3 {
                    return Err(lb.diag_at(0, ".conn needs exactly two signals"));
                }
                let from = self.interner.intern(lb.tok(1));
                let to = self.interner.intern(lb.tok(2));
                self.model_mut(line)
                    .commands
                    .push(Command::Conn { from, to, line });
            }
            ".attr" | ".param" | ".cname" => {
                let kind = match kw {
                    ".attr" => AttrKind::Attr,
                    ".param" => AttrKind::Param,
                    _ => AttrKind::Cname,
                };
                let args: Vec<String> = (1..lb.len()).map(|i| lb.tok(i).to_string()).collect();
                self.model_mut(line)
                    .commands
                    .push(Command::Attr { kind, args, line });
            }
            ".blackbox" => self.model_mut(line).blackbox = true,
            ".end" => {
                self.close_model();
                self.ended = true;
            }
            ".exdc" | ".search" => {
                return Err(lb.diag_at(0, format!("unsupported BLIF construct `{kw}`")));
            }
            other => {
                // Delay constraints, `.latch_order`, `.code`, and any
                // unknown directives: carried verbatim as metadata.
                let name = other[1..].to_string();
                let args: Vec<String> = (1..lb.len()).map(|i| lb.tok(i).to_string()).collect();
                self.model_mut(line)
                    .commands
                    .push(Command::Directive { name, args, line });
            }
        }
        Ok(())
    }

    /// `.latch input output [type control] [init]` — all four legal
    /// arities (2, 3, 4 and 5 arguments).
    fn parse_latch(&mut self, lb: &LineBuf, line: u32) -> Result<Latch, Diag> {
        let argc = lb.len() - 1;
        if argc < 2 {
            return Err(lb.diag_at(0, ".latch needs input and output"));
        }
        if argc > 5 {
            return Err(lb.diag_at(6, "malformed .latch: too many arguments"));
        }
        let input = self.interner.intern(lb.tok(1));
        let output = self.interner.intern(lb.tok(2));
        let (ty, control, init_idx) = match argc {
            2 => (None, None, None),
            3 => (None, None, Some(3)),
            4 | 5 => {
                let ty = LatchType::from_token(lb.tok(3)).ok_or_else(|| {
                    lb.diag_at(
                        3,
                        format!("bad latch type `{}` (expected fe/re/ah/al/as)", lb.tok(3)),
                    )
                })?;
                let control = self.control_symbol(lb.tok(4));
                (Some(ty), control, (argc == 5).then_some(5))
            }
            _ => unreachable!("arity checked"),
        };
        let init = match init_idx {
            None => None,
            Some(i) => Some(InitVal::from_token(lb.tok(i)).ok_or_else(|| {
                lb.diag_at(i, format!("bad latch init `{}` (expected 0-3)", lb.tok(i)))
            })?),
        };
        Ok(Latch {
            input,
            output,
            ty,
            control,
            init,
            line,
        })
    }

    /// `.mlatch cell pin=sig… [control] [init]`.
    fn parse_mlatch(&mut self, lb: &LineBuf, line: u32) -> Result<Mlatch, Diag> {
        if lb.len() < 2 {
            return Err(lb.diag_at(0, ".mlatch needs a cell name"));
        }
        let cell = self.interner.intern(lb.tok(1));
        let mut end = lb.len();
        let mut init = None;
        let mut control = None;
        // Trailing non-pair tokens are [control] then [init]; detect from
        // the back.
        if end > 2 && !lb.tok(end - 1).contains('=') {
            if let Some(v) = InitVal::from_token(lb.tok(end - 1)) {
                init = Some(v);
                end -= 1;
            }
        }
        if end > 2 && !lb.tok(end - 1).contains('=') {
            control = self.control_symbol(lb.tok(end - 1));
            end -= 1;
        }
        let conns = self.parse_conns(lb, 2, end)?;
        Ok(Mlatch {
            cell,
            conns,
            control,
            init,
            line,
        })
    }

    fn control_symbol(&mut self, tok: &str) -> Option<crate::intern::Symbol> {
        if tok == "NIL" {
            None
        } else {
            Some(self.interner.intern(tok))
        }
    }

    fn parse_conns(
        &mut self,
        lb: &LineBuf,
        from: usize,
        to: usize,
    ) -> Result<Vec<(crate::intern::Symbol, crate::intern::Symbol)>, Diag> {
        let mut conns = Vec::with_capacity(to.saturating_sub(from));
        for i in from..to {
            let tok = lb.tok(i);
            let Some((f, a)) = tok.split_once('=') else {
                return Err(lb.diag_at(i, format!("expected formal=actual, got `{tok}`")));
            };
            if f.is_empty() || a.is_empty() {
                return Err(lb.diag_at(i, format!("expected formal=actual, got `{tok}`")));
            }
            conns.push((self.interner.intern(f), self.interner.intern(a)));
        }
        Ok(conns)
    }

    fn cube_line(&mut self, lb: &LineBuf) -> Result<(), Diag> {
        if !self.names_open {
            return Err(lb.diag_at(0, "cube outside of .names"));
        }
        let model = self.cur.as_mut().expect("names_open implies model");
        let Some(Command::Names(block)) = model.commands.last_mut() else {
            unreachable!("names_open tracks the last command");
        };
        let (pattern, value) = if block.inputs.is_empty() {
            if lb.len() != 1 || lb.tok(0).len() != 1 {
                return Err(lb.diag_at(0, "constant .names expects `0` or `1`"));
            }
            ("", lb.tok(0).as_bytes()[0])
        } else {
            if lb.len() != 2 {
                return Err(lb.diag_at(0, "cube must be `pattern value`"));
            }
            if lb.tok(0).len() != block.inputs.len() {
                return Err(lb.diag_at(
                    0,
                    format!(
                        "cube width {} does not match {} inputs",
                        lb.tok(0).len(),
                        block.inputs.len()
                    ),
                ));
            }
            if lb.tok(1).len() != 1 {
                return Err(lb.diag_at(1, "cube output must be 0 or 1"));
            }
            (lb.tok(0), lb.tok(1).as_bytes()[0])
        };
        if value != b'0' && value != b'1' {
            return Err(lb.diag_at(lb.len() - 1, "cube output must be 0 or 1"));
        }
        if let Some(off) = pattern
            .bytes()
            .position(|b| !matches!(b, b'0' | b'1' | b'-'))
        {
            let (l, c) = lb.pos(0);
            let d = Diag::new(l, c + off, "cube pattern must use 0/1/-");
            return Err(match lb.source_line(l) {
                Some(src) => d.with_source(src),
                None => d,
            });
        }
        block.pattern_blob.extend_from_slice(pattern.as_bytes());
        block.values.push(value);
        Ok(())
    }

    fn finish(mut self) -> Result<BlifFile, BlifError> {
        if let Some(block) = &self.kiss {
            return Err(Diag::new(block.line as usize, 1, "unterminated .start_kiss").into());
        }
        self.close_model();
        Ok(BlifFile {
            models: self.models,
            interner: self.interner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> BlifFile {
        parse_str(text).unwrap()
    }

    fn err(text: &str) -> Diag {
        match parse_str(text).unwrap_err() {
            BlifError::Diag(d) => d,
            other => panic!("expected diag, got {other}"),
        }
    }

    #[test]
    fn single_model_subset() {
        let f =
            parse(".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.latch z s 0\n.end\n");
        assert_eq!(f.models.len(), 1);
        let m = &f.models[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.inputs.len(), 2);
        assert_eq!(m.commands.len(), 2);
        match &m.commands[0] {
            Command::Names(n) => {
                assert_eq!(n.num_cubes(), 1);
                assert_eq!(n.cube(0), (b"11".as_slice(), b'1'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn latch_all_arities() {
        let f = parse(
            ".model m\n.inputs a\n.outputs z\n.names q1 q2 q3 q4 q5 z\n11111 1\n\
             .latch a q1\n.latch a q2 1\n.latch a q3 re clk\n.latch a q4 fe clk 0\n\
             .latch a q5 as NIL 2\n.end\n",
        );
        let latches: Vec<&Latch> = f.models[0]
            .commands
            .iter()
            .filter_map(|c| match c {
                Command::Latch(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(latches.len(), 5);
        assert_eq!(latches[0].init, None);
        assert_eq!(latches[1].init, Some(InitVal::One));
        assert_eq!(latches[1].ty, None);
        assert_eq!(latches[2].ty, Some(LatchType::Re));
        assert!(latches[2].control.is_some());
        assert_eq!(latches[2].init, None);
        assert_eq!(latches[3].ty, Some(LatchType::Fe));
        assert_eq!(latches[3].init, Some(InitVal::Zero));
        assert_eq!(latches[4].ty, Some(LatchType::As));
        assert!(latches[4].control.is_none());
        assert_eq!(latches[4].init, Some(InitVal::DontCare));
    }

    #[test]
    fn latch_bad_type_and_init_diagnose_column() {
        let d = err(".model m\n.latch a b zz clk 0\n.end\n");
        assert_eq!((d.line, d.col), (2, 12));
        assert!(d.message.contains("bad latch type"), "{}", d.message);
        let d = err(".model m\n.latch a b 7\n.end\n");
        assert_eq!((d.line, d.col), (2, 12));
        assert!(d.message.contains("bad latch init"), "{}", d.message);
        let d = err(".model m\n.latch a b re clk 1 x\n.end\n");
        assert!(d.message.contains("too many"), "{}", d.message);
    }

    #[test]
    fn multi_model_with_subckt_and_yosys_directives() {
        let f = parse(
            ".model top\n.inputs a\n.outputs z\n.attr src \"top.v:1\"\n\
             .subckt leaf x=a y=z\n.end\n\
             .model leaf\n.inputs x\n.outputs y\n.cname buf0\n.names x y\n1 1\n.end\n\
             .model bb\n.inputs p\n.outputs q\n.blackbox\n.end\n",
        );
        assert_eq!(f.models.len(), 3);
        assert!(f.models[2].blackbox);
        let top = &f.models[0];
        let sub = top
            .commands
            .iter()
            .find_map(|c| match c {
                Command::Subckt(s) => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(f.interner.resolve(sub.model), "leaf");
        assert_eq!(sub.conns.len(), 2);
        let counts = f.model_counts();
        assert_eq!(counts[0].subckts, 1);
        assert_eq!(counts[1].gates, 1);
        assert!(counts[2].blackbox);
    }

    #[test]
    fn kiss_block_kept_verbatim() {
        let f = parse(
            ".model fsm\n.inputs i\n.outputs o\n.start_kiss\n.i 1\n.o 1\n.s 2\n.r A\n\
             1 A B 1\n- B A 0\n.end_kiss\n.latch_order s0\n.code A 0\n.end\n",
        );
        let m = &f.models[0];
        let kiss = m
            .commands
            .iter()
            .find_map(|c| match c {
                Command::Kiss(k) => Some(k),
                _ => None,
            })
            .unwrap();
        assert!(kiss.text.starts_with(".i 1\n.o 1\n"));
        assert!(kiss.text.contains("1 A B 1\n"));
        // .latch_order / .code carried as generic directives.
        assert!(m
            .commands
            .iter()
            .any(|c| matches!(c, Command::Directive { name, .. } if name == "latch_order"),));
    }

    #[test]
    fn gate_mlatch_conn_clock() {
        let f = parse(
            ".model g\n.inputs a b c\n.outputs z\n.clock clk\n\
             .gate nand2 a=a b=b o=t\n.mlatch dff d=t q=r NIL 1\n.conn r w\n\
             .names w c z\n11 1\n.end\n",
        );
        let m = &f.models[0];
        assert_eq!(m.clocks.len(), 1);
        assert!(matches!(m.commands[0], Command::Gate(_)));
        match &m.commands[1] {
            Command::Mlatch(ml) => {
                assert!(ml.control.is_none());
                assert_eq!(ml.init, Some(InitVal::One));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(m.commands[2], Command::Conn { .. }));
    }

    #[test]
    fn exdc_rejected_with_position() {
        let d = err(".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.exdc\n.end\n");
        assert_eq!(d.line, 6);
        assert!(d.message.contains(".exdc"));
    }

    #[test]
    fn bad_cube_char_points_at_offending_column() {
        let d = err(".model m\n.inputs a b\n.outputs z\n.names a b z\n1x 1\n.end\n");
        assert_eq!((d.line, d.col), (5, 2));
        assert!(d.render().contains('^'), "{}", d.render());
    }

    #[test]
    fn delay_directives_preserved() {
        let f = parse(".model m\n.inputs a\n.outputs z\n.delay a 3\n.names a z\n1 1\n.end\n");
        assert!(f.models[0]
            .commands
            .iter()
            .any(|c| matches!(c, Command::Directive { name, args, .. }
                 if name == "delay" && args == &["a", "3"])));
    }
}
