//! `blifcheck` — ingest smoke-checker for the streaming BLIF front-end.
//!
//! Two subcommands:
//!
//! * `gen <preset> -o FILE [--pad-mb N]` — stream a `workloads::large`
//!   preset to disk. `--pad-mb` appends comment padding so the file
//!   grows without the netlist growing: an ingest whose peak RSS tracks
//!   the netlist (not the file) is unaffected by the padding.
//! * `ingest FILE [--max-secs S] [--max-rss-mb M]` — parse + flatten the
//!   file, then report wall time, circuit totals, the process's peak
//!   RSS (`VmHWM` via [`engine::mem::peak_rss_kib`]) and the heap
//!   ledger from the counting allocator. Exceeding either budget exits
//!   1, so CI can gate on it directly.
//!
//! Output is `key=value` lines on stdout, one per metric.

use engine::mem::peak_rss_kib;
use std::io::Write as _;
use std::time::Instant;

/// Heap accounting for the `heap_*` ingest metrics; counting starts in
/// `main` and the wrapper always delegates to the system allocator.
#[global_allocator]
static ALLOC: engine::mem::CountingAlloc = engine::mem::CountingAlloc::new();

fn usage() -> ! {
    eprintln!(
        "\
blifcheck — ingest smoke-checker for the streaming BLIF front-end

USAGE: blifcheck gen <preset> -o FILE [--pad-mb N]
       blifcheck ingest FILE [--max-secs S] [--max-rss-mb M]

  gen      stream a large-workload preset ({}) to FILE;
           --pad-mb appends N MiB of comment lines (file grows, netlist
           does not — RSS must not follow)
  ingest   parse + flatten FILE, print key=value metrics (wall seconds,
           gates/FFs/PIs/POs, peak RSS); budgets make breaches exit 1",
        workloads::large_presets()
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("blifcheck: {msg}");
    std::process::exit(1);
}

fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        fail(&format!("{name} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn run_gen(mut args: Vec<String>) {
    let out = take_flag(&mut args, "-o").unwrap_or_else(|| fail("gen needs -o FILE"));
    let pad_mb: u64 = take_flag(&mut args, "--pad-mb")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--pad-mb needs a number"))
        })
        .unwrap_or(0);
    let [name] = args.as_slice() else { usage() };
    let spec =
        workloads::large_preset(name).unwrap_or_else(|| fail(&format!("unknown preset `{name}`")));
    let f = std::fs::File::create(&out).unwrap_or_else(|e| fail(&format!("creating `{out}`: {e}")));
    let mut w = std::io::BufWriter::new(f);
    workloads::write_hier(&spec, &mut w).unwrap_or_else(|e| fail(&format!("writing `{out}`: {e}")));
    // Comment padding: 64 KiB lines the scanner must stream through and
    // discard. The netlist is unchanged, so a streaming reader's peak
    // RSS must not scale with this.
    if pad_mb > 0 {
        let line = format!("# {}\n", "p".repeat(64 * 1024 - 3));
        for _ in 0..(pad_mb * 1024 * 1024).div_ceil(line.len() as u64) {
            w.write_all(line.as_bytes())
                .unwrap_or_else(|e| fail(&format!("padding `{out}`: {e}")));
        }
    }
    w.flush()
        .unwrap_or_else(|e| fail(&format!("flushing `{out}`: {e}")));
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("preset={name}");
    println!("file_bytes={bytes}");
    println!("expected_gates={}", spec.flat_gates());
    println!("expected_ffs={}", spec.flat_ffs());
}

fn run_ingest(mut args: Vec<String>) {
    let max_secs: Option<f64> = take_flag(&mut args, "--max-secs").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail("--max-secs needs a number"))
    });
    let max_rss_mb: Option<u64> = take_flag(&mut args, "--max-rss-mb").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail("--max-rss-mb needs a number"))
    });
    let [path] = args.as_slice() else { usage() };
    let bytes = std::fs::metadata(path)
        .map(|m| m.len())
        .unwrap_or_else(|e| fail(&format!("stat `{path}`: {e}")));
    let rss_before = peak_rss_kib().unwrap_or(0);
    let start = Instant::now();
    let file = match blifio::parse_path(path) {
        Ok(f) => f,
        Err(e) => fail(&format!("parsing `{path}`: {e}")),
    };
    let parse_secs = start.elapsed().as_secs_f64();
    let circuit = match blifio::flatten(&file, &blifio::LinkOptions::default()) {
        Ok(c) => c,
        Err(e) => fail(&format!("flattening `{path}`: {e}")),
    };
    let total_secs = start.elapsed().as_secs_f64();
    let peak_kib = peak_rss_kib().unwrap_or(0);

    println!("file_bytes={bytes}");
    println!("models={}", file.models.len());
    println!("gates={}", circuit.num_gates());
    println!("ffs={}", circuit.ff_count_total());
    println!("pis={}", circuit.inputs().len());
    println!("pos={}", circuit.outputs().len());
    println!("parse_secs={parse_secs:.3}");
    println!("total_secs={total_secs:.3}");
    println!("rss_before_kib={rss_before}");
    println!("peak_rss_kib={peak_kib}");
    let heap = engine::mem::global_stats();
    println!("heap_peak_bytes={}", heap.peak_bytes);
    println!("heap_allocs={}", heap.allocs);
    println!("heap_alloc_bytes={}", heap.alloc_bytes);

    if let Some(budget) = max_secs {
        if total_secs > budget {
            fail(&format!(
                "wall-time budget exceeded: {total_secs:.3}s > {budget}s"
            ));
        }
    }
    if let Some(budget) = max_rss_mb {
        if peak_kib > budget * 1024 {
            fail(&format!(
                "RSS budget exceeded: {} MiB > {budget} MiB",
                peak_kib / 1024
            ));
        }
    }
}

fn main() {
    engine::mem::set_enabled(true);
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let cmd = raw.remove(0);
    match cmd.as_str() {
        "gen" => run_gen(raw),
        "ingest" => run_ingest(raw),
        _ => usage(),
    }
}
