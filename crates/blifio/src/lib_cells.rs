//! Built-in cell library for `.gate` / `.mlatch`.
//!
//! BLIF's library-gate commands reference cells from a technology
//! library the file does not carry. We resolve them against a small
//! built-in library of the generic cells yosys/SIS emit (inverters,
//! buffers, constants, and 2–4 input and/or/nand/nor plus xor/xnor and
//! a mux), which is enough to ingest `write_blif -gates`-style output.
//! Cell and pin names match case-insensitively.

use netlist::TruthTable;

/// A resolved combinational library cell.
#[derive(Debug, Clone)]
pub struct CellDef {
    /// Canonical cell name.
    pub name: &'static str,
    /// Input pin names, in truth-table input order.
    pub inputs: &'static [&'static str],
    /// Output pin name.
    pub output: &'static str,
    /// The cell's function.
    pub tt: TruthTable,
}

const AB: &[&str] = &["a", "b"];
const ABC: &[&str] = &["a", "b", "c"];
const ABCD: &[&str] = &["a", "b", "c", "d"];

/// Looks up a combinational cell by (case-insensitive) name.
pub fn lookup_cell(name: &str) -> Option<CellDef> {
    let lower = name.to_ascii_lowercase();
    let (canon, inputs, tt): (&'static str, &'static [&'static str], TruthTable) =
        match lower.as_str() {
            "inv" | "not" | "inv1" => ("inv", &["a"], TruthTable::not()),
            "buf" | "buffer" | "buf1" => ("buf", &["a"], TruthTable::buf()),
            "zero" | "const0" | "gnd" => ("zero", &[], TruthTable::const_zero(0)),
            "one" | "const1" | "vcc" | "vdd" => ("one", &[], TruthTable::const_one(0)),
            "and2" => ("and2", AB, TruthTable::and(2)),
            "and3" => ("and3", ABC, TruthTable::and(3)),
            "and4" => ("and4", ABCD, TruthTable::and(4)),
            "or2" => ("or2", AB, TruthTable::or(2)),
            "or3" => ("or3", ABC, TruthTable::or(3)),
            "or4" => ("or4", ABCD, TruthTable::or(4)),
            "nand2" => ("nand2", AB, TruthTable::nand(2)),
            "nand3" => ("nand3", ABC, TruthTable::nand(3)),
            "nand4" => ("nand4", ABCD, TruthTable::nand(4)),
            "nor2" => ("nor2", AB, TruthTable::nor(2)),
            "nor3" => ("nor3", ABC, TruthTable::nor(3)),
            "nor4" => ("nor4", ABCD, TruthTable::nor(4)),
            "xor2" => ("xor2", AB, TruthTable::xor(2)),
            "xnor2" => (
                "xnor2",
                AB,
                TruthTable::from_fn(2, |r| r.count_ones() % 2 == 0),
            ),
            "mux" | "mux2" => ("mux", &["s", "a", "b"], TruthTable::mux()),
            _ => return None,
        };
    Some(CellDef {
        name: canon,
        inputs,
        output: "o",
        tt,
    })
}

/// True when `pin` names the cell's output (accepts the common aliases
/// `o`, `y`, `z`, `out`).
pub fn is_output_pin(pin: &str) -> bool {
    matches!(
        pin.to_ascii_lowercase().as_str(),
        "o" | "y" | "z" | "out" | "q"
    )
}

/// A resolved sequential cell for `.mlatch`: just the D and Q pin names.
#[derive(Debug, Clone, Copy)]
pub struct LatchCellDef {
    /// Data-input pin.
    pub d: &'static str,
    /// Output pin.
    pub q: &'static str,
}

/// Looks up a latch cell by (case-insensitive) name.
pub fn lookup_latch_cell(name: &str) -> Option<LatchCellDef> {
    match name.to_ascii_lowercase().as_str() {
        "dff" | "dff1" | "ff" | "dlatch" | "latch" => Some(LatchCellDef { d: "d", q: "q" }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let c = lookup_cell("NAND2").unwrap();
        assert_eq!(c.name, "nand2");
        assert_eq!(c.inputs, ["a", "b"]);
        assert!(lookup_cell("nand9").is_none());
    }

    #[test]
    fn xnor_truth() {
        let c = lookup_cell("xnor2").unwrap();
        assert!(c.tt.eval_row(0));
        assert!(!c.tt.eval_row(1));
        assert!(!c.tt.eval_row(2));
        assert!(c.tt.eval_row(3));
    }

    #[test]
    fn latch_cells() {
        assert!(lookup_latch_cell("DFF").is_some());
        assert!(lookup_latch_cell("sr_latch").is_none());
    }
}
